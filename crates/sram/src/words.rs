//! Exact multi-bit word-error statistics, computed in log domain.
//!
//! An error-mitigation scheme that corrects `t` bit errors per word fails
//! when `t + 1` or more bits flip in the same word. At the paper's FIT
//! target of 1e-15 per transaction these are deep-tail binomial
//! probabilities (e.g. `P(≥5 of 39)` at `p ≈ 7e-5`), so everything here is
//! evaluated as log-sum-exp over exact binomial terms — no Poisson or
//! leading-term shortcuts that would distort the solved voltages.

use std::fmt;
use std::sync::OnceLock;

/// `ln(n!)` with a cached table for small `n` and Stirling's series above.
///
/// # Example
///
/// ```
/// let v = ntc_sram::words::ln_factorial(5);
/// assert!((v - 120f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE_SIZE: usize = 1025;
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = Vec::with_capacity(TABLE_SIZE);
        t.push(0.0);
        for i in 1..TABLE_SIZE as u64 {
            t.push(t[(i - 1) as usize] + (i as f64).ln());
        }
        t
    });
    if (n as usize) < table.len() {
        return table[n as usize];
    }
    // Stirling's series with the 1/(12n) correction — relative error below
    // 1e-12 for n ≥ 1024.
    let x = n as f64;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x.powi(3))
}

/// `ln C(n, k)`, the log binomial coefficient.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "C({n}, {k}) undefined");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Error-count statistics for words of a fixed width under independent
/// per-bit failures.
///
/// # Example
///
/// ```
/// use ntc_sram::words::WordErrorModel;
///
/// // A 39-bit SECDED codeword at p_bit = 1e-6:
/// let w = WordErrorModel::new(39);
/// // Single-bit errors happen at ~3.9e-5 per access…
/// let p1 = w.p_exactly(1, 1e-6);
/// assert!((p1 / 3.9e-5 - 1.0).abs() < 0.01);
/// // …but uncorrectable triple errors are down at ~9e-15.
/// let p3 = w.p_at_least(3, 1e-6);
/// assert!(p3 > 8e-15 && p3 < 1e-14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WordErrorModel {
    bits: u32,
}

impl WordErrorModel {
    /// Creates a model for `bits`-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0, "word must have at least one bit");
        Self { bits }
    }

    /// Word width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// `ln P(exactly m bits fail)` at per-bit probability `p`.
    ///
    /// Returns `−∞` when the event is impossible (`m > bits`, or `p` at a
    /// degenerate endpoint that excludes `m`).
    pub fn ln_p_exactly(&self, m: u32, p: f64) -> f64 {
        let n = self.bits;
        if m > n || !(0.0..=1.0).contains(&p) {
            return f64::NEG_INFINITY;
        }
        if p == 0.0 {
            return if m == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if p == 1.0 {
            return if m == n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_binomial(n as u64, m as u64)
            + m as f64 * p.ln()
            + (n - m) as f64 * (-p).ln_1p()
    }

    /// `P(exactly m bits fail)` at per-bit probability `p`.
    pub fn p_exactly(&self, m: u32, p: f64) -> f64 {
        self.ln_p_exactly(m, p).exp()
    }

    /// `ln P(at least m bits fail)` at per-bit probability `p`, summed
    /// exactly over all binomial terms with log-sum-exp.
    pub fn ln_p_at_least(&self, m: u32, p: f64) -> f64 {
        if m == 0 {
            return 0.0;
        }
        if m > self.bits {
            return f64::NEG_INFINITY;
        }
        let terms: Vec<f64> = (m..=self.bits).map(|j| self.ln_p_exactly(j, p)).collect();
        log_sum_exp(&terms)
    }

    /// `P(at least m bits fail)` at per-bit probability `p`.
    pub fn p_at_least(&self, m: u32, p: f64) -> f64 {
        self.ln_p_at_least(m, p).exp().min(1.0)
    }

    /// `ln P(word failure)` for a scheme that corrects up to `correctable`
    /// bit errors per word: failure means `correctable + 1` or more errors.
    pub fn ln_p_word_failure(&self, correctable: u32, p: f64) -> f64 {
        self.ln_p_at_least(correctable + 1, p)
    }

    /// `P(word failure)` for a scheme correcting `correctable` errors.
    pub fn p_word_failure(&self, correctable: u32, p: f64) -> f64 {
        self.ln_p_word_failure(correctable, p).exp().min(1.0)
    }

    /// Expected number of failing bits per word.
    pub fn expected_errors(&self, p: f64) -> f64 {
        self.bits as f64 * p
    }

    /// The full error-count distribution `P(0), P(1), …, P(bits)`.
    pub fn distribution(&self, p: f64) -> Vec<f64> {
        (0..=self.bits).map(|m| self.p_exactly(m, p)).collect()
    }

    /// Largest per-bit probability `p` such that
    /// `P(≥ correctable+1 errors) ≤ target`, found by bisection on the
    /// monotone failure probability.
    ///
    /// Returns `None` if even `p → 1` satisfies the target is impossible…
    /// i.e. if no `p ∈ (0, 1)` exists because the target is unreachable
    /// (`target ≤ 0`) — for `target ≥ 1` the answer is `1.0`.
    ///
    /// # Panics
    ///
    /// Panics if `correctable >= bits` (the scheme can never fail, so any
    /// `p` works and the question is ill-posed).
    pub fn max_p_bit_for_target(&self, correctable: u32, target: f64) -> Option<f64> {
        assert!(
            correctable < self.bits,
            "a scheme correcting {correctable} of {} bits never fails",
            self.bits
        );
        if target <= 0.0 {
            return None;
        }
        if target >= 1.0 {
            return Some(1.0);
        }
        let ln_target = target.ln();
        let f = |p: f64| self.ln_p_word_failure(correctable, p) - ln_target;
        // Failure probability is monotone increasing in p.
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        if f(hi) <= 0.0 {
            return Some(1.0);
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) <= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }
}

impl fmt::Display for WordErrorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit word", self.bits)
    }
}

/// Word-error statistics under *correlated* bit failures.
///
/// Independent-bit binomial statistics are optimistic when failures share
/// a cause inside the word (common wordline droop, shared well, local
/// systematic variation): one bad access tends to take several bits at
/// once. The standard overdispersed model is the beta-binomial — the
/// per-access bit-failure probability is itself a random draw from a
/// `Beta` distribution with mean `p` and intra-word correlation `rho`
/// — and it is exactly what erodes a SECDED design's usable voltage,
/// because multi-bit patterns arrive much more often than `p^m` predicts.
///
/// # Example
///
/// ```
/// use ntc_sram::words::{CorrelatedWordModel, WordErrorModel};
///
/// # fn main() -> Result<(), ntc_sram::words::CorrelationError> {
/// let iid = WordErrorModel::new(39);
/// let corr = CorrelatedWordModel::new(39, 0.05)?;
/// let p = 1e-5;
/// // Correlation inflates the triple-error (SECDED-fatal) probability by
/// // orders of magnitude.
/// assert!(corr.p_at_least(3, p) > 100.0 * iid.p_at_least(3, p));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorrelatedWordModel {
    bits: u32,
    rho: f64,
}

/// Error for invalid correlation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorrelationError;

impl fmt::Display for CorrelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "correlation must be in (0, 1)")
    }
}

impl std::error::Error for CorrelationError {}

impl CorrelatedWordModel {
    /// Creates a model over `bits`-bit words with intra-word correlation
    /// `rho ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`CorrelationError`] unless `0 < rho < 1`.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn new(bits: u32, rho: f64) -> Result<Self, CorrelationError> {
        assert!(bits > 0, "word must have at least one bit");
        if !(rho > 0.0 && rho < 1.0) {
            return Err(CorrelationError);
        }
        Ok(Self { bits, rho })
    }

    /// Word width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Intra-word correlation.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// `ln P(exactly m bits fail)` under the beta-binomial with mean `p`.
    ///
    /// Uses the standard parameterization `alpha = p·(1−rho)/rho`,
    /// `beta = (1−p)·(1−rho)/rho`, and
    /// `P(m) = C(n,m)·B(m+α, n−m+β)/B(α, β)` in log domain.
    pub fn ln_p_exactly(&self, m: u32, p: f64) -> f64 {
        let n = self.bits;
        if m > n || !(0.0..=1.0).contains(&p) {
            return f64::NEG_INFINITY;
        }
        if p == 0.0 {
            return if m == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if p == 1.0 {
            return if m == n { 0.0 } else { f64::NEG_INFINITY };
        }
        let s = (1.0 - self.rho) / self.rho;
        let alpha = p * s;
        let beta = (1.0 - p) * s;
        ln_binomial(n as u64, m as u64) + ln_beta(m as f64 + alpha, (n - m) as f64 + beta)
            - ln_beta(alpha, beta)
    }

    /// `P(at least m bits fail)` with mean per-bit probability `p`.
    pub fn p_at_least(&self, m: u32, p: f64) -> f64 {
        if m == 0 {
            return 1.0;
        }
        if m > self.bits {
            return 0.0;
        }
        let terms: Vec<f64> = (m..=self.bits).map(|j| self.ln_p_exactly(j, p)).collect();
        log_sum_exp(&terms).exp().min(1.0)
    }

    /// `P(word failure)` for a scheme correcting `correctable` errors.
    pub fn p_word_failure(&self, correctable: u32, p: f64) -> f64 {
        self.p_at_least(correctable + 1, p)
    }
}

impl fmt::Display for CorrelatedWordModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit word (rho = {})", self.bits, self.rho)
    }
}

/// `ln B(a, b) = lnΓ(a) + lnΓ(b) − lnΓ(a+b)`.
fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0` (relative error < 1e-10).
#[allow(clippy::excessive_precision)] // Lanczos coefficients quoted verbatim
fn ln_gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma domain");
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Numerically stable `ln(Σ exp(xᵢ))`.
fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(10) - 3628800f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_stirling_continuity() {
        // Table/Stirling boundary at 1025 must be seamless.
        let a = ln_factorial(1024);
        let b = ln_factorial(1025);
        assert!((b - a - 1025f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_binomial_values() {
        assert!((ln_binomial(39, 2) - 741f64.ln()).abs() < 1e-10);
        assert!((ln_binomial(39, 3) - 9139f64.ln()).abs() < 1e-10);
        assert!((ln_binomial(39, 5) - 575757f64.ln()).abs() < 1e-10);
        assert_eq!(ln_binomial(10, 0), 0.0);
        assert_eq!(ln_binomial(10, 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn ln_binomial_rejects_k_gt_n() {
        ln_binomial(3, 4);
    }

    #[test]
    fn distribution_sums_to_one() {
        for p in [0.0, 1e-6, 0.01, 0.3, 1.0] {
            let w = WordErrorModel::new(39);
            let total: f64 = w.distribution(p).iter().sum();
            assert!((total - 1.0).abs() < 1e-10, "p = {p}: sum {total}");
        }
    }

    #[test]
    fn p_exactly_against_hand_computation() {
        let w = WordErrorModel::new(4);
        let p = 0.1;
        // P(2 of 4) = 6·0.01·0.81 = 0.0486
        assert!((w.p_exactly(2, p) - 0.0486).abs() < 1e-12);
        // P(0 of 4) = 0.6561
        assert!((w.p_exactly(0, p) - 0.6561).abs() < 1e-12);
    }

    #[test]
    fn p_at_least_is_complementary_cumulative() {
        let w = WordErrorModel::new(16);
        let p = 0.05;
        let dist = w.distribution(p);
        for m in 0..=16u32 {
            let direct: f64 = dist[m as usize..].iter().sum();
            let got = w.p_at_least(m, p);
            assert!((got - direct).abs() < 1e-12, "m = {m}");
        }
    }

    #[test]
    fn deep_tail_matches_leading_term() {
        // For tiny p, P(≥m) ≈ C(n,m)·p^m.
        let w = WordErrorModel::new(39);
        let p: f64 = 1e-7;
        let approx = 9139.0 * p.powi(3);
        let got = w.p_at_least(3, p);
        assert!((got / approx - 1.0).abs() < 1e-3, "got {got}, approx {approx}");
    }

    #[test]
    fn edge_probabilities() {
        let w = WordErrorModel::new(8);
        assert_eq!(w.p_at_least(0, 0.5), 1.0);
        assert_eq!(w.p_at_least(9, 0.5), 0.0);
        assert_eq!(w.p_exactly(0, 0.0), 1.0);
        assert_eq!(w.p_exactly(1, 0.0), 0.0);
        assert_eq!(w.p_exactly(8, 1.0), 1.0);
        assert_eq!(w.p_exactly(7, 1.0), 0.0);
    }

    #[test]
    fn word_failure_matches_at_least() {
        let w = WordErrorModel::new(39);
        let p = 1e-4;
        assert_eq!(w.p_word_failure(2, p), w.p_at_least(3, p));
        assert_eq!(w.p_word_failure(0, p), w.p_at_least(1, p));
    }

    #[test]
    fn max_p_bit_inverts_failure_probability() {
        let w = WordErrorModel::new(39);
        for (t, target) in [(0u32, 1e-15), (2, 1e-15), (4, 1e-15), (2, 1e-9)] {
            let p = w.max_p_bit_for_target(t, target).unwrap();
            let back = w.p_word_failure(t, p);
            assert!(
                (back / target - 1.0).abs() < 1e-6,
                "t = {t}: p = {p}, failure {back}"
            );
            // Slightly larger p must violate the target.
            assert!(w.p_word_failure(t, p * 1.01) > target);
        }
    }

    #[test]
    fn max_p_bit_table2_anchors() {
        // The calibration behind AccessLaw::cell_based_40nm: at FIT 1e-15,
        // SECDED (correct 2-of-39 is a failure at 3) needs p ≤ ~4.8e-7 and
        // OCEAN (failure at 5) allows p ≤ ~7.05e-5.
        let w = WordErrorModel::new(39);
        let p_ecc = w.max_p_bit_for_target(2, 1e-15).unwrap();
        assert!((p_ecc / 4.79e-7 - 1.0).abs() < 0.02, "SECDED p = {p_ecc}");
        let p_ocean = w.max_p_bit_for_target(4, 1e-15).unwrap();
        assert!((p_ocean / 7.05e-5 - 1.0).abs() < 0.02, "OCEAN p = {p_ocean}");
    }

    #[test]
    fn max_p_bit_edge_targets() {
        let w = WordErrorModel::new(39);
        assert_eq!(w.max_p_bit_for_target(2, 0.0), None);
        assert_eq!(w.max_p_bit_for_target(2, 1.0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "never fails")]
    fn max_p_bit_rejects_full_correction() {
        WordErrorModel::new(8).max_p_bit_for_target(8, 0.5);
    }

    #[test]
    fn expected_errors_linear() {
        let w = WordErrorModel::new(32);
        assert!((w.expected_errors(1e-3) - 0.032).abs() < 1e-15);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(WordErrorModel::new(39).to_string(), "39-bit word");
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
        // Recurrence Γ(x+1) = x·Γ(x).
        for x in [0.3, 1.7, 12.5] {
            assert!((ln_gamma(x + 1.0) - ln_gamma(x) - x.ln()).abs() < 1e-8, "x = {x}");
        }
    }

    #[test]
    fn correlated_distribution_normalized() {
        let m = CorrelatedWordModel::new(39, 0.1).unwrap();
        for p in [1e-4, 0.01, 0.3] {
            let total: f64 = (0..=39).map(|k| m.ln_p_exactly(k, p).exp()).sum();
            assert!((total - 1.0).abs() < 1e-9, "p = {p}: {total}");
        }
    }

    #[test]
    fn correlated_mean_matches_p() {
        let m = CorrelatedWordModel::new(39, 0.2).unwrap();
        let p = 0.03;
        let mean: f64 = (0..=39)
            .map(|k| k as f64 * m.ln_p_exactly(k, p).exp())
            .sum();
        assert!((mean / (39.0 * p) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn correlation_fattens_the_multi_bit_tail() {
        let iid = WordErrorModel::new(39);
        let lo = CorrelatedWordModel::new(39, 0.01).unwrap();
        let hi = CorrelatedWordModel::new(39, 0.2).unwrap();
        let p = 1e-5;
        let p_iid = iid.p_at_least(3, p);
        let p_lo = lo.p_at_least(3, p);
        let p_hi = hi.p_at_least(3, p);
        assert!(p_lo > p_iid, "any correlation worsens SECDED failure");
        assert!(p_hi > p_lo, "more correlation, fatter tail");
    }

    #[test]
    fn correlation_erodes_usable_voltage() {
        // Quantified Section III concern: at the SECDED operating point
        // (p ≈ 4.8e-7), even mild correlation blows through the FIT budget.
        let iid = WordErrorModel::new(39);
        let corr = CorrelatedWordModel::new(39, 0.05).unwrap();
        let p = 4.78e-7; // just inside the independent-bit budget
        assert!(iid.p_word_failure(2, p) <= 1e-15);
        assert!(
            corr.p_word_failure(2, p) > 1e-12,
            "correlated failure {} must violate the budget",
            corr.p_word_failure(2, p)
        );
    }

    #[test]
    fn correlated_validation_and_display() {
        assert!(CorrelatedWordModel::new(39, 0.0).is_err());
        assert!(CorrelatedWordModel::new(39, 1.0).is_err());
        assert!(CorrelatedWordModel::new(39, -0.5).is_err());
        let m = CorrelatedWordModel::new(39, 0.1).unwrap();
        assert!(!m.to_string().is_empty());
        assert!(!CorrelationError.to_string().is_empty());
        assert_eq!(m.bits(), 39);
        assert!((m.rho() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn correlated_edge_probabilities() {
        let m = CorrelatedWordModel::new(16, 0.1).unwrap();
        assert_eq!(m.p_at_least(0, 0.5), 1.0);
        assert_eq!(m.p_at_least(17, 0.5), 0.0);
        assert_eq!(m.ln_p_exactly(0, 0.0), 0.0);
        assert_eq!(m.ln_p_exactly(16, 1.0), 0.0);
    }
}
