//! Bit-cell styles compared by the paper (Section III / Table 1).
//!
//! The paper's design-space exploration spans "the two extremes" of NTC
//! memory implementation plus two published references:
//!
//! * the **commercial 6T macro** (COTS IP, tight SRAM design rules, lowest
//!   area, highest minimum voltage),
//! * a **custom 6T SRAM** (Rooseleer & Dehaene, ESSCIRC 2013),
//! * a **cell-based latch memory** in 65 nm (Andersson et al., ESSCIRC
//!   2013, sequential elements), and
//! * the **cell-based AOI memory** measured on the imec test chip — a
//!   cross-coupled pair of AND-OR-INVERT gates per bit, placed and routed
//!   under standard digital design rules, which is what lets it track the
//!   logic supply all the way into the NTC regime.
//!
//! Each style bundles its failure laws and layout density so the rest of
//! the workspace can ask one object for everything reliability-related.

use crate::failure::{AccessLaw, RetentionLaw};
use std::fmt;

/// A bit-cell implementation style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CellStyle {
    /// Commercial 6T SRAM macro (COTS IP) in 40 nm.
    Commercial6T,
    /// Custom-designed 6T SRAM (Rooseleer, ESSCIRC 2013) in 40 nm.
    Custom6T,
    /// Standard-cell latch-based memory (Andersson, ESSCIRC 2013) in 65 nm.
    CellBasedLatch65,
    /// Standard-cell cross-coupled AOI memory (imec test chip) in 40 nm.
    CellBasedAoi,
}

impl CellStyle {
    /// All styles, in Table 1 column order.
    pub const ALL: [CellStyle; 4] = [
        CellStyle::Commercial6T,
        CellStyle::Custom6T,
        CellStyle::CellBasedLatch65,
        CellStyle::CellBasedAoi,
    ];

    /// Transistors per bit cell.
    pub fn transistors_per_bit(&self) -> u32 {
        match self {
            CellStyle::Commercial6T | CellStyle::Custom6T => 6,
            // A latch cell is ~4 gates' worth of devices.
            CellStyle::CellBasedLatch65 => 20,
            // Cross-coupled AOI22 pair plus read/write access gating.
            CellStyle::CellBasedAoi => 14,
        }
    }

    /// Layout density in units of F² (squared feature size) per bit,
    /// including the array-level share of periphery wiring.
    ///
    /// Calibrated against Table 1's areas at 1k × 32 b: the commercial
    /// macro reaches ~190 F²/bit, the AOI cell-based design ~1100 F²/bit —
    /// the area penalty the paper accepts to buy voltage compatibility.
    pub fn area_f2_per_bit(&self) -> f64 {
        match self {
            CellStyle::Commercial6T => 190.0,
            CellStyle::Custom6T => 460.0,
            CellStyle::CellBasedLatch65 => 1700.0,
            CellStyle::CellBasedAoi => 1100.0,
        }
    }

    /// Whether the cell is placed and routed under standard digital design
    /// rules (true for the cell-based styles) — the property that makes the
    /// macro scale with the logic supply without custom re-design.
    pub fn standard_cell_rules(&self) -> bool {
        matches!(self, CellStyle::CellBasedLatch65 | CellStyle::CellBasedAoi)
    }

    /// Feature size the style was published at, in nanometers.
    pub fn native_node_nm(&self) -> f64 {
        match self {
            CellStyle::CellBasedLatch65 => 65.0,
            _ => 40.0,
        }
    }

    /// The retention failure law measured/assumed for this style.
    pub fn retention_law(&self) -> RetentionLaw {
        match self {
            CellStyle::Commercial6T => RetentionLaw::commercial_40nm(),
            // The custom 6T targets speed, not low-voltage retention;
            // model it like the commercial cell.
            CellStyle::Custom6T => RetentionLaw::commercial_40nm(),
            CellStyle::CellBasedLatch65 => RetentionLaw::cell_based_65nm(),
            CellStyle::CellBasedAoi => RetentionLaw::cell_based_40nm(),
        }
    }

    /// The read/write access failure law for this style.
    pub fn access_law(&self) -> AccessLaw {
        match self {
            CellStyle::Commercial6T | CellStyle::Custom6T => AccessLaw::commercial_40nm(),
            CellStyle::CellBasedLatch65 => {
                // 65 nm sub-VT design: functional to ~0.45 V per the
                // publication; model the knee there with the cell-based
                // exponent.
                AccessLaw::new(3.82, 7.20, 0.45).expect("constants are valid")
            }
            CellStyle::CellBasedAoi => AccessLaw::cell_based_40nm(),
        }
    }

    /// Area of a `bits`-bit array in mm² at the style's native node.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn array_area_mm2(&self, bits: u64) -> f64 {
        assert!(bits > 0, "array must contain at least one bit");
        let f_um = self.native_node_nm() / 1000.0;
        let per_bit_um2 = self.area_f2_per_bit() * f_um * f_um;
        per_bit_um2 * bits as f64 / 1e6
    }
}

impl fmt::Display for CellStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellStyle::Commercial6T => "COTS 6T (40nm)",
            CellStyle::Custom6T => "custom 6T SRAM (40nm)",
            CellStyle::CellBasedLatch65 => "cell-based latch (65nm)",
            CellStyle::CellBasedAoi => "cell-based AOI (40nm)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_ordering_matches_paper() {
        // Commercial is densest; cell-based pays the area penalty.
        let a6t = CellStyle::Commercial6T.area_f2_per_bit();
        let aoi = CellStyle::CellBasedAoi.area_f2_per_bit();
        let latch = CellStyle::CellBasedLatch65.area_f2_per_bit();
        assert!(a6t < CellStyle::Custom6T.area_f2_per_bit());
        assert!(aoi > a6t);
        // The AOI composition beats the latch one ("better area efficiency
        // … cross-coupled pair of AND-OR-INVERT gates", Section IV).
        assert!(aoi < latch);
    }

    #[test]
    fn table1_area_anchors() {
        // Table 1, scaled to 1k × 32 b: COTS ~0.01 mm², imec ~0.058 mm².
        let bits = 32 * 1024;
        let cots = CellStyle::Commercial6T.array_area_mm2(bits);
        assert!((cots / 0.010 - 1.0).abs() < 0.1, "COTS area {cots}");
        let aoi = CellStyle::CellBasedAoi.array_area_mm2(bits);
        assert!((aoi / 0.058 - 1.0).abs() < 0.1, "AOI area {aoi}");
    }

    #[test]
    fn standard_cell_styles_scale_with_logic() {
        assert!(!CellStyle::Commercial6T.standard_cell_rules());
        assert!(!CellStyle::Custom6T.standard_cell_rules());
        assert!(CellStyle::CellBasedLatch65.standard_cell_rules());
        assert!(CellStyle::CellBasedAoi.standard_cell_rules());
    }

    #[test]
    fn cell_based_access_knee_below_commercial() {
        // The whole point of the cell-based design: usable access down to
        // 0.55 V where the commercial macro stops at 0.85 V.
        let aoi = CellStyle::CellBasedAoi.access_law();
        let cots = CellStyle::Commercial6T.access_law();
        assert!(aoi.v0() < cots.v0());
    }

    #[test]
    fn retention_below_access_for_all_styles() {
        // Retention is always possible below the minimal access voltage.
        for style in CellStyle::ALL {
            let ret = style.retention_law();
            let acc = style.access_law();
            assert!(
                ret.macro_retention_voltage(32 * 1024) < acc.v0(),
                "{style}: retention must undercut access knee"
            );
        }
    }

    #[test]
    fn transistor_counts() {
        assert_eq!(CellStyle::Commercial6T.transistors_per_bit(), 6);
        assert!(CellStyle::CellBasedAoi.transistors_per_bit() > 6);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn area_rejects_zero_bits() {
        CellStyle::Commercial6T.array_area_mm2(0);
    }

    #[test]
    fn displays_distinct_and_nonempty() {
        let names: Vec<String> = CellStyle::ALL.iter().map(|s| s.to_string()).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
        assert!(names.iter().all(|n| !n.is_empty()));
    }
}
