//! End-to-end tests of the `repro` binary: exit codes and output
//! contracts of `check`, `diff`, `report` and `list`, driven through
//! the real executable (`CARGO_BIN_EXE_repro`). Everything runs at
//! quick scale on the cheap experiments (`fig6`, `table1`) so the whole
//! suite stays fast.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A fresh per-test scratch directory under the target dir.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes a quick-scale JSON baseline for the given experiments.
fn write_baseline(dir: &Path, ids: &[&str]) {
    let mut args = vec!["run"];
    args.extend_from_slice(ids);
    let dir_s = dir.to_str().unwrap();
    args.extend_from_slice(&["--quick", "--format", "json", "--out", dir_s]);
    let out = repro(&args);
    assert!(out.status.success(), "baseline run failed: {out:?}");
}

#[test]
fn check_prints_margin_for_every_anchor_and_exits_zero() {
    let out = repro(&["check", "fig6", "table1", "--quick"]);
    assert!(out.status.success(), "anchors hold at quick scale");
    let text = stdout(&out);
    assert!(text.contains("margin"), "margin column header present");
    assert!(text.contains("smallest margins"), "ranked margin table present");
    assert!(text.contains("at risk"), "at-risk summary present");
    // Every verdict line carries a margin value (exact bands say so).
    let verdicts = text.lines().filter(|l| l.contains(" ok (") || l.contains(" MISS (")).count();
    assert!(verdicts >= 11, "one verdict per anchor: {text}");
}

#[test]
fn diff_is_clean_against_a_fresh_baseline() {
    let dir = scratch("diff_clean");
    write_baseline(&dir, &["fig6", "table1"]);
    let out = repro(&["diff", dir.to_str().unwrap(), "--quick"]);
    assert!(out.status.success(), "identical rerun must diff clean: {out:?}");
    let text = stdout(&out);
    assert!(text.contains("fig6"), "{text}");
    assert!(text.contains("0 difference(s)"), "{text}");
}

#[test]
fn diff_exits_nonzero_on_an_injected_value_regression() {
    let dir = scratch("diff_value");
    write_baseline(&dir, &["fig6"]);
    // Perturb one scalar well beyond the default 1e-6 relative
    // tolerance: the platform's core energy 25 → 25.1 pJ/cycle.
    let path = dir.join("fig6.json");
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"value\": 25\n"), "injection target present");
    std::fs::write(&path, json.replace("\"value\": 25\n", "\"value\": 25.1\n")).unwrap();
    let out = repro(&["diff", dir.to_str().unwrap(), "--quick"]);
    assert!(!out.status.success(), "perturbed baseline must fail the diff");
    let text = stdout(&out);
    assert!(text.contains("core energy"), "offending scalar named: {text}");
    assert!(text.contains("[value]"), "numeric drift, not structure: {text}");
}

#[test]
fn diff_tolerance_flag_absorbs_the_same_injection() {
    let dir = scratch("diff_rtol");
    write_baseline(&dir, &["fig6"]);
    let path = dir.join("fig6.json");
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, json.replace("\"value\": 25\n", "\"value\": 25.1\n")).unwrap();
    // 25 → 25.1 is a 0.4% move; rtol 0.01 must accept it.
    let out = repro(&["diff", dir.to_str().unwrap(), "--quick", "--rtol", "0.01"]);
    assert!(out.status.success(), "loose tolerance absorbs the drift: {out:?}");
}

#[test]
fn diff_reports_structural_drift() {
    let dir = scratch("diff_structure");
    write_baseline(&dir, &["fig6"]);
    let path = dir.join("fig6.json");
    let json = std::fs::read_to_string(&path).unwrap();
    // Rename a scalar in the baseline: the current run then misses it.
    std::fs::write(&path, json.replace("core energy", "core energy (renamed)")).unwrap();
    let out = repro(&["diff", dir.to_str().unwrap(), "--quick"]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("[structure]"), "{out:?}");
}

#[test]
fn diff_skips_provenance_sidecars() {
    let dir = scratch("diff_provenance");
    write_baseline(&dir, &["fig6"]);
    // Provenance sidecars carry wall-clock data and must never be
    // treated as artifacts — corrupt one and the diff must stay clean.
    std::fs::write(dir.join("fig6.provenance.json"), "{not json").unwrap();
    let out = repro(&["diff", dir.to_str().unwrap(), "--quick"]);
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn diff_rejects_an_empty_baseline_dir() {
    let dir = scratch("diff_empty");
    let out = repro(&["diff", dir.to_str().unwrap(), "--quick"]);
    assert_eq!(out.status.code(), Some(2), "usage-style failure: {out:?}");
}

#[test]
fn report_writes_self_contained_html() {
    let dir = scratch("report_html");
    let path = dir.join("report.html");
    let out = repro(&["report", "fig6", "table1", "--quick", "--html", path.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let html = std::fs::read_to_string(&path).unwrap();
    assert!(html.starts_with("<!DOCTYPE html>"));
    for needle in ["http://", "https://", "<script src", "<link"] {
        assert!(!html.contains(needle), "external asset `{needle}` in report");
    }
    assert!(html.contains("Paper anchors"), "margin section present");
    assert!(html.contains("<style>"), "inline styling");
}

#[test]
fn list_verbose_shows_paper_refs_and_anchor_counts() {
    let out = repro(&["list", "--verbose"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("Fig. 4 / Eq. 4"), "{text}");
    assert!(text.contains("Table 2"), "{text}");
    assert!(text.contains("anchors"), "header present: {text}");
    // Terse list stays terse.
    let terse = stdout(&repro(&["list"]));
    assert!(!terse.contains("anchors"));
}

#[test]
fn unknown_experiment_exits_with_usage_code() {
    let out = repro(&["check", "definitely-not-an-experiment", "--quick"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_experiment_error_names_the_valid_ids() {
    let out = repro(&["run", "fig99", "--quick"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("fig99"), "offending id echoed: {err}");
    for id in ["fig1", "table2", "ablation_phases"] {
        assert!(err.contains(id), "valid id `{id}` listed: {err}");
    }
}

#[test]
fn serve_answers_http_on_an_os_assigned_port() {
    use std::io::{BufRead, BufReader, Read, Write};

    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--port", "0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("serve starts");

    // First stdout line is the machine-readable bind address.
    let mut lines = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut first = String::new();
    lines.read_line(&mut first).expect("bind line");
    let addr = first
        .trim()
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected bind line {first:?}"))
        .to_string();

    let request = |raw: String| -> String {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(60)))
            .expect("timeout");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut text = String::new();
        stream.read_to_string(&mut text).expect("response");
        text
    };

    let health = request("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n".into());
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");

    let body = r#"{"kind":"vmin","scheme":"ocean","frequency_hz":290e3}"#;
    let query = request(format!(
        "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    ));
    assert!(query.starts_with("HTTP/1.1 200"), "{query}");
    assert!(query.contains(r#""operating":0.33"#), "Table 2 OCEAN cell: {query}");

    child.kill().expect("stop server");
    let _ = child.wait();
}

// ---------------------------------------------------------------------
// Store / checkpoint / worker-mode tests. These all use `fig5` — the
// cheap experiment whose Monte-Carlo collectives checkpoint (~40 ms at
// quick scale) — and a per-test store directory, so they are
// independent of each other and of any ambient NTC_STORE.
// ---------------------------------------------------------------------

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Runs `repro` with NTC_STORE cleared so only explicit `--store` flags
/// matter.
fn repro_clean_env(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .env_remove("NTC_STORE")
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn interrupted_worker_then_resume_reproduces_the_uninterrupted_bytes() {
    let base = scratch("store_resume_base");
    write_baseline(&base, &["fig5"]);
    let store = scratch("store_resume_store");
    let store_s = store.to_str().unwrap();

    // Phase 1: a worker claims half the shard space, checkpoints it and
    // "dies" (exits). It must publish no artifact — its fold is partial.
    let out = repro_clean_env(&[
        "run", "fig5", "--quick", "--store", store_s, "--shards", "0..32",
    ]);
    assert!(out.status.success(), "worker run failed: {out:?}");
    assert!(stderr(&out).contains("checkpointed"), "{}", stderr(&out));
    let artifacts: Vec<_> = std::fs::read_dir(store.join("artifacts")).unwrap().collect();
    assert!(artifacts.is_empty(), "worker must not publish artifacts");
    let n_ckpt = count_files(&store.join("checkpoints"));
    assert!(n_ckpt > 0, "worker saved its claimed shards");

    // Phase 2: `--resume` restores the saved half, computes the rest,
    // and the merged artifact is byte-identical to the store-free run.
    let dir2 = scratch("store_resume_out");
    let out = repro_clean_env(&[
        "run", "fig5", "--quick", "--format", "json",
        "--out", dir2.to_str().unwrap(), "--store", store_s, "--resume",
    ]);
    assert!(out.status.success(), "resume run failed: {out:?}");
    let baseline = std::fs::read(base.join("fig5.json")).unwrap();
    assert_eq!(
        std::fs::read(dir2.join("fig5.json")).unwrap(),
        baseline,
        "resumed sweep must be byte-identical to the uninterrupted run"
    );

    // Phase 3: the artifact is now published; a second `--resume` serves
    // it from the store without recomputing, still byte-for-byte.
    let dir3 = scratch("store_resume_again");
    let out = repro_clean_env(&[
        "run", "fig5", "--quick", "--format", "json",
        "--out", dir3.to_str().unwrap(), "--store", store_s, "--resume",
    ]);
    assert!(out.status.success(), "second resume failed: {out:?}");
    assert!(
        stderr(&out).contains("served from store"),
        "store hit announced: {}",
        stderr(&out)
    );
    assert_eq!(std::fs::read(dir3.join("fig5.json")).unwrap(), baseline);
}

#[test]
fn two_concurrent_workers_merge_to_the_single_process_bytes() {
    let base = scratch("store_two_workers_base");
    write_baseline(&base, &["fig5"]);
    let store = scratch("store_two_workers_store");
    let store_s = store.to_str().unwrap();

    // Two genuinely concurrent processes claim disjoint halves of the
    // 64-shard space against the same store.
    let spawn = |range: &str| {
        Command::new(env!("CARGO_BIN_EXE_repro"))
            .env_remove("NTC_STORE")
            .args(["run", "fig5", "--quick", "--store", store_s, "--shards", range])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("worker spawns")
    };
    let mut a = spawn("0..32");
    let mut b = spawn("32..64");
    assert!(a.wait().unwrap().success(), "worker A failed");
    assert!(b.wait().unwrap().success(), "worker B failed");

    // The merge restores both halves and must reproduce the
    // single-process artifact exactly.
    let out_dir = scratch("store_two_workers_out");
    let out = repro_clean_env(&[
        "run", "fig5", "--quick", "--format", "json",
        "--out", out_dir.to_str().unwrap(), "--store", store_s, "--resume",
    ]);
    assert!(out.status.success(), "merge run failed: {out:?}");
    assert_eq!(
        std::fs::read(out_dir.join("fig5.json")).unwrap(),
        std::fs::read(base.join("fig5.json")).unwrap(),
        "two-worker split must merge to the single-process bytes"
    );
}

#[test]
fn worker_mode_without_a_store_is_a_usage_error() {
    let out = repro_clean_env(&["run", "fig5", "--quick", "--shards", "0..32"]);
    assert_eq!(out.status.code(), Some(2), "usage error: {out:?}");
    assert!(stderr(&out).contains("--store"), "{}", stderr(&out));
}

#[test]
fn overlapping_shard_claims_are_refused() {
    let store = scratch("store_claim_conflict");
    // A live (or stale) claim over 16..48 already holds the lock.
    std::fs::create_dir_all(store.join("locks")).unwrap();
    std::fs::write(store.join("locks/claim-16-48.lock"), "pid 999999\n").unwrap();
    let out = repro_clean_env(&[
        "run", "fig5", "--quick", "--store", store.to_str().unwrap(),
        "--shards", "0..32",
    ]);
    assert_eq!(out.status.code(), Some(1), "claim conflict exits 1: {out:?}");
    assert!(stderr(&out).contains("cannot claim"), "{}", stderr(&out));
    // A disjoint range is still claimable.
    let out = repro_clean_env(&[
        "run", "fig5", "--quick", "--store", store.to_str().unwrap(),
        "--shards", "48..64",
    ]);
    assert!(out.status.success(), "disjoint claim proceeds: {out:?}");
}

#[test]
fn list_verbose_reports_store_status_per_experiment() {
    let store = scratch("store_list_status");
    let store_s = store.to_str().unwrap();
    // Publish fig5 (quick) and leave fig6 untouched.
    let out = repro_clean_env(&["run", "fig5", "--quick", "--store", store_s]);
    assert!(out.status.success(), "{out:?}");
    let out = repro_clean_env(&["list", "--verbose", "--store", store_s]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    let fig5_line = text.lines().find(|l| l.starts_with("fig5")).unwrap();
    assert!(fig5_line.contains("cached(quick)"), "{fig5_line}");
    let fig6_line = text.lines().find(|l| l.starts_with("fig6")).unwrap();
    assert!(fig6_line.contains("absent"), "{fig6_line}");
    assert!(text.contains("store "), "store summary line present: {text}");
}

#[test]
fn store_stat_counts_and_gc_sweeps_corruption() {
    let store = scratch("store_stat_gc");
    let store_s = store.to_str().unwrap();
    let out = repro_clean_env(&[
        "run", "fig5", "--quick", "--store", store_s, "--shards", "0..8",
    ]);
    assert!(out.status.success(), "{out:?}");

    let out = repro_clean_env(&["store", "stat", "--store", store_s]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("artifacts 0"), "worker published nothing: {text}");
    let ckpts = count_files(&store.join("checkpoints"));
    assert!(ckpts > 0, "stat sees checkpoints");
    assert!(text.contains(&format!("checkpoints {ckpts}")), "{text}");

    // Corrupt one checkpoint file; gc must sweep exactly that file (the
    // integrity hash catches the flip) and leave the rest.
    let victim = find_first_file(&store.join("checkpoints")).expect("a checkpoint exists");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&victim, bytes).unwrap();
    let out = repro_clean_env(&["store", "gc", "--store", store_s]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("1 checkpoints"), "{}", stdout(&out));
    assert_eq!(count_files(&store.join("checkpoints")), ckpts - 1);
}

/// Counts regular files under `dir`, recursively.
fn count_files(dir: &Path) -> usize {
    let mut n = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                n += 1;
            }
        }
    }
    n
}

/// The first regular file under `dir`, depth-first.
fn find_first_file(dir: &Path) -> Option<PathBuf> {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                return Some(p);
            }
        }
    }
    None
}

#[test]
fn bench_serve_smoke_writes_a_clean_report() {
    let dir = scratch("bench-serve-smoke");
    let out_path = dir.join("BENCH_serve.json");
    let out = repro(&[
        "bench-serve",
        "--rate",
        "25",
        "--duration-secs",
        "1",
        "--connections",
        "4",
        "--run-every",
        "8",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "bench-serve smoke must see no non-503 failures: {}",
        stderr(&out)
    );
    let text = std::fs::read_to_string(&out_path).expect("BENCH_serve.json written");
    let report = ntc::artifact::json::parse(&text).expect("report is JSON");
    assert_eq!(
        report.get("schema").and_then(ntc::artifact::json::JsonValue::as_str),
        Some("ntc.bench.serve.v1")
    );
    assert!(report.get("capacity_rps").is_some());
    assert!(report.get("sustained_rps").is_some());
    assert!(report.get("cache").and_then(|c| c.get("query_hit_rate")).is_some());
    let sweep = report
        .get("sweep")
        .and_then(ntc::artifact::json::JsonValue::as_arr)
        .expect("sweep array");
    assert_eq!(sweep.len(), 1, "--rate pins the sweep to one point");
    for key in ["p50_ms", "p90_ms", "p99_ms", "p999_ms", "rejected_503", "error_rate"] {
        assert!(sweep[0].get(key).is_some(), "sweep rows carry {key}: {text}");
    }
}

#[test]
fn status_aggregates_worker_journals_in_text_and_json() {
    use ntc::artifact::json::JsonValue;
    let store = scratch("status_cli");
    let store_s = store.to_str().unwrap();
    let out = repro_clean_env(&[
        "run", "fig5", "--quick", "--store", store_s, "--shards", "0..8",
    ]);
    assert!(out.status.success(), "{out:?}");

    let out = repro_clean_env(&["status", "--store", store_s]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("1 worker(s)"), "{text}");
    assert!(text.contains("0..8"), "worker range shown: {text}");
    assert!(text.contains("done"), "finished worker reads done: {text}");

    let out = repro_clean_env(&["status", "--store", store_s, "--format", "json"]);
    assert!(out.status.success(), "{out:?}");
    let doc = ntc::artifact::json::parse(&stdout(&out)).expect("status JSON parses");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("ntc.status.v1")
    );
    let workers = doc.get("workers").and_then(JsonValue::as_arr).expect("workers array");
    assert_eq!(workers.len(), 1);
    let w = &workers[0];
    assert_eq!(w.get("lo").and_then(JsonValue::as_num), Some(0.0));
    assert_eq!(w.get("hi").and_then(JsonValue::as_num), Some(8.0));
    assert_eq!(w.get("state").and_then(JsonValue::as_str), Some("done"));
    assert_eq!(w.get("done"), Some(&JsonValue::Bool(true)));
    let total = w.get("shards_total").and_then(JsonValue::as_num).unwrap();
    assert!(total > 0.0, "done worker reports its totals: {total}");
    assert_eq!(w.get("shards_done").and_then(JsonValue::as_num), Some(total));
    assert_eq!(w.get("eta_secs").and_then(JsonValue::as_num), Some(0.0));
    assert_eq!(
        doc.get("fleet").and_then(|f| f.get("stalled")).and_then(JsonValue::as_num),
        Some(0.0)
    );
}

#[test]
fn status_without_a_store_is_a_usage_error() {
    let out = repro_clean_env(&["status"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(stderr(&out).contains("--store"), "{}", stderr(&out));
}

#[test]
fn store_stat_renders_human_sizes_ages_and_journals() {
    let store = scratch("store_stat_human");
    let store_s = store.to_str().unwrap();
    let out = repro_clean_env(&[
        "run", "fig5", "--quick", "--store", store_s, "--shards", "0..8",
    ]);
    assert!(out.status.success(), "{out:?}");

    let out = repro_clean_env(&["store", "stat", "--store", store_s]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    let journal_line = text.lines().find(|l| l.starts_with("journals")).unwrap_or_else(|| {
        panic!("stat lists the worker journal: {text}")
    });
    assert!(journal_line.contains("journals 1"), "{journal_line}");
    for label in ["artifacts", "checkpoints", "locks", "journals"] {
        assert!(text.contains(label), "per-kind row for {label}: {text}");
    }
    let ckpt_line = text.lines().find(|l| l.starts_with("checkpoints")).unwrap();
    assert!(ckpt_line.contains("KiB)") || ckpt_line.contains("B)"), "human size: {ckpt_line}");
    assert!(ckpt_line.contains("newest"), "age summary: {ckpt_line}");
    assert!(ckpt_line.contains("oldest"), "age summary: {ckpt_line}");
}

// ---------------------------------------------------------------------
// `repro optimize` — the CLI face of the design-space autotuner. The
// handcrafted requests stay tiny (one cell style, one word count) so
// each search finishes in milliseconds; the paper-preset test runs the
// full Table 2 space once.
// ---------------------------------------------------------------------

const OPT_REQUEST: &str = concat!(
    r#"{"constraints":{"frequency_hz":290e3},"#,
    r#""space":{"banks":[1,2],"words":[2048],"cells":["cell_based_aoi"],"#,
    r#""schemes":["secded","ocean"]},"restarts":2}"#
);

/// Runs `repro` with a pinned `NTC_THREADS` and no ambient store.
fn repro_threads(args: &[&str], threads: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .env_remove("NTC_STORE")
        .env("NTC_THREADS", threads)
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn optimize_bytes_are_identical_across_thread_counts() {
    let dir = scratch("optimize_threads");
    let req = dir.join("request.json");
    std::fs::write(&req, OPT_REQUEST).unwrap();
    let req_s = req.to_str().unwrap();
    let one = repro_threads(&["optimize", "--request", req_s], "1");
    assert!(one.status.success(), "{}", stderr(&one));
    let seven = repro_threads(&["optimize", "--request", req_s], "7");
    assert!(seven.status.success(), "{}", stderr(&seven));
    assert_eq!(one.stdout, seven.stdout, "NTC_THREADS must not change the bytes");
}

#[test]
fn optimize_is_invariant_to_axis_enumeration_order() {
    // Same space, axes listed in different orders: canonicalization
    // sorts them, so the hash — and therefore the bytes — must agree.
    let dir = scratch("optimize_axis_order");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    std::fs::write(&a, OPT_REQUEST).unwrap();
    std::fs::write(
        &b,
        concat!(
            r#"{"constraints":{"frequency_hz":290e3},"#,
            r#""space":{"banks":[2,1],"words":[2048],"cells":["cell_based_aoi"],"#,
            r#""schemes":["ocean","secded"]},"restarts":2}"#
        ),
    )
    .unwrap();
    let out_a = repro_clean_env(&["optimize", "--request", a.to_str().unwrap()]);
    let out_b = repro_clean_env(&["optimize", "--request", b.to_str().unwrap()]);
    assert!(out_a.status.success(), "{}", stderr(&out_a));
    assert!(out_b.status.success(), "{}", stderr(&out_b));
    assert_eq!(out_a.stdout, out_b.stdout, "axis enumeration order leaked into the response");
}

#[test]
fn optimize_second_run_is_served_from_the_store_byte_for_byte() {
    let dir = scratch("optimize_store");
    let store = dir.join("store");
    let req = dir.join("request.json");
    std::fs::write(&req, OPT_REQUEST).unwrap();
    let store_s = store.to_str().unwrap();
    let req_s = req.to_str().unwrap();
    let first = repro_clean_env(&["optimize", "--request", req_s, "--store", store_s]);
    assert!(first.status.success(), "{}", stderr(&first));
    assert!(!stderr(&first).contains("served from store"), "first run computes");
    let second = repro_clean_env(&["optimize", "--request", req_s, "--store", store_s]);
    assert!(second.status.success(), "{}", stderr(&second));
    assert!(stderr(&second).contains("served from store"), "{}", stderr(&second));
    assert_eq!(first.stdout, second.stdout, "store replay must be byte-identical");
}

#[test]
fn optimize_paper_preset_rediscovers_the_table2_point() {
    let out = repro_clean_env(&["optimize", "--frequency", "290e3"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let resp = ntc::api::OptimizeResponse::from_json(&stdout(&out))
        .expect("stdout is a typed OptimizeResponse");
    assert!(resp.feasible);
    let best = resp.best.expect("paper space is feasible");
    assert_eq!(best.scheme, ntc::fit::Scheme::Ocean, "Table 2 winner");
    assert_eq!(best.vdd, 0.33, "Table 2 OCEAN supply at 290 kHz");
    let mut req = ntc::api::OptimizeRequest::paper(290e3);
    req.canonicalize();
    assert_eq!(resp.request_hash, req.request_hash_hex(), "hash echoes the request");
}

#[test]
fn optimize_reports_an_infeasible_space_with_exit_one() {
    // 10 GHz is unreachable at <= 1.2 V: the search must terminate
    // cleanly, say so on stderr, and still emit the typed response.
    let dir = scratch("optimize_infeasible");
    let req = dir.join("request.json");
    std::fs::write(
        &req,
        concat!(
            r#"{"constraints":{"frequency_hz":1e10},"#,
            r#""space":{"banks":[1,2],"words":[2048],"cells":["cell_based_aoi"],"#,
            r#""schemes":["ocean"]},"restarts":2}"#
        ),
    )
    .unwrap();
    let out = repro_clean_env(&["optimize", "--request", req.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(stderr(&out).contains("no feasible design"), "{}", stderr(&out));
    let resp = ntc::api::OptimizeResponse::from_json(&stdout(&out)).expect("typed body");
    assert!(!resp.feasible);
    assert!(resp.best.is_none());
}
