//! Serial vs. parallel wall-clock comparison for the hot paths named in
//! the acceptance criteria — fig4's die synthesis, table2's voltage grid
//! search, and the Monte-Carlo engine itself — plus a determinism audit:
//! the parallel and batched results must be byte-identical to the serial
//! scalar ones.
//!
//! The Monte-Carlo section compares three tiers of the same estimator:
//!
//! * the scalar closure path (`mc_counter` drawing one uniform per trial
//!   through a `Source` held in a register),
//! * the batched SoA kernel (`mc_rate`: block-filled uniform mantissas
//!   compared against an integer threshold — the same streams, so the
//!   counter is asserted bit-identical), and
//! * the counter-based lane kernel (`mc_lane_rate`: no generator state at
//!   all, one splitmix64 finalizer per lane).
//!
//! `mc_throughput.samples_per_sec` headlines the lane kernel — the SoA
//! engine new work builds on (the tilted tail sampler, `mc_lane_rate`) —
//! with the scalar and stream-preserving numbers recorded alongside; the
//! stream kernel must stay bit-identical to the scalar closure path and
//! the lane kernel is asserted to be a pure function of its seed.
//!
//! Unlike the criterion benches, this harness writes a machine-readable
//! summary to `BENCH_parallel_mc.json` at the repository root so the
//! speedups and the identity checks are recorded per run. The committed
//! file also carries `floor_samples_per_sec`, a conservative throughput
//! floor for the headline kernel; running with `NTC_BENCH_SMOKE=1`
//! re-measures at reduced trials, asserts the measurement has not
//! regressed more than 30 % below that committed floor, and leaves the
//! JSON untouched (CI's regression gate).

use ntc::fit::{paper_platform_cache_stats, paper_platform_f_max, FitSolver, VoltageGrid};
use ntc_sram::failure::{AccessLaw, RetentionLaw};
use ntc_sram::{DieMap, DieMapConfig};
use ntc_stats::diag::{Convergence, TiltedConvergence};
use ntc_stats::exec::{mc_counter, mc_lane_rate, mc_rate, mc_rate_shards, threads};
use ntc_stats::math::phi;
use ntc_stats::mc::tilted::gauss_tail_shards;
use std::hint::black_box;
use std::time::Instant;

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// The committed batched-kernel throughput floor, parsed from the
/// repository's `BENCH_parallel_mc.json` without a JSON dependency.
fn committed_floor(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let at = text.find("\"floor_samples_per_sec\":")?;
    let rest = &text[at + "\"floor_samples_per_sec\":".len()..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn main() {
    let bench_json = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel_mc.json");
    let smoke = std::env::var("NTC_BENCH_SMOKE").is_ok_and(|v| v.trim() == "1");

    // Monte-Carlo engine throughput: a rare-event trial batch big enough
    // to keep every shard busy, reported as samples per second. The
    // batched kernel consumes exactly the scalar path's streams, so its
    // counter is asserted bit-identical before any timing is trusted.
    let mc_trials: u64 = if smoke { 250_000 } else { 2_000_000 };
    let reps = if smoke { 3 } else { 7 };
    let mc_p = 1e-3;

    let scalar_counter = mc_counter(mc_trials, 11, |s| s.bernoulli(mc_p));
    let batched_counter = mc_rate(mc_trials, 11, mc_p);
    assert_eq!(
        batched_counter, scalar_counter,
        "batched kernel diverged from the scalar closure path"
    );

    // The lane kernel runs a larger batch so its sub-millisecond per-rep
    // time is not dominated by timer granularity.
    let lane_trials: u64 = 4 * mc_trials;
    let t_mc_scalar = time_median(reps, || mc_counter(mc_trials, 11, |s| s.bernoulli(mc_p)));
    let t_mc = time_median(reps, || mc_rate(mc_trials, 11, mc_p));
    let t_mc_lane = time_median(reps, || mc_lane_rate(lane_trials, 11, mc_p));
    assert_eq!(
        mc_lane_rate(lane_trials, 11, mc_p),
        mc_lane_rate(lane_trials, 11, mc_p),
        "lane kernel must be a pure function of (trials, seed, p)"
    );
    let scalar_samples_per_sec = mc_trials as f64 / t_mc_scalar;
    let stream_samples_per_sec = mc_trials as f64 / t_mc;
    let lane_samples_per_sec = lane_trials as f64 / t_mc_lane;

    // Importance-sampled deep tail: the 8-sigma Gaussian exceedance the
    // `ablation_tail_mc` experiment anchors (true value ~6.2e-16). The
    // sampler's throughput is what the batched kernel's speedup was spent
    // on; accuracy and effective sample size are asserted, not assumed.
    let tilt_trials: u64 = if smoke { 40_000 } else { 400_000 };
    let tilt_t = 8.0;
    let t_tilted = time_median(reps, || gauss_tail_shards(tilt_trials, 11, tilt_t));
    let tilted = TiltedConvergence::from_shards(&gauss_tail_shards(tilt_trials, 11, tilt_t));
    let tilted_ratio = tilted.estimate / phi(-tilt_t);
    assert!(
        (tilted_ratio - 1.0).abs() < 0.15,
        "tilted estimate off the closed form: ratio {tilted_ratio}"
    );
    assert!(
        tilted.effective_samples >= 1000.0,
        "tilted weights degenerated: ESS {}",
        tilted.effective_samples
    );
    let tilted_samples_per_sec = tilt_trials as f64 / t_tilted;

    if smoke {
        // Regression gate only: compare against the committed floor and
        // leave the recorded JSON alone.
        let floor = committed_floor(bench_json)
            .expect("BENCH_parallel_mc.json must carry floor_samples_per_sec");
        println!(
            "smoke: lane {lane_samples_per_sec:.0} samples/s (floor {floor:.0}), \
             stream {stream_samples_per_sec:.0}, scalar {scalar_samples_per_sec:.0}, \
             tilted {tilted_samples_per_sec:.0} (ratio {tilted_ratio:.3}, ESS {:.0})",
            tilted.effective_samples
        );
        assert!(
            lane_samples_per_sec >= 0.7 * floor,
            "lane MC throughput {lane_samples_per_sec:.0}/s regressed more than 30 % \
             below the committed floor {floor:.0}/s"
        );
        return;
    }

    // Scale the die population up from the paper's nine so the parallel
    // section has enough work per shard to amortize thread spawn.
    let cfg = DieMapConfig::new(256, 512, RetentionLaw::cell_based_40nm());
    let dies_n = 36;
    let seed = 4;

    let t_serial_fig4 = time_median(reps, || {
        DieMap::synthesize_population_serial(&cfg, dies_n, seed)
    });
    let t_parallel_fig4 = time_median(reps, || DieMap::synthesize_population(&cfg, dies_n, seed));
    let fig4_identical = DieMap::synthesize_population(&cfg, dies_n, seed)
        == DieMap::synthesize_population_serial(&cfg, dies_n, seed);

    let solver =
        FitSolver::new(AccessLaw::cell_based_40nm(), 1e-15).with_grid(VoltageGrid::PaperGrid);
    let freqs: Vec<f64> = (0..24).map(|i| 290e3 * 1.2f64.powi(i)).collect();
    let t_serial_table2 = time_median(reps, || {
        freqs
            .iter()
            .map(|&f| solver.table_row_serial(f, paper_platform_f_max))
            .collect::<Vec<_>>()
    });
    let t_parallel_table2 = time_median(reps, || solver.table(&freqs, paper_platform_f_max));
    let table2_identical = solver.table(&freqs, paper_platform_f_max)
        == freqs
            .iter()
            .map(|&f| solver.table_row_serial(f, paper_platform_f_max))
            .collect::<Vec<_>>();
    let cache = paper_platform_cache_stats();

    // Diagnostics overhead, measured with the observability layer on plus
    // the per-shard convergence diagnostics the repro CLI publishes —
    // `enable()` is global and irreversible, so every plain measurement
    // above had to come first.
    ntc_obs::enable();
    let t_mc_diag = time_median(reps, || {
        let shards = mc_rate_shards(mc_trials, 11, mc_p);
        Convergence::from_counters(&shards).publish("diag.bench.mc");
        shards
    });
    let diag_samples_per_sec = mc_trials as f64 / t_mc_diag;

    let threads = threads();
    let ntc_threads_env = match std::env::var("NTC_THREADS") {
        Ok(v) => format!("\"{}\"", v.trim()),
        Err(_) => "null".to_string(),
    };
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Conservative committed floor: half the measured headline throughput,
    // so the smoke gate (>= 70 % of floor) only trips on real multi-x
    // regressions, not scheduler noise.
    let floor_samples_per_sec = (lane_samples_per_sec * 0.5).round();

    let json = format!(
        concat!(
            "{{\n",
            "  \"threads\": {},\n",
            "  \"ntc_threads_env\": {},\n",
            "  \"available_parallelism\": {},\n",
            "  \"fig4_nine_die_synthesis\": {{\n",
            "    \"dies\": {}, \"rows\": 256, \"cols\": 512,\n",
            "    \"serial_ms\": {:.3}, \"parallel_ms\": {:.3},\n",
            "    \"speedup\": {:.2}, \"identical\": {}\n",
            "  }},\n",
            "  \"table2_grid_search\": {{\n",
            "    \"frequencies\": {}, \"schemes\": 3,\n",
            "    \"serial_ms\": {:.3}, \"parallel_ms\": {:.3},\n",
            "    \"speedup\": {:.2}, \"identical\": {},\n",
            "    \"f_max_cache_hits\": {}, \"f_max_cache_misses\": {},\n",
            "    \"energy_cache_hit_rate\": {:.6}\n",
            "  }},\n",
            "  \"mc_throughput\": {{\n",
            "    \"kernel\": \"counter_lane_soa\",\n",
            "    \"trials\": {}, \"parallel_ms\": {:.3}, \"samples_per_sec\": {:.0},\n",
            "    \"speedup_vs_scalar\": {:.2},\n",
            "    \"scalar_trials\": {}, \"scalar_ms\": {:.3}, \"scalar_samples_per_sec\": {:.0},\n",
            "    \"stream_ms\": {:.3}, \"stream_samples_per_sec\": {:.0},\n",
            "    \"stream_speedup_vs_scalar\": {:.2}, \"stream_identical\": {},\n",
            "    \"floor_samples_per_sec\": {:.0}\n",
            "  }},\n",
            "  \"tilted_tail\": {{\n",
            "    \"trials\": {}, \"sigma\": {:.1}, \"parallel_ms\": {:.3},\n",
            "    \"samples_per_sec\": {:.0}, \"closed_form_ratio\": {:.4},\n",
            "    \"effective_samples\": {:.0}\n",
            "  }},\n",
            "  \"diagnostics_overhead\": {{\n",
            "    \"trials\": {}, \"parallel_ms\": {:.3}, \"samples_per_sec\": {:.0},\n",
            "    \"overhead_pct\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        threads,
        ntc_threads_env,
        available,
        dies_n,
        t_serial_fig4 * 1e3,
        t_parallel_fig4 * 1e3,
        t_serial_fig4 / t_parallel_fig4,
        fig4_identical,
        freqs.len(),
        t_serial_table2 * 1e3,
        t_parallel_table2 * 1e3,
        t_serial_table2 / t_parallel_table2,
        table2_identical,
        cache.hits,
        cache.misses,
        cache.hit_rate(),
        lane_trials,
        t_mc_lane * 1e3,
        lane_samples_per_sec,
        lane_samples_per_sec / scalar_samples_per_sec,
        mc_trials,
        t_mc_scalar * 1e3,
        scalar_samples_per_sec,
        t_mc * 1e3,
        stream_samples_per_sec,
        t_mc_scalar / t_mc,
        batched_counter == scalar_counter,
        floor_samples_per_sec,
        tilt_trials,
        tilt_t,
        t_tilted * 1e3,
        tilted_samples_per_sec,
        tilted_ratio,
        tilted.effective_samples,
        mc_trials,
        t_mc_diag * 1e3,
        diag_samples_per_sec,
        (t_mc_diag / t_mc - 1.0) * 100.0,
    );
    print!("{json}");
    if let Err(e) = std::fs::write(bench_json, &json) {
        eprintln!("could not write {bench_json}: {e}");
    }

    assert!(fig4_identical, "parallel fig4 population diverged from serial");
    assert!(table2_identical, "parallel table2 diverged from serial");
}
