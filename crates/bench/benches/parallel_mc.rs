//! Serial vs. parallel wall-clock comparison for the two hot paths named
//! in the acceptance criteria — fig4's nine-die synthesis and table2's
//! voltage grid search — plus a determinism audit: the parallel results
//! must be byte-identical to the serial ones.
//!
//! Unlike the criterion benches, this harness writes a machine-readable
//! summary to `BENCH_parallel_mc.json` at the repository root so the
//! speedup and the identity check are recorded per run.

use ntc::fit::{paper_platform_cache_stats, paper_platform_f_max, FitSolver, VoltageGrid};
use ntc_sram::failure::{AccessLaw, RetentionLaw};
use ntc_sram::{DieMap, DieMapConfig};
use ntc_stats::diag::Convergence;
use ntc_stats::exec::{mc_counter, mc_counter_shards, threads};
use std::hint::black_box;
use std::time::Instant;

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() {
    // Scale the die population up from the paper's nine so the parallel
    // section has enough work per shard to amortize thread spawn.
    let cfg = DieMapConfig::new(256, 512, RetentionLaw::cell_based_40nm());
    let dies_n = 36;
    let seed = 4;
    let reps = 7;

    let t_serial_fig4 = time_median(reps, || {
        DieMap::synthesize_population_serial(&cfg, dies_n, seed)
    });
    let t_parallel_fig4 = time_median(reps, || DieMap::synthesize_population(&cfg, dies_n, seed));
    let fig4_identical = DieMap::synthesize_population(&cfg, dies_n, seed)
        == DieMap::synthesize_population_serial(&cfg, dies_n, seed);

    let solver =
        FitSolver::new(AccessLaw::cell_based_40nm(), 1e-15).with_grid(VoltageGrid::PaperGrid);
    let freqs: Vec<f64> = (0..24).map(|i| 290e3 * 1.2f64.powi(i)).collect();
    let t_serial_table2 = time_median(reps, || {
        freqs
            .iter()
            .map(|&f| solver.table_row_serial(f, paper_platform_f_max))
            .collect::<Vec<_>>()
    });
    let t_parallel_table2 = time_median(reps, || solver.table(&freqs, paper_platform_f_max));
    let table2_identical = solver.table(&freqs, paper_platform_f_max)
        == freqs
            .iter()
            .map(|&f| solver.table_row_serial(f, paper_platform_f_max))
            .collect::<Vec<_>>();
    let cache = paper_platform_cache_stats();

    // Raw Monte-Carlo engine throughput: a rare-event trial batch big
    // enough to keep every shard busy, reported as samples per second.
    // Measured first with the observability layer off, then again with
    // it on plus the per-shard convergence diagnostics the repro CLI
    // publishes — `enable()` is global and irreversible, so order
    // matters and the plain measurement must come first.
    let mc_trials: u64 = 2_000_000;
    let t_mc = time_median(reps, || mc_counter(mc_trials, 11, |s| s.bernoulli(1e-3)));
    let mc_samples_per_sec = mc_trials as f64 / t_mc;

    ntc_obs::enable();
    let t_mc_diag = time_median(reps, || {
        let shards = mc_counter_shards(mc_trials, 11, |s| s.bernoulli(1e-3));
        Convergence::from_counters(&shards).publish("diag.bench.mc");
        shards
    });
    let diag_samples_per_sec = mc_trials as f64 / t_mc_diag;

    let threads = threads();
    let json = format!(
        concat!(
            "{{\n",
            "  \"threads\": {},\n",
            "  \"fig4_nine_die_synthesis\": {{\n",
            "    \"dies\": {}, \"rows\": 256, \"cols\": 512,\n",
            "    \"serial_ms\": {:.3}, \"parallel_ms\": {:.3},\n",
            "    \"speedup\": {:.2}, \"identical\": {}\n",
            "  }},\n",
            "  \"table2_grid_search\": {{\n",
            "    \"frequencies\": {}, \"schemes\": 3,\n",
            "    \"serial_ms\": {:.3}, \"parallel_ms\": {:.3},\n",
            "    \"speedup\": {:.2}, \"identical\": {},\n",
            "    \"f_max_cache_hits\": {}, \"f_max_cache_misses\": {},\n",
            "    \"energy_cache_hit_rate\": {:.6}\n",
            "  }},\n",
            "  \"mc_throughput\": {{\n",
            "    \"trials\": {}, \"parallel_ms\": {:.3}, \"samples_per_sec\": {:.0}\n",
            "  }},\n",
            "  \"diagnostics_overhead\": {{\n",
            "    \"trials\": {}, \"parallel_ms\": {:.3}, \"samples_per_sec\": {:.0},\n",
            "    \"overhead_pct\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        threads,
        dies_n,
        t_serial_fig4 * 1e3,
        t_parallel_fig4 * 1e3,
        t_serial_fig4 / t_parallel_fig4,
        fig4_identical,
        freqs.len(),
        t_serial_table2 * 1e3,
        t_parallel_table2 * 1e3,
        t_serial_table2 / t_parallel_table2,
        table2_identical,
        cache.hits,
        cache.misses,
        cache.hit_rate(),
        mc_trials,
        t_mc * 1e3,
        mc_samples_per_sec,
        mc_trials,
        t_mc_diag * 1e3,
        diag_samples_per_sec,
        (t_mc_diag / t_mc - 1.0) * 100.0,
    );
    print!("{json}");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel_mc.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("could not write {out}: {e}");
    }

    assert!(fig4_identical, "parallel fig4 population diverged from serial");
    assert!(table2_identical, "parallel table2 diverged from serial");
}
