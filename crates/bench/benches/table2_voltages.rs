//! Regenerates Table 2 and times the FIT solver. Correctness is gated
//! through the experiment registry, where the paper anchors live.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::fit::{paper_platform_f_max, FitSolver, Scheme, VoltageGrid};
use ntc::repro::{ExperimentId, find_id, RunCtx};
use ntc_sram::failure::AccessLaw;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Gate before timing: every Table 2 anchor must be in band.
    let artifact = find_id(ExperimentId::Table2).run(&RunCtx::quick());
    assert!(artifact.passed(), "table2 anchors drifted: {:?}", artifact.failures());

    let solver =
        FitSolver::new(AccessLaw::cell_based_40nm(), 1e-15).with_grid(VoltageGrid::PaperGrid);
    let mut g = c.benchmark_group("table2");
    g.bench_function("error_constrained", |b| {
        b.iter(|| black_box(solver.error_constrained_voltage(Scheme::Secded)))
    });
    g.bench_function("full_row_with_performance", |b| {
        b.iter(|| black_box(solver.table_row(1.96e6, paper_platform_f_max)))
    });
    g.bench_function("full_row_serial", |b| {
        b.iter(|| black_box(solver.table_row_serial(1.96e6, paper_platform_f_max)))
    });
    g.bench_function("full_table_parallel", |b| {
        let freqs = [290e3, 1.96e6, 11e6];
        b.iter(|| black_box(solver.table(&freqs, paper_platform_f_max)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
