//! Regenerates Table 1 and times the memory calculator. Correctness is
//! gated through the experiment registry, where the paper anchors live.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::repro::{ExperimentId, find_id, RunCtx};
use ntc_memcalc::designs::computed_rows;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Gate before timing: every Table 1 anchor must be in band.
    let artifact = find_id(ExperimentId::Table1).run(&RunCtx::quick());
    assert!(artifact.passed(), "table1 anchors drifted: {:?}", artifact.failures());

    c.bench_function("table1/computed_rows", |b| b.iter(|| black_box(computed_rows())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
