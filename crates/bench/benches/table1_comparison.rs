//! Regenerates Table 1 and times the memory calculator.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_memcalc::designs::{computed_rows, published_rows};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Correctness gate: anchors within 10 %.
    for (p, q) in published_rows().iter().zip(&computed_rows()) {
        assert!((q.dyn_energy_pj.0 / p.dyn_energy_pj.0 - 1.0).abs() < 0.10);
    }
    c.bench_function("table1/computed_rows", |b| b.iter(|| black_box(computed_rows())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
