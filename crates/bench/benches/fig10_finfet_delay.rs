//! Regenerates Figure 10's finFET delay/spread curves and times the
//! analytic and Monte-Carlo spread estimators. Correctness is gated
//! through the experiment registry, where the paper anchors live.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::repro::{ExperimentId, find_id, RunCtx};
use ntc_stats::rng::Source;
use ntc_stats::sweep::voltage_grid;
use ntc_tech::card;
use ntc_tech::inverter::Inverter;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Gate before timing: the speedup/spread anchors must be in band.
    let artifact = find_id(ExperimentId::Fig10).run(&RunCtx::quick());
    assert!(artifact.passed(), "fig10 anchors drifted: {:?}", artifact.failures());

    let inv14 = Inverter::fo4(&card::n14finfet());
    let inv10 = Inverter::fo4(&card::n10gaa());
    let grid = voltage_grid(0.25, 0.80, 50);
    let mut g = c.benchmark_group("fig10");
    g.bench_function("analytic_sweep", |b| {
        b.iter(|| black_box(inv14.sweep(&grid).len() + inv10.sweep(&grid).len()))
    });
    g.bench_function("monte_carlo_point", |b| {
        let mut src = Source::seeded(2);
        b.iter(|| black_box(inv14.monte_carlo(0.4, 1000, &mut src)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
