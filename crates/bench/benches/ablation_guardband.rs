//! Ablation: monitoring guardband vs. static end-of-life margin. The
//! control loop tracks ageing with millivolts; a static design pays the
//! full drift from day one. The dynamic-energy cost of margin is
//! quadratic in voltage, so the average supply difference is the win.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::monitor::{simulate_lifetime, AgingModel, VoltageController};
use ntc_sram::failure::AccessLaw;
use std::hint::black_box;

fn average_supply() -> (f64, f64) {
    let aging = AgingModel::new(AccessLaw::cell_based_40nm(), 0.05, 10.0);
    let mut ctl = VoltageController::new(0.45, (1e-7, 1e-4), 0.005, (0.33, 1.1));
    let trace = simulate_lifetime(&aging, &mut ctl, 200, 2_000_000, 5);
    let avg = trace.iter().map(|p| p.vdd).sum::<f64>() / trace.len() as f64;
    let static_v = 0.45 + aging.static_guardband_v();
    (avg, static_v)
}

fn bench(c: &mut Criterion) {
    let (monitored, static_v) = average_supply();
    let energy_saving = 1.0 - (monitored / static_v).powi(2);
    println!(
        "monitored average supply {monitored:.3} V vs static {static_v:.3} V \
         -> {:.1} % dynamic energy saved",
        energy_saving * 100.0
    );
    assert!(monitored < static_v, "monitoring must undercut the static margin");

    c.bench_function("ablation_guardband/lifetime_simulation", |b| {
        b.iter(|| black_box(average_supply()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
