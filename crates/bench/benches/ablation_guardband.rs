//! Ablation: monitoring guardband vs. static end-of-life margin. The
//! control loop tracks ageing with millivolts; a static design pays the
//! full drift from day one. The supply trace and the energy-saving
//! anchor live in the `ablation_guardband` registry experiment; this
//! bench gates on it and times the lifetime simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::monitor::{simulate_lifetime, AgingModel, VoltageController};
use ntc::repro::{ExperimentId, find_id, RunCtx};
use ntc_bench::render_text;
use ntc_sram::failure::AccessLaw;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let artifact = find_id(ExperimentId::AblationGuardband).run(&RunCtx::quick());
    print!("{}", render_text(&artifact));
    assert!(artifact.passed(), "anchors drifted: {:?}", artifact.failures());

    c.bench_function("ablation_guardband/lifetime_simulation", |b| {
        b.iter(|| {
            let aging = AgingModel::new(AccessLaw::cell_based_40nm(), 0.05, 10.0);
            let mut ctl = VoltageController::new(0.45, (1e-7, 1e-4), 0.005, (0.33, 1.1));
            black_box(simulate_lifetime(&aging, &mut ctl, 200, 2_000_000, 5))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
