//! Ablation: protected-buffer interleaving depth. 1/2/4-way interleaved
//! SECDED tolerate 1/2/4 random errors per word; only the 4-way code
//! reaches the paper's OCEAN point at FIT 1e-15. The voltages and their
//! anchors live in the `ablation_interleave` registry experiment; this
//! bench gates on it and times the codec.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::repro::{ExperimentId, find_id, RunCtx};
use ntc_bench::render_text;
use ntc_ecc::interleave::InterleavedCode;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let artifact = find_id(ExperimentId::AblationInterleave).run(&RunCtx::quick());
    print!("{}", render_text(&artifact));
    assert!(artifact.passed(), "anchors drifted: {:?}", artifact.failures());

    let mut g = c.benchmark_group("ablation_interleave");
    for lanes in [1u32, 2, 4] {
        let code = InterleavedCode::new(32, lanes).unwrap();
        g.bench_function(format!("encode_decode_{lanes}way"), |b| {
            b.iter(|| {
                let stored = code.encode(black_box(0xDEAD_BEEF));
                black_box(code.decode(stored))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
