//! Ablation: protected-buffer interleaving depth. 1/2/4-way interleaved
//! SECDED tolerate 1/2/4 random errors per word; only the 4-way code
//! reaches the paper's 0.33 V OCEAN point at FIT 1e-15.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_ecc::interleave::InterleavedCode;
use ntc_sram::failure::AccessLaw;
use ntc_sram::words::WordErrorModel;
use std::hint::black_box;

fn min_voltage_for_lanes(lanes: u32) -> f64 {
    let law = AccessLaw::cell_based_40nm();
    let code = InterleavedCode::new(32, lanes).unwrap();
    let w = WordErrorModel::new(39);
    let p = w
        .max_p_bit_for_target(code.correctable_random_errors(), 1e-15)
        .unwrap();
    law.vdd_for_p(p)
}

fn bench(c: &mut Criterion) {
    // Ablation result: deeper interleave → lower reachable voltage.
    let v1 = min_voltage_for_lanes(1);
    let v2 = min_voltage_for_lanes(2);
    let v4 = min_voltage_for_lanes(4);
    assert!(v1 > v2 && v2 > v4);
    assert!((v4 - 0.33).abs() < 0.01, "4-way reaches the 0.33 V point, got {v4}");
    println!("interleave ablation: 1-way {v1:.3} V, 2-way {v2:.3} V, 4-way {v4:.3} V");

    let mut g = c.benchmark_group("ablation_interleave");
    for lanes in [1u32, 2, 4] {
        let code = InterleavedCode::new(32, lanes).unwrap();
        g.bench_function(format!("encode_decode_{lanes}way"), |b| {
            b.iter(|| {
                let stored = code.encode(black_box(0xDEAD_BEEF));
                black_box(code.decode(stored))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
