//! Ablation: protected-buffer code construction. The 4-way interleaved
//! SECDED (52 bits) corrects any 4-bit *burst* and up to 4 distributed
//! errors, but only 1 per lane — under i.i.d. random errors its word
//! failure is a 2-in-one-lane event (∝ p²). The (45,32) DEC-TED BCH
//! corrects any 2-of-45 (∝ p³ failure) in fewer stored bits. Which buffer
//! reaches a lower voltage depends on the error process — exactly the
//! kind of design decision the paper's memory calculator is for.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_ecc::bch::BchDecTed;
use ntc_ecc::interleave::InterleavedCode;
use ntc_sram::failure::AccessLaw;
use std::hint::black_box;

/// Exact word-failure probability of the interleaved code under iid
/// errors: any lane takes ≥2 of its 13 bits.
fn interleaved_word_failure(p: f64) -> f64 {
    let lane_ok = (0..=1)
        .map(|k| {
            let c = if k == 0 { 1.0 } else { 13.0 };
            c * p.powi(k) * (1.0 - p).powi(13 - k)
        })
        .sum::<f64>();
    1.0 - lane_ok.powi(4)
}

/// Exact word-failure probability of the DEC-TED BCH under iid errors:
/// ≥3 of 45 bits.
fn bch_word_failure(p: f64) -> f64 {
    let le2 = (0..=2)
        .map(|k| {
            let c = match k {
                0 => 1.0,
                1 => 45.0,
                _ => 990.0,
            };
            c * p.powi(k) * (1.0 - p).powi(45 - k)
        })
        .sum::<f64>();
    1.0 - le2
}

fn min_voltage(fail: impl Fn(f64) -> f64) -> f64 {
    let law = AccessLaw::cell_based_40nm();
    let (mut lo, mut hi) = (0.0f64, 0.1f64);
    for _ in 0..120 {
        let mid = 0.5 * (lo + hi);
        if fail(mid) <= 1e-15 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    law.vdd_for_p(lo.max(1e-300))
}

fn bench(c: &mut Criterion) {
    let v_inter = min_voltage(interleaved_word_failure);
    let v_bch = min_voltage(bch_word_failure);
    println!("random (iid) errors at FIT 1e-15:");
    println!("  4-way interleaved SECDED (52 b): min V = {v_inter:.3}");
    println!("  (45,32) DEC-TED BCH      (45 b): min V = {v_bch:.3}");
    assert!(
        v_bch < v_inter,
        "for iid errors the algebraic code must win: {v_bch} vs {v_inter}"
    );
    println!("burst errors: the interleaved code corrects any ≤4-bit burst;");
    println!("the BCH corrects bursts only up to 2 bits — roles reverse.");
    println!("(the paper's 'quadruple error correction' buffer behaves like");
    println!("the interleaved construction for burst/distributed errors)");

    let inter = InterleavedCode::new(32, 4).unwrap();
    let bch = BchDecTed::new();
    let mut g = c.benchmark_group("ablation_buffer_code");
    g.bench_function("interleaved_decode_clean", |b| {
        let w = inter.encode(0xDEAD_BEEF);
        b.iter(|| black_box(inter.decode(black_box(w))))
    });
    g.bench_function("bch_decode_clean", |b| {
        let w = bch.encode(0xDEAD_BEEF);
        b.iter(|| black_box(bch.decode(black_box(w))))
    });
    g.bench_function("bch_decode_double_error", |b| {
        let w = bch.encode(0xDEAD_BEEF) ^ 0b1001;
        b.iter(|| black_box(bch.decode(black_box(w))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
