//! Ablation: protected-buffer code construction. The 4-way interleaved
//! SECDED (52 bits) corrects any 4-bit *burst* and up to 4 distributed
//! errors, but only 1 per lane — under i.i.d. random errors its word
//! failure is a 2-in-one-lane event (∝ p²). The (45,32) DEC-TED BCH
//! corrects any 2-of-45 (∝ p³ failure) in fewer stored bits. The
//! reachable voltages and the (57,32) quad-BCH anchors live in the
//! `ablation_buffer_code` registry experiment; this bench gates on it
//! and times the decoders.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::repro::{ExperimentId, find_id, RunCtx};
use ntc_bench::render_text;
use ntc_ecc::bch::BchDecTed;
use ntc_ecc::interleave::InterleavedCode;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let artifact = find_id(ExperimentId::AblationBufferCode).run(&RunCtx::quick());
    print!("{}", render_text(&artifact));
    assert!(artifact.passed(), "anchors drifted: {:?}", artifact.failures());

    let inter = InterleavedCode::new(32, 4).unwrap();
    let bch = BchDecTed::new();
    let mut g = c.benchmark_group("ablation_buffer_code");
    g.bench_function("interleaved_decode_clean", |b| {
        let w = inter.encode(0xDEAD_BEEF);
        b.iter(|| black_box(inter.decode(black_box(w))))
    });
    g.bench_function("bch_decode_clean", |b| {
        let w = bch.encode(0xDEAD_BEEF);
        b.iter(|| black_box(bch.decode(black_box(w))))
    });
    g.bench_function("bch_decode_double_error", |b| {
        let w = bch.encode(0xDEAD_BEEF) ^ 0b1001;
        b.iter(|| black_box(bch.decode(black_box(w))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
