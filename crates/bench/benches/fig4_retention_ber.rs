//! Regenerates Figure 4's nine-die retention BER curve and times the die
//! synthesis plus the probit fit.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_sram::diemap::{DieMap, DieMapConfig};
use ntc_sram::failure::RetentionLaw;
use ntc_stats::fit::probit_line_fit;
use ntc_stats::rng::Source;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = DieMapConfig::new(64, 128, RetentionLaw::cell_based_40nm());
    let mut g = c.benchmark_group("fig4");
    g.bench_function("synthesize_die", |b| {
        let mut src = Source::seeded(1);
        b.iter(|| black_box(DieMap::synthesize(&cfg, &mut src)))
    });
    g.bench_function("nine_die_population_serial", |b| {
        b.iter(|| black_box(DieMap::synthesize_population_serial(&cfg, 9, 4)))
    });
    g.bench_function("nine_die_population_parallel", |b| {
        b.iter(|| black_box(DieMap::synthesize_population(&cfg, 9, 4)))
    });
    let dies = DieMap::synthesize_population(&cfg, 9, 4);
    g.bench_function("population_ber_curve", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..12 {
                let v = 0.14 + i as f64 * 0.02;
                acc += DieMap::population_ber(&dies, v);
            }
            black_box(acc)
        })
    });
    g.bench_function("population_ber_curve_parallel", |b| {
        let grid: Vec<f64> = (0..12).map(|i| 0.14 + i as f64 * 0.02).collect();
        b.iter(|| black_box(DieMap::population_ber_curve(&dies, &grid)))
    });
    g.bench_function("probit_fit", |b| {
        let law = RetentionLaw::cell_based_40nm();
        let vs: Vec<f64> = (0..12).map(|i| 0.14 + i as f64 * 0.02).collect();
        let ps: Vec<f64> = vs.iter().map(|&v| law.p_bit(v)).collect();
        b.iter(|| black_box(probit_line_fit(&vs, &ps).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
