//! Ablation: detection strength of OCEAN's scratchpad code. Parity EDC
//! (33 bits) misses *every* double error; the distance-4 Hsiao code used
//! detect-only misses only the weight-4 codeword patterns. This bench
//! counts both alias sets exactly and shows why parity cannot reach the
//! paper's FIT target.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_ecc::parity::Parity;
use ntc_ecc::secded::Secded;
use std::hint::black_box;

/// Counts weight-4 error patterns with zero syndrome on the (39,32) code
/// (exact enumeration of C(39,4) = 82 251 patterns).
fn weight4_aliases(code: &Secded) -> u64 {
    let n = code.codeword_bits();
    let mut aliases = 0u64;
    let zero = code.encode(0);
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..n {
                for d in (c + 1)..n {
                    let pattern = zero ^ (1u128 << a) ^ (1u128 << b) ^ (1u128 << c) ^ (1u128 << d);
                    if code.syndrome(pattern) == 0 {
                        aliases += 1;
                    }
                }
            }
        }
    }
    aliases
}

fn bench(c: &mut Criterion) {
    let secded = Secded::new(32).unwrap();
    let parity = Parity::new(32);
    let n4 = weight4_aliases(&secded);
    let c33_2 = 33.0 * 32.0 / 2.0;
    println!("parity silent double-error patterns : 528 of 528 (100 %)");
    println!(
        "SECDED-detect silent quad patterns   : {n4} of 82251 ({:.2} %)",
        100.0 * n4 as f64 / 82251.0
    );
    // Silent-corruption probabilities at the OCEAN operating point.
    let p: f64 = 7.05e-5; // p_bit at 0.33 V
    let parity_silent = c33_2 * p * p;
    let secded_silent = n4 as f64 * p.powi(4);
    println!(
        "at p = {p:.2e}: parity {:.2e} vs detect-only {:.2e} per access",
        parity_silent, secded_silent
    );
    assert!(
        secded_silent < parity_silent / 1e4,
        "the distance-4 code must be orders of magnitude safer"
    );

    let mut g = c.benchmark_group("ablation_detection");
    g.bench_function("parity_decode", |b| {
        let stored = parity.encode(0xDEAD_BEEF);
        b.iter(|| black_box(parity.decode(black_box(stored))))
    });
    g.bench_function("secded_syndrome", |b| {
        let stored = secded.encode(0xDEAD_BEEF);
        b.iter(|| black_box(secded.syndrome(black_box(stored))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
