//! Ablation: detection strength of OCEAN's scratchpad code. Parity EDC
//! (33 bits) misses *every* double error; the distance-4 Hsiao code used
//! detect-only misses only the weight-4 codeword patterns. The exact
//! alias counts and silent-corruption rates live in the
//! `ablation_detection` registry experiment; this bench gates on it and
//! times the decoders.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::repro::{ExperimentId, find_id, RunCtx};
use ntc_bench::render_text;
use ntc_ecc::parity::Parity;
use ntc_ecc::secded::Secded;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let artifact = find_id(ExperimentId::AblationDetection).run(&RunCtx::quick());
    print!("{}", render_text(&artifact));
    assert!(artifact.passed(), "anchors drifted: {:?}", artifact.failures());

    let secded = Secded::new(32).unwrap();
    let parity = Parity::new(32);
    let mut g = c.benchmark_group("ablation_detection");
    g.bench_function("parity_decode", |b| {
        let stored = parity.encode(0xDEAD_BEEF);
        b.iter(|| black_box(parity.decode(black_box(stored))))
    });
    g.bench_function("secded_syndrome", |b| {
        let stored = secded.encode(0xDEAD_BEEF);
        b.iter(|| black_box(secded.syndrome(black_box(stored))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
