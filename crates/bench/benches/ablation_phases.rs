//! Ablation: OCEAN phase count. The nonlinear optimizer's convex
//! energy-vs-phase-count curve lives in the `ablation_phases` registry
//! experiment; this bench gates on it and times the optimizer.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::repro::{ExperimentId, find_id, RunCtx};
use ntc_bench::render_text;
use ntc_ocean::PhaseCostModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let artifact = find_id(ExperimentId::AblationPhases).run(&RunCtx::quick());
    print!("{}", render_text(&artifact));
    assert!(artifact.passed(), "anchors drifted: {:?}", artifact.failures());

    let m = PhaseCostModel::new(300_000, 28_000, 1536, 1e-4).unwrap();
    c.bench_function("ablation_phases/optimize_256", |b| {
        b.iter(|| black_box(m.optimal_phase_count(256)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
