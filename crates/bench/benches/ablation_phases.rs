//! Ablation: OCEAN phase count. The nonlinear optimizer's convex
//! energy-vs-phase-count curve, evaluated across error rates.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_ocean::PhaseCostModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Ablation result: optimum grows with error rate.
    let mut prev = 0;
    for p in [1e-8, 1e-6, 1e-4, 1e-3] {
        let m = PhaseCostModel::new(300_000, 28_000, 1536, p).unwrap();
        let opt = m.optimal_phase_count(256);
        assert!(opt >= prev);
        println!("p_word = {p:.0e}: optimal phases = {opt}, E = {:.3e} J", m.energy(opt));
        prev = opt;
    }

    let m = PhaseCostModel::new(300_000, 28_000, 1536, 1e-4).unwrap();
    c.bench_function("ablation_phases/optimize_256", |b| {
        b.iter(|| black_box(m.optimal_phase_count(256)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
