//! Ablation: hierarchical subdivision (Section III). Banking shortens the
//! switched bitlines — access energy falls with √banks — until the global
//! routing and duplicated periphery eat the gain.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_memcalc::instance::{MemoryMacro, MemoryOrganization};
use ntc_sram::styles::CellStyle;
use ntc_tech::card;
use std::hint::black_box;

fn macro_with(banks: u32) -> MemoryMacro {
    MemoryMacro::new(
        CellStyle::CellBasedAoi,
        MemoryOrganization::new(2048, 32).unwrap(),
        card::n40lp(),
    )
    .with_banks(banks)
}

fn bench(c: &mut Criterion) {
    println!("banks | E/access @0.55V | leakage @0.55V | area");
    let mut prev = f64::INFINITY;
    let mut best = (1u32, f64::INFINITY);
    for banks in [1u32, 2, 4, 8, 16, 32] {
        let m = macro_with(banks);
        let e = m.access_energy(0.55);
        let l = m.leakage_power(0.55);
        println!(
            "{banks:>5} | {:>10.4} pJ | {:>9.3} µW | {:.4} mm²",
            e * 1e12,
            l * 1e6,
            m.area_mm2()
        );
        // Total energy per access at a duty where leakage matters:
        let total = e + l / 290e3;
        if total < best.1 {
            best = (banks, total);
        }
        assert!(e < prev, "dynamic access energy must fall with banking");
        prev = e;
    }
    println!("optimum at 290 kHz duty: {} banks", best.0);

    c.bench_function("ablation_banking/calculator", |b| {
        b.iter(|| {
            let m = macro_with(black_box(8));
            black_box(m.access_energy(0.55) + m.leakage_power(0.55))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
