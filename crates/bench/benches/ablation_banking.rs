//! Ablation: hierarchical subdivision (Section III). Banking shortens the
//! switched bitlines — access energy falls with √banks — until the global
//! routing and duplicated periphery eat the gain. The sweep table lives
//! in the `ablation_banking` registry experiment; this bench gates on it
//! and times the calculator.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::repro::{ExperimentId, find_id, RunCtx};
use ntc_bench::render_text;
use ntc_memcalc::instance::{MemoryMacro, MemoryOrganization};
use ntc_sram::styles::CellStyle;
use ntc_tech::card;
use std::hint::black_box;

fn macro_with(banks: u32) -> MemoryMacro {
    MemoryMacro::new(
        CellStyle::CellBasedAoi,
        MemoryOrganization::new(2048, 32).unwrap(),
        card::n40lp(),
    )
    .with_banks(banks)
}

fn bench(c: &mut Criterion) {
    let artifact = find_id(ExperimentId::AblationBanking).run(&RunCtx::quick());
    print!("{}", render_text(&artifact));
    assert!(artifact.passed(), "anchors drifted: {:?}", artifact.failures());

    c.bench_function("ablation_banking/calculator", |b| {
        b.iter(|| {
            let m = macro_with(black_box(8));
            black_box(m.access_energy(0.55) + m.leakage_power(0.55))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
