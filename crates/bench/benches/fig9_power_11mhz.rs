//! Regenerates Figure 9 (at reduced FFT size for iteration speed) and
//! checks the savings ordering before timing.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::experiments::{run_experiment, ExperimentConfig, MitigationPolicy, Workload};
use std::hint::black_box;

fn run(policy: MitigationPolicy, vdd: f64) -> f64 {
    let cfg = ExperimentConfig {
        workload: Workload::Fft { n: 128 },
        ..ExperimentConfig::commercial(policy, vdd, 11e6)
    };
    run_experiment(&cfg).total_power_w()
}

fn bench(c: &mut Criterion) {
    let p_none = run(MitigationPolicy::NoMitigation, 0.88);
    let p_ecc = run(MitigationPolicy::Secded, 0.77);
    let p_ocean = run(MitigationPolicy::Ocean, 0.66);
    assert!(p_ocean < p_ecc && p_ecc < p_none);

    let mut g = c.benchmark_group("fig9_11mhz");
    g.sample_size(10);
    g.bench_function("no_mitigation", |b| {
        b.iter(|| black_box(run(MitigationPolicy::NoMitigation, 0.88)))
    });
    g.bench_function("secded", |b| b.iter(|| black_box(run(MitigationPolicy::Secded, 0.77))));
    g.bench_function("ocean", |b| b.iter(|| black_box(run(MitigationPolicy::Ocean, 0.66))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
