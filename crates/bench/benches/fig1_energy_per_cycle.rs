//! Regenerates Figure 1's energy-per-cycle sweep and times it.
//! Correctness is gated through the experiment registry.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::repro::{ExperimentId, find_id, RunCtx};
use ntc_memcalc::soc::SocEnergyModel;
use ntc_stats::sweep::voltage_grid;
use std::hint::black_box;

fn sweep_total(model: &SocEnergyModel) -> f64 {
    voltage_grid(0.40, 1.10, 10)
        .into_iter()
        .map(|v| model.operating_point(v).total_j())
        .sum()
}

fn bench(c: &mut Criterion) {
    // Gate before timing: the floor/dominance anchors must be in band.
    let artifact = find_id(ExperimentId::Fig1).run(&RunCtx::quick());
    assert!(artifact.passed(), "fig1 anchors drifted: {:?}", artifact.failures());

    let cots = SocEnergyModel::exg_processor_40nm();
    let cell = SocEnergyModel::exg_processor_cell_based_40nm();
    let mut g = c.benchmark_group("fig1");
    g.bench_function("cots_sweep", |b| b.iter(|| black_box(sweep_total(&cots))));
    g.bench_function("cell_based_sweep", |b| b.iter(|| black_box(sweep_total(&cell))));
    g.bench_function("optimal_voltage", |b| {
        b.iter(|| black_box(cots.optimal_voltage(0.4, 1.1, 71)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
