//! Regenerates Figure 1's energy-per-cycle sweep and times it.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_memcalc::soc::SocEnergyModel;
use ntc_stats::sweep::voltage_grid;
use std::hint::black_box;

fn sweep_total(model: &SocEnergyModel) -> f64 {
    voltage_grid(0.40, 1.10, 10)
        .into_iter()
        .map(|v| model.operating_point(v).total_j())
        .sum()
}

fn bench(c: &mut Criterion) {
    let cots = SocEnergyModel::exg_processor_40nm();
    let cell = SocEnergyModel::exg_processor_cell_based_40nm();
    // Sanity before timing: the curves must show the paper's shape.
    assert!(cots.operating_point(0.5).leakage_j() > cots.operating_point(0.5).dynamic_j());
    let mut g = c.benchmark_group("fig1");
    g.bench_function("cots_sweep", |b| b.iter(|| black_box(sweep_total(&cots))));
    g.bench_function("cell_based_sweep", |b| b.iter(|| black_box(sweep_total(&cell))));
    g.bench_function("optimal_voltage", |b| {
        b.iter(|| black_box(cots.optimal_voltage(0.4, 1.1, 71)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
