//! Regenerates Figure 5's access-error curve: Monte-Carlo injection vs.
//! the Eq. 5 law, and the power-law re-fit.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_sim::memory::FaultInjector;
use ntc_sram::failure::AccessLaw;
use ntc_stats::fit::fit_power_law;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let law = AccessLaw::cell_based_40nm();
    let mut g = c.benchmark_group("fig5");
    g.bench_function("mc_injection_10k_accesses", |b| {
        let mut inj = FaultInjector::from_law(&law, 0.40, 9);
        b.iter(|| {
            let mut flips = 0u64;
            for _ in 0..10_000 {
                flips += inj.mask(32).count_ones() as u64;
            }
            black_box(flips)
        })
    });
    g.bench_function("mc_ber_sweep_parallel", |b| {
        let grid: Vec<f64> = (0..12).map(|i| 0.30 + i as f64 * 0.02).collect();
        b.iter(|| black_box(law.mc_ber_sweep(&grid, 20_000, 9)))
    });
    g.bench_function("power_law_fit", |b| {
        let vs: Vec<f64> = (0..20).map(|i| 0.30 + i as f64 * 0.012).collect();
        let ps: Vec<f64> = vs.iter().map(|&v| law.p_bit(v)).collect();
        b.iter(|| black_box(fit_power_law(&vs, &ps, (0.555, 0.65)).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
