//! Ablation: spatial correlation of retention failures. Systematic
//! within-die variation clusters failing bits, which raises the worst
//! die's minimal retention supply relative to a purely random population.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_sram::diemap::{DieMap, DieMapConfig};
use ntc_sram::failure::RetentionLaw;
use std::hint::black_box;

fn worst_supply(systematic: f64, seed: u64) -> f64 {
    let cfg = DieMapConfig::new(64, 128, RetentionLaw::cell_based_40nm())
        .with_systematic_fraction(systematic);
    DieMap::synthesize_population(&cfg, 9, seed)
        .iter()
        .map(DieMap::min_retention_supply)
        .fold(f64::MIN, f64::max)
}

fn bench(c: &mut Criterion) {
    // Report the ablation across correlation levels (same total sigma).
    for frac in [0.0, 0.3, 0.6] {
        println!(
            "systematic fraction {frac}: worst-die retention supply {:.3} V",
            worst_supply(frac, 77)
        );
    }

    // Second axis: intra-word correlation vs SECDED's usable voltage.
    // Under the beta-binomial model the triple-error tail fattens, and the
    // bisected minimum voltage rises.
    use ntc_sram::failure::AccessLaw;
    use ntc_sram::words::CorrelatedWordModel;
    let law = AccessLaw::cell_based_40nm();
    let min_v = |rho: Option<f64>| -> f64 {
        let fail = |p: f64| match rho {
            None => ntc_sram::words::WordErrorModel::new(39).p_word_failure(2, p),
            Some(r) => CorrelatedWordModel::new(39, r).unwrap().p_word_failure(2, p),
        };
        // Bisect p to the FIT budget, then map to voltage.
        let (mut lo, mut hi) = (0.0f64, 0.1f64);
        for _ in 0..120 {
            let mid = 0.5 * (lo + hi);
            if fail(mid) <= 1e-15 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        law.vdd_for_p(lo.max(1e-300))
    };
    let v_iid = min_v(None);
    println!("SECDED min voltage, independent bits : {v_iid:.3} V");
    let mut prev = v_iid;
    for rho in [0.001, 0.01, 0.05] {
        let v = min_v(Some(rho));
        println!("SECDED min voltage, rho = {rho:<5}      : {v:.3} V");
        assert!(v >= prev - 1e-9, "correlation must not lower the voltage");
        prev = v;
    }
    c.bench_function("ablation_correlation/worst_of_9_dies", |b| {
        b.iter(|| black_box(worst_supply(0.3, 77)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
