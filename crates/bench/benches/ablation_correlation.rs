//! Ablation: spatial correlation of retention failures. Systematic
//! within-die variation clusters failing bits, which raises the worst
//! die's minimal retention supply relative to a purely random
//! population. The numbers live in the `ablation_correlation` registry
//! experiment; this bench gates on it and times the die synthesis.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::repro::{ExperimentId, find_id, RunCtx};
use ntc_bench::render_text;
use ntc_sram::diemap::{DieMap, DieMapConfig};
use ntc_sram::failure::RetentionLaw;
use std::hint::black_box;

fn worst_supply(systematic: f64, seed: u64) -> f64 {
    let cfg = DieMapConfig::new(64, 128, RetentionLaw::cell_based_40nm())
        .with_systematic_fraction(systematic);
    DieMap::synthesize_population(&cfg, 9, seed)
        .iter()
        .map(DieMap::min_retention_supply)
        .fold(f64::MIN, f64::max)
}

fn bench(c: &mut Criterion) {
    let artifact = find_id(ExperimentId::AblationCorrelation).run(&RunCtx::quick());
    print!("{}", render_text(&artifact));
    assert!(artifact.passed(), "anchors drifted: {:?}", artifact.failures());

    c.bench_function("ablation_correlation/worst_of_9_dies", |b| {
        b.iter(|| black_box(worst_supply(0.3, 77)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
