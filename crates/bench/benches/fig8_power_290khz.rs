//! Regenerates Figure 8 (at reduced FFT size for iteration speed) and
//! checks the savings ordering before timing.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::experiments::{run_experiment, ExperimentConfig, MitigationPolicy, Workload};
use std::hint::black_box;

fn run(policy: MitigationPolicy, vdd: f64) -> f64 {
    let cfg = ExperimentConfig {
        workload: Workload::Fft { n: 128 },
        ..ExperimentConfig::cell_based(policy, vdd, 290e3)
    };
    run_experiment(&cfg).total_power_w()
}

fn bench(c: &mut Criterion) {
    // Shape gate before timing: OCEAN < ECC < no mitigation.
    let p_none = run(MitigationPolicy::NoMitigation, 0.55);
    let p_ecc = run(MitigationPolicy::Secded, 0.44);
    let p_ocean = run(MitigationPolicy::Ocean, 0.33);
    assert!(p_ocean < p_ecc && p_ecc < p_none);

    let mut g = c.benchmark_group("fig8_290khz");
    g.sample_size(10);
    g.bench_function("no_mitigation", |b| {
        b.iter(|| black_box(run(MitigationPolicy::NoMitigation, 0.55)))
    });
    g.bench_function("secded", |b| b.iter(|| black_box(run(MitigationPolicy::Secded, 0.44))));
    g.bench_function("ocean", |b| b.iter(|| black_box(run(MitigationPolicy::Ocean, 0.33))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
