//! Regenerates Figure 8 (at reduced FFT size for iteration speed) and
//! times the three policies. The operating voltages come from the FIT
//! solver — the same source the registry anchors check — instead of
//! being repeated here as literals.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc::experiments::{run_experiment, ExperimentConfig, MitigationPolicy, Workload};
use ntc::fit::{FitSolver, VoltageGrid};
use ntc_sram::failure::AccessLaw;
use std::hint::black_box;

fn run(policy: MitigationPolicy, vdd: f64) -> f64 {
    let cfg = ExperimentConfig {
        workload: Workload::Fft { n: 128 },
        ..ExperimentConfig::cell_based(policy, vdd, 290e3)
    };
    run_experiment(&cfg).total_power_w()
}

fn bench(c: &mut Criterion) {
    let solver =
        FitSolver::new(AccessLaw::cell_based_40nm(), 1e-15).with_grid(VoltageGrid::PaperGrid);
    let vdd = |policy: MitigationPolicy| solver.min_voltage(policy.scheme());

    // Shape gate before timing: OCEAN < ECC < no mitigation.
    let p_none = run(MitigationPolicy::NoMitigation, vdd(MitigationPolicy::NoMitigation));
    let p_ecc = run(MitigationPolicy::Secded, vdd(MitigationPolicy::Secded));
    let p_ocean = run(MitigationPolicy::Ocean, vdd(MitigationPolicy::Ocean));
    assert!(p_ocean < p_ecc && p_ecc < p_none);

    let mut g = c.benchmark_group("fig8_290khz");
    g.sample_size(10);
    g.bench_function("no_mitigation", |b| {
        b.iter(|| black_box(run(MitigationPolicy::NoMitigation, vdd(MitigationPolicy::NoMitigation))))
    });
    g.bench_function("secded", |b| {
        b.iter(|| black_box(run(MitigationPolicy::Secded, vdd(MitigationPolicy::Secded))))
    });
    g.bench_function("ocean", |b| {
        b.iter(|| black_box(run(MitigationPolicy::Ocean, vdd(MitigationPolicy::Ocean))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
