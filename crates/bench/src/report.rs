//! Self-contained HTML report for a set of reproduction artifacts.
//!
//! [`render_report`] emits a single HTML document with zero external
//! assets: styling is an inline `<style>` block and every figure is an
//! inline SVG sparkline generated from the artifact's [`Series`] data.
//! The renderer is a pure function of its inputs — no timestamps, no
//! random ids — so the same artifacts produce the same bytes.
//!
//! Sections, in order:
//!
//! 1. provenance header (version, seed, scale, threads);
//! 2. anchor margin table, ranked worst-first, with at-risk flags;
//! 3. per-experiment cards: sparklines per series, scalar list;
//! 4. convergence diagnostics (`diag.*` gauges that are not fit keys);
//! 5. fit-quality diagnostics (`diag.*.fit.*` gauges).

use ntc::artifact::{Artifact, Check, Series};
use ntc_obs::{MetricValue, MetricsSnapshot};

/// Run provenance shown in the report header.
///
/// Deliberately excludes wall-clock data so report bytes stay a pure
/// function of (artifacts, seed, scale, threads, version).
pub struct ReportMeta {
    /// Workspace version string.
    pub version: String,
    /// Base seed of the run.
    pub seed: u64,
    /// Scale name (`quick` / `paper`).
    pub scale: String,
    /// Worker thread count.
    pub threads: usize,
}

/// Escapes text for HTML body and attribute positions.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Shortest round-trip rendering, matching the artifact JSON style.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".into()
    } else if v > 0.0 {
        "inf".into()
    } else {
        "-inf".into()
    }
}

/// An inline SVG sparkline of one series.
///
/// Non-finite points are skipped; a flat or empty series renders as a
/// midline. Coordinates are rounded to 0.01 px so the output is stable
/// across platforms.
pub fn sparkline(series: &Series) -> String {
    const W: f64 = 260.0;
    const H: f64 = 56.0;
    const PAD: f64 = 4.0;
    let pts: Vec<(f64, f64)> = series
        .points
        .iter()
        .copied()
        .filter(|&(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let mut path = String::new();
    if pts.is_empty() {
        path.push_str(&format!("{PAD:.2},{:.2} {:.2},{:.2}", H / 2.0, W - PAD, H / 2.0));
    } else {
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
        let xspan = if xmax > xmin { xmax - xmin } else { 1.0 };
        let yspan = if ymax > ymin { ymax - ymin } else { 1.0 };
        for (i, &(x, y)) in pts.iter().enumerate() {
            let px = PAD + (x - xmin) / xspan * (W - 2.0 * PAD);
            // SVG y grows downward; flip so larger values plot higher.
            let py = H - PAD - (y - ymin) / yspan * (H - 2.0 * PAD);
            if i > 0 {
                path.push(' ');
            }
            path.push_str(&format!("{px:.2},{py:.2}"));
        }
    }
    format!(
        "<svg class=\"spark\" viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" \
         role=\"img\" aria-label=\"{}\">\
         <polyline fill=\"none\" stroke=\"#2563eb\" stroke-width=\"1.5\" points=\"{path}\"/>\
         </svg>",
        esc(&series.label)
    )
}

/// All anchors of all artifacts, ranked worst margin first.
fn ranked_checks(artifacts: &[Artifact]) -> Vec<Check> {
    let mut checks: Vec<Check> = artifacts.iter().flat_map(Artifact::checks).collect();
    checks.sort_by(|a, b| {
        a.margin()
            .partial_cmp(&b.margin())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.artifact.cmp(&b.artifact))
            .then_with(|| a.label.cmp(&b.label))
    });
    checks
}

fn margin_section(artifacts: &[Artifact]) -> String {
    let checks = ranked_checks(artifacts);
    if checks.is_empty() {
        return String::new();
    }
    let missed = checks.iter().filter(|c| !c.passes()).count();
    let at_risk = checks.iter().filter(|c| c.at_risk()).count();
    let mut out = format!(
        "<section><h2>Paper anchors</h2>\
         <p>{} anchors — {} missed, {} at risk (margin &lt; {}).</p>\
         <table><thead><tr><th>experiment</th><th>anchor</th><th>measured</th>\
         <th>paper</th><th>band</th><th>margin</th><th>verdict</th></tr></thead><tbody>",
        checks.len(),
        missed,
        at_risk,
        Check::AT_RISK_MARGIN,
    );
    for c in &checks {
        let class = if !c.passes() {
            "miss"
        } else if c.at_risk() {
            "risk"
        } else {
            "ok"
        };
        let verdict = if !c.passes() {
            "MISS"
        } else if c.at_risk() {
            "ok (at risk)"
        } else {
            "ok"
        };
        out.push_str(&format!(
            "<tr class=\"{class}\"><td>{}</td><td>{}</td><td class=\"n\">{}</td>\
             <td class=\"n\">{}</td><td>{}</td><td class=\"n\">{}</td><td>{verdict}</td></tr>",
            esc(&c.artifact),
            esc(&c.label),
            num(c.measured),
            num(c.paper.paper),
            esc(&c.paper.band.to_string()),
            c.margin_display(),
        ));
    }
    out.push_str("</tbody></table></section>");
    out
}

fn experiment_section(artifact: &Artifact) -> String {
    let mut out = format!(
        "<section><h2>{} <code>{}</code></h2>",
        esc(&artifact.title),
        esc(&artifact.id)
    );
    let series: Vec<&Series> = artifact.series().collect();
    if !series.is_empty() {
        out.push_str("<div class=\"sparks\">");
        for s in &series {
            out.push_str(&format!(
                "<figure>{}<figcaption>{} — {} [{}] vs {} [{}], {} pts</figcaption></figure>",
                sparkline(s),
                esc(&s.label),
                esc(&s.y_name),
                esc(&s.y_unit),
                esc(&s.x_name),
                esc(&s.x_unit),
                s.points.len(),
            ));
        }
        out.push_str("</div>");
    }
    let scalars: Vec<_> = artifact.scalars().collect();
    if !scalars.is_empty() {
        out.push_str("<table><tbody>");
        for s in scalars {
            out.push_str(&format!(
                "<tr><td>{}</td><td class=\"n\">{} {}</td></tr>",
                esc(&s.label),
                num(s.value),
                esc(&s.unit),
            ));
        }
        out.push_str("</tbody></table>");
    }
    out.push_str("</section>");
    out
}

/// `(metric name, gauge value)` rows of one diagnostic section.
type DiagRows = Vec<(String, f64)>;

/// `diag.*` gauges split into (convergence, fit-quality) rows.
fn diag_rows(metrics: &MetricsSnapshot) -> (DiagRows, DiagRows) {
    let mut convergence = Vec::new();
    let mut fit = Vec::new();
    for (name, value) in &metrics.entries {
        let Some(rest) = name.strip_prefix("diag.") else { continue };
        let MetricValue::Gauge(v) = value else { continue };
        if rest.contains(".fit.") {
            fit.push((rest.to_string(), *v));
        } else {
            convergence.push((rest.to_string(), *v));
        }
    }
    (convergence, fit)
}

fn diag_table(title: &str, blurb: &str, rows: &[(String, f64)]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let mut out = format!(
        "<section><h2>{title}</h2><p>{blurb}</p>\
         <table><thead><tr><th>metric</th><th>value</th></tr></thead><tbody>"
    );
    for (name, v) in rows {
        out.push_str(&format!(
            "<tr><td><code>{}</code></td><td class=\"n\">{}</td></tr>",
            esc(name),
            num(*v)
        ));
    }
    out.push_str("</tbody></table></section>");
    out
}

/// Renders the full report document.
///
/// `metrics` is the run's metrics snapshot; only `diag.*` gauges are
/// used (pass an empty snapshot when diagnostics were disabled — the
/// diagnostic sections are simply omitted).
pub fn render_report(artifacts: &[Artifact], meta: &ReportMeta, metrics: &MetricsSnapshot) -> String {
    let (convergence, fit) = diag_rows(metrics);
    let mut out = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>ntc reproduction report</title>\n<style>\n\
         body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:72rem;\
         padding:0 1rem;color:#111}\n\
         h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2rem}\n\
         code{background:#f3f4f6;padding:0 .25rem;border-radius:3px}\n\
         table{border-collapse:collapse;margin:.5rem 0}\n\
         th,td{border:1px solid #d1d5db;padding:.2rem .5rem;text-align:left}\n\
         td.n{text-align:right;font-variant-numeric:tabular-nums}\n\
         tr.miss td{background:#fee2e2}tr.risk td{background:#fef3c7}\n\
         .sparks{display:flex;flex-wrap:wrap;gap:1rem}\n\
         figure{margin:0}figcaption{font-size:.75rem;color:#555;max-width:16rem}\n\
         .meta{color:#555}\n\
         </style></head><body>\n<h1>ntc reproduction report</h1>\n",
    );
    out.push_str(&format!(
        "<p class=\"meta\">version {} · seed {} · scale {} · {} thread{}</p>\n",
        esc(&meta.version),
        meta.seed,
        esc(&meta.scale),
        meta.threads,
        if meta.threads == 1 { "" } else { "s" },
    ));
    out.push_str(&margin_section(artifacts));
    for artifact in artifacts {
        out.push_str(&experiment_section(artifact));
    }
    out.push_str(&diag_table(
        "Monte-Carlo convergence",
        "Standard error, confidence interval and split-half agreement of the \
         sharded estimators (gauges published under <code>diag.*</code>).",
        &convergence,
    ));
    out.push_str(&diag_table(
        "Fit quality",
        "Residual diagnostics of the Eq. 4 / Eq. 5 fits against the measured \
         points they were fitted to.",
        &fit,
    ));
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc::artifact::PaperRef;

    fn sample_artifacts() -> Vec<Artifact> {
        vec![Artifact::new("t", "Test artifact")
            .with_series(Series::new(
                "curve",
                ("vdd", "V"),
                ("ber", "1"),
                vec![(0.3, 1e-3), (0.4, 1e-5), (0.5, f64::NAN), (0.6, 1e-9)],
            ))
            .with_anchor("tight", "V", 0.509, PaperRef::abs(0.5, 0.01))
            .with_anchor("comfortable", "V", 0.5, PaperRef::abs(0.5, 0.01))
            .with_anchor("missing", "V", 0.6, PaperRef::abs(0.5, 0.01))]
    }

    fn meta() -> ReportMeta {
        ReportMeta { version: "test".into(), seed: 1, scale: "quick".into(), threads: 4 }
    }

    #[test]
    fn report_is_self_contained() {
        let html = render_report(&sample_artifacts(), &meta(), &MetricsSnapshot::default());
        // No external assets of any kind.
        for needle in ["http://", "https://", "<script src", "<link"] {
            assert!(!html.contains(needle), "external reference `{needle}` found");
        }
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<style>"), "styling must be inline");
        assert!(html.contains("<svg"), "series render as inline SVG");
    }

    #[test]
    fn margin_table_ranks_worst_first_and_flags_at_risk() {
        let html = render_report(&sample_artifacts(), &meta(), &MetricsSnapshot::default());
        let miss = html.find("missing").expect("missed anchor listed");
        let tight = html.find("tight").expect("at-risk anchor listed");
        let comfy = html.find("comfortable").expect("passing anchor listed");
        assert!(miss < tight && tight < comfy, "ranked worst-first");
        assert!(html.contains("class=\"risk\""), "at-risk row highlighted");
        assert!(html.contains("class=\"miss\""), "missed row highlighted");
    }

    #[test]
    fn diag_gauges_split_into_convergence_and_fit_sections() {
        let metrics = MetricsSnapshot {
            entries: vec![
                ("diag.fig5.mc.std_error".into(), MetricValue::Gauge(1.25e-4)),
                ("diag.fig5.commercial.fit.r_squared".into(), MetricValue::Gauge(0.999)),
                ("other.counter".into(), MetricValue::Counter(3)),
            ],
        };
        let html = render_report(&sample_artifacts(), &meta(), &metrics);
        assert!(html.contains("Monte-Carlo convergence"));
        assert!(html.contains("fig5.mc.std_error"));
        assert!(html.contains("Fit quality"));
        assert!(html.contains("fig5.commercial.fit.r_squared"));
        assert!(!html.contains("other.counter"), "non-diag metrics stay out");
    }

    #[test]
    fn report_bytes_are_deterministic() {
        let a = render_report(&sample_artifacts(), &meta(), &MetricsSnapshot::default());
        let b = render_report(&sample_artifacts(), &meta(), &MetricsSnapshot::default());
        assert_eq!(a, b);
    }

    #[test]
    fn sparkline_skips_non_finite_points_and_escapes_labels() {
        let s = Series::new(
            "a<b",
            ("x", ""),
            ("y", ""),
            vec![(0.0, 0.0), (1.0, f64::INFINITY), (2.0, 1.0)],
        );
        let svg = sparkline(&s);
        assert!(svg.contains("a&lt;b"));
        // Two finite points → exactly one space-separated pair boundary.
        let pts = svg.split("points=\"").nth(1).unwrap().split('"').next().unwrap();
        assert_eq!(pts.split(' ').count(), 2, "{pts}");
    }

    #[test]
    fn empty_series_renders_a_midline() {
        let s = Series::new("flat", ("x", ""), ("y", ""), vec![]);
        assert!(sparkline(&s).contains("points=\""), "no panic, placeholder line");
    }
}
