//! Shared helpers for the table/figure regeneration binaries and the
//! Criterion benches.
//!
//! Every published table and figure has two regeneration paths:
//!
//! * a binary (`cargo run --release -p ntc-bench --bin fig8`) that prints
//!   the same rows/series the paper reports, annotated with the paper's
//!   values where they are quoted; and
//! * a Criterion bench (`cargo bench -p ntc-bench --bench fig8_power_290khz`)
//!   that times the regeneration, so performance regressions in the models
//!   are caught alongside correctness regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Formats a paper-vs-measured comparison line.
///
/// # Example
///
/// ```
/// let line = ntc_bench::compare_line("OCEAN @290kHz savings", 0.7, 0.66, "%");
/// assert!(line.contains("paper"));
/// ```
pub fn compare_line(label: &str, paper: f64, measured: f64, unit: &str) -> String {
    format!(
        "{label:<38} paper {paper:>8.3} {unit:<3} measured {measured:>8.3} {unit}",
    )
}

/// Renders a simple ASCII series (for figure-like output in terminals).
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn ascii_series(title: &str, points: &[(f64, f64)], width: usize) -> String {
    assert!(!points.is_empty(), "series must have points");
    let max = points
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::MIN, f64::max)
        .max(1e-300);
    let mut out = format!("{title}\n");
    for &(x, y) in points {
        let bar = ((y / max) * width as f64).round() as usize;
        out.push_str(&format!("{x:>8.3} | {:<width$} {y:.3e}\n", "#".repeat(bar)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_line_contains_both_numbers() {
        let l = compare_line("x", 1.5, 2.5, "V");
        assert!(l.contains("1.500") && l.contains("2.500"));
    }

    #[test]
    fn ascii_series_has_one_line_per_point() {
        let s = ascii_series("t", &[(0.1, 1.0), (0.2, 2.0)], 10);
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "points")]
    fn ascii_series_rejects_empty() {
        ascii_series("t", &[], 10);
    }
}
