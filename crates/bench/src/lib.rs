//! Shared helpers for the `repro` CLI and the Criterion benches.
//!
//! Every published table and figure is regenerated through the central
//! experiment registry (`ntc::repro`):
//!
//! * the `repro` binary (`cargo run --release -p ntc-bench --bin repro --
//!   run fig8`) renders any registered experiment's artifact as text, CSV
//!   or JSON, and `repro check --all` verifies every paper anchor; and
//! * the Criterion benches time the same registry runs, so performance
//!   regressions in the models are caught alongside correctness
//!   regressions.
//!
//! This crate holds the presentation layer: [`render_text`],
//! [`csv_sections`], the small ASCII plotting helpers, and the
//! self-contained HTML report renderer in [`report`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
pub mod report;

use ntc::artifact::{Artifact, Cell, Table};

/// Formats a paper-vs-measured comparison line.
///
/// # Example
///
/// ```
/// let line = ntc_bench::compare_line("OCEAN @290kHz savings", 0.7, 0.66, "%");
/// assert!(line.contains("paper"));
/// ```
pub fn compare_line(label: &str, paper: f64, measured: f64, unit: &str) -> String {
    format!(
        "{label:<38} paper {paper:>8.3} {unit:<3} measured {measured:>8.3} {unit}",
    )
}

/// Renders a simple ASCII series (for figure-like output in terminals).
///
/// Bars are scaled between the series' minimum and maximum, so series
/// with a large offset (e.g. voltages around 0.8 V) still show their
/// shape. A `width` of zero renders labels only. Negative and
/// non-finite values clamp to an empty bar.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn ascii_series(title: &str, points: &[(f64, f64)], width: usize) -> String {
    assert!(!points.is_empty(), "series must have points");
    let finite = points.iter().map(|&(_, y)| y).filter(|y| y.is_finite());
    let min = finite.clone().fold(f64::INFINITY, f64::min);
    let max = finite.fold(f64::NEG_INFINITY, f64::max);
    let span = if (max - min).abs() > 1e-300 { max - min } else { 1.0 };
    let mut out = format!("{title}\n");
    for &(x, y) in points {
        let frac = if y.is_finite() { ((y - min) / span).clamp(0.0, 1.0) } else { 0.0 };
        let bar = (frac * width as f64).round() as usize;
        out.push_str(&format!("{x:>8.3} | {:<width$} {y:.3e}\n", "#".repeat(bar)));
    }
    out
}

/// Formats a number the way the artifact JSON does: shortest string that
/// round-trips the exact `f64`, so text/CSV output is byte-stable.
fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".into()
    } else if v > 0.0 {
        "inf".into()
    } else {
        "-inf".into()
    }
}

/// One table cell as rendered text.
fn fmt_cell(cell: &Cell) -> String {
    match cell {
        Cell::Text(s) => s.clone(),
        Cell::Num(v) => fmt_num(*v),
    }
}

/// Renders one table with aligned columns.
fn render_table(table: &Table) -> String {
    let headers: Vec<String> = table
        .columns
        .iter()
        .map(|c| {
            if c.unit.is_empty() {
                c.name.clone()
            } else {
                format!("{} [{}]", c.name, c.unit)
            }
        })
        .collect();
    let rows: Vec<Vec<String>> =
        table.rows().iter().map(|r| r.iter().map(fmt_cell).collect()).collect();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = format!("## {}\n", table.name);
    let line = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&line(&headers));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

/// Renders an artifact as human-readable text: title, tables, series,
/// scalars, and a verdict line per paper anchor.
pub fn render_text(artifact: &Artifact) -> String {
    let mut out = format!("=== {} ===\n", artifact.title);
    for table in artifact.tables() {
        out.push('\n');
        out.push_str(&render_table(table));
    }
    for series in artifact.series() {
        out.push('\n');
        out.push_str(&format!(
            "## {} ({} [{}] vs {} [{}]): {} points, y in [{}, {}]\n",
            series.label,
            series.y_name,
            series.y_unit,
            series.x_name,
            series.x_unit,
            series.points.len(),
            fmt_num(series.points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min)),
            fmt_num(series.points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max)),
        ));
    }
    let scalars: Vec<_> = artifact.scalars().collect();
    if !scalars.is_empty() {
        out.push('\n');
        for s in &scalars {
            match &s.paper {
                Some(p) => out.push_str(&format!(
                    "{:<52} {} {}   (paper {} {}, {})\n",
                    s.label,
                    fmt_num(s.value),
                    s.unit,
                    fmt_num(p.paper),
                    s.unit,
                    p.band,
                )),
                None => out.push_str(&format!("{:<52} {} {}\n", s.label, fmt_num(s.value), s.unit)),
            }
        }
    }
    let checks = artifact.checks();
    if !checks.is_empty() {
        out.push('\n');
        for c in &checks {
            out.push_str(&format!("{c}\n"));
        }
    }
    out
}

/// Renders an artifact as named CSV sections: one per table (named after
/// the table), one per series (`series_<label>`), and one `scalars`
/// section with the anchor verdicts.
pub fn csv_sections(artifact: &Artifact) -> Vec<(String, String)> {
    fn quote(field: &str) -> String {
        if field.contains([',', '"', '\n']) {
            format!("\"{}\"", field.replace('"', "\"\""))
        } else {
            field.to_string()
        }
    }
    let mut sections = Vec::new();
    for table in artifact.tables() {
        let mut csv = table
            .columns
            .iter()
            .map(|c| quote(&c.name))
            .collect::<Vec<_>>()
            .join(",");
        csv.push('\n');
        for row in table.rows() {
            csv.push_str(
                &row.iter().map(|c| quote(&fmt_cell(c))).collect::<Vec<_>>().join(","),
            );
            csv.push('\n');
        }
        sections.push((table.name.clone(), csv));
    }
    for series in artifact.series() {
        let mut csv = format!("{},{}\n", quote(&series.x_name), quote(&series.y_name));
        for &(x, y) in &series.points {
            csv.push_str(&format!("{},{}\n", fmt_num(x), fmt_num(y)));
        }
        sections.push((format!("series_{}", series.label), csv));
    }
    let scalars: Vec<_> = artifact.scalars().collect();
    if !scalars.is_empty() {
        let mut csv = String::from("label,unit,value,paper,band,ok\n");
        for s in scalars {
            let (paper, band, ok) = match &s.paper {
                Some(p) => (
                    fmt_num(p.paper),
                    p.band.to_string(),
                    if p.holds(s.value) { "yes" } else { "NO" }.to_string(),
                ),
                None => (String::new(), String::new(), String::new()),
            };
            csv.push_str(&format!(
                "{},{},{},{},{},{}\n",
                quote(&s.label),
                quote(&s.unit),
                fmt_num(s.value),
                paper,
                quote(&band),
                ok
            ));
        }
        sections.push(("scalars".into(), csv));
    }
    sections
}

/// Renders all CSV sections as one stream with `# section:` separators.
pub fn render_csv(artifact: &Artifact) -> String {
    let mut out = String::new();
    for (name, csv) in csv_sections(artifact) {
        out.push_str(&format!("# section: {name}\n"));
        out.push_str(&csv);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc::artifact::{Column, PaperRef};

    fn sample() -> Artifact {
        Artifact::new("t", "Test artifact")
            .with_table(
                Table::new("tab", vec![Column::bare("k"), Column::new("v", "V")])
                    .with_row(vec![Cell::Text("a".into()), Cell::Num(0.33)]),
            )
            .with_anchor("anchor", "V", 0.33, PaperRef::exact(0.33))
    }

    #[test]
    fn compare_line_contains_both_numbers() {
        let l = compare_line("x", 1.5, 2.5, "V");
        assert!(l.contains("1.500") && l.contains("2.500"));
    }

    #[test]
    fn ascii_series_has_one_line_per_point() {
        let s = ascii_series("t", &[(0.1, 1.0), (0.2, 2.0)], 10);
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "points")]
    fn ascii_series_rejects_empty() {
        ascii_series("t", &[], 10);
    }

    #[test]
    fn ascii_series_scales_between_min_and_max() {
        // An offset series still shows shape: smallest value → empty bar,
        // largest → full width.
        let s = ascii_series("t", &[(0.1, 100.0), (0.2, 101.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert!(!lines[1].contains('#'), "min bar empty: {}", lines[1]);
        assert!(lines[2].contains(&"#".repeat(10)), "max bar full: {}", lines[2]);
    }

    #[test]
    fn ascii_series_handles_zero_width_and_flat_series() {
        let s = ascii_series("t", &[(0.1, 5.0), (0.2, 5.0)], 0);
        assert_eq!(s.lines().count(), 3, "no panic on width 0 / flat series");
        let nan = ascii_series("t", &[(0.1, f64::NAN)], 8);
        assert!(!nan.contains('#'), "non-finite values clamp to empty bars");
    }

    #[test]
    fn text_render_includes_table_and_verdict() {
        let text = render_text(&sample());
        assert!(text.contains("## tab"));
        assert!(text.contains("v [V]"));
        assert!(text.contains("anchor"));
        assert!(text.contains("ok"), "{text}");
    }

    #[test]
    fn csv_sections_cover_tables_and_scalars() {
        let sections = csv_sections(&sample());
        let names: Vec<&str> = sections.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["tab", "scalars"]);
        assert!(sections[0].1.starts_with("k,v\n"));
        assert!(sections[1].1.contains("anchor,V,0.33,0.33"));
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        let a = Artifact::new("q", "quoting").with_scalar("a,b", "1", 1.0);
        let csv = render_csv(&a);
        assert!(csv.contains("\"a,b\""), "{csv}");
    }
}
