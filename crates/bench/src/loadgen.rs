//! Open-loop HTTP load generator for the query service.
//!
//! The generator models an **open** system: request *i* is due at
//! `start + i/rate` whether or not earlier requests have finished. A
//! dispatcher thread walks the arrival schedule and hands each arrival
//! to a pool of client threads that **grows on demand**: when every
//! client is mid-request at an arrival instant, a new client is spawned
//! (up to [`LoadConfig::max_clients`]), so in-flight concurrency tracks
//! the server's actual backlog instead of being silently clamped at the
//! initial pool size. A fixed pool of `n` clients can never hold more
//! than `n` requests open — at 10× capacity that degenerates into a
//! closed loop that fills the server's queue once and then politely
//! waits, reporting zero 503s and seconds-long "latencies" that are
//! really client-side queueing. Arrivals that find the pool at its cap
//! are counted in [`LoadReport::saturated`] — nonzero means the
//! *generator* was the bottleneck and the overload numbers understate
//! the offered concurrency.
//!
//! Latency is measured **from the intended send time**, not from when
//! the socket call happened — a generator that has fallen behind
//! schedule charges the backlog to the measurement instead of silently
//! coordinating with the server's slowness (the coordinated-omission
//! trap that makes closed-loop "p99"s look flattering under
//! saturation).
//!
//! Latencies land in the same log-spaced buckets the server's own
//! `serve.latency_ms` histogram uses ([`ntc_obs::latency_bounds_ms`]),
//! so client-observed and server-observed distributions are directly
//! comparable bucket for bucket.
//!
//! The workload is a deterministic function of the request index: a
//! configurable fraction of `POST /run` (memoised experiment runs)
//! mixed into a rotation of `POST /query` model evaluations, so cache
//! layers see a realistic mix of hits and misses. 503s are **not**
//! errors here — they are the server's overload contract working as
//! designed and are accounted separately.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ntc::api::{EnergyModel, LawKind, Memory, QueryKind, QueryRequest, RunRequest};
use ntc::fit::{Scheme, VoltageGrid};
use ntc::repro::{ExperimentId, Scale};
use ntc_obs::{Histogram, HistogramSnapshot};

/// One load-generation run against a serve endpoint.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Target arrival rate, requests per second.
    pub rate: f64,
    /// How long arrivals are generated for.
    pub duration: Duration,
    /// Initial client threads; the pool grows past this on demand.
    pub connections: usize,
    /// Hard cap on the client pool (≥ `connections`). Arrivals beyond
    /// this many in-flight requests are delayed and counted as
    /// [`LoadReport::saturated`].
    pub max_clients: usize,
    /// Every `run_every`-th request is a `POST /run` (0 disables).
    pub run_every: usize,
    /// Per-request socket read timeout.
    pub timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 7878)),
            rate: 100.0,
            duration: Duration::from_secs(2),
            connections: 8,
            max_clients: 256,
            run_every: 16,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Outcome counters plus the latency distribution of one run.
#[derive(Debug)]
pub struct LoadReport {
    /// Arrivals the schedule called for.
    pub offered: u64,
    /// Requests that produced a parseable HTTP response.
    pub answered: u64,
    /// 2xx responses.
    pub ok: u64,
    /// Intended-overload rejections (HTTP 503).
    pub rejected_503: u64,
    /// Any other non-2xx status — these are real failures.
    pub http_errors: u64,
    /// Connect/read/parse failures before a status line arrived.
    pub transport_errors: u64,
    /// Arrivals that found every client busy with the pool at
    /// [`LoadConfig::max_clients`]. These were still sent (late, with
    /// the delay charged to their latency sample), but nonzero means
    /// the generator — not the server — limited the offered
    /// concurrency; raise `max_clients` for an honest overload number.
    pub saturated: u64,
    /// Wall-clock span from first intended arrival to last response.
    pub elapsed: Duration,
    /// Client-observed latency (ms, from intended send time) in the
    /// shared serve bucket layout.
    pub latency: HistogramSnapshot,
}

impl LoadReport {
    /// Completed-2xx throughput actually achieved, requests/second.
    #[must_use]
    pub fn achieved_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            {
                self.ok as f64 / secs
            }
        } else {
            0.0
        }
    }

    /// True when every response was either 2xx or an intended 503.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.http_errors == 0 && self.transport_errors == 0
    }
}

/// The request for arrival index `i`: `(method, target, body)`.
///
/// Deterministic in `i` so re-runs offer the identical stream: every
/// `run_every`-th arrival re-runs a quick-scale experiment (memoised
/// server-side after the first), the rest rotate through the three
/// query kinds over a small grid of operating points. Bodies are
/// rendered through the shared [`ntc::api`] DTOs — the same types the
/// server parses — so the generator cannot drift from the wire schema.
#[must_use]
pub fn request_for(i: u64, run_every: usize) -> (&'static str, &'static str, String) {
    if run_every > 0 && i.is_multiple_of(run_every as u64) {
        let run = RunRequest { id: ExperimentId::Table2, scale: Scale::Quick, seed: None };
        return ("POST", "/v1/run", run.to_json());
    }
    let kind = match i % 3 {
        0 => QueryKind::Energy {
            model: EnergyModel::Cots40,
            vdd: (50.0 + 5.0 * ((i / 3) % 7) as f64) / 100.0,
            frequency_hz: None,
        },
        1 => QueryKind::Ber {
            law: LawKind::Retention,
            memory: Memory::CellBased65,
            vdd: (30.0 + ((i / 3) % 5) as f64) / 100.0,
        },
        _ => QueryKind::Vmin {
            scheme: Scheme::Ocean,
            memory: Memory::CellBased40,
            fit_target: 1e-15,
            frequency_hz: Some([290e3, 1e6, 11.6e6][(i / 3) as usize % 3]),
            grid: VoltageGrid::PaperGrid,
        },
    };
    ("POST", "/v1/query", QueryRequest { id: None, kind }.to_json())
}

/// Sends one request on a fresh connection and returns the HTTP status,
/// or `None` on a transport failure.
fn send_one(
    addr: SocketAddr,
    timeout: Duration,
    method: &str,
    target: &str,
    body: &str,
) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_nodelay(true).ok();
    let raw = format!(
        "{method} {target} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).ok()?;
    let mut text = String::new();
    stream.read_to_string(&mut text).ok()?;
    text.split(' ').nth(1).and_then(|s| s.parse().ok())
}

/// Everything a client thread shares with the dispatcher.
struct ClientShared {
    addr: SocketAddr,
    timeout: Duration,
    run_every: usize,
    jobs: std::sync::Mutex<std::sync::mpsc::Receiver<(u64, Instant)>>,
    inflight: AtomicU64,
    hist: Histogram,
    ok: AtomicU64,
    rejected: AtomicU64,
    http_errors: AtomicU64,
    transport_errors: AtomicU64,
    answered: AtomicU64,
}

fn spawn_client(shared: &Arc<ClientShared>) -> std::thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || loop {
        // Hold the lock only to draw the next arrival, never during I/O.
        let job = shared.jobs.lock().unwrap_or_else(|e| e.into_inner()).recv();
        let Ok((i, intended)) = job else { break };
        let (method, target, body) = request_for(i, shared.run_every);
        let status = send_one(shared.addr, shared.timeout, method, target, &body);
        let latency_ms = intended.elapsed().as_secs_f64() * 1e3;
        match status {
            Some(s) => {
                shared.answered.fetch_add(1, Ordering::Relaxed);
                shared.hist.record(latency_ms);
                match s {
                    200..=299 => {
                        shared.ok.fetch_add(1, Ordering::Relaxed);
                    }
                    503 => {
                        shared.rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        shared.http_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            None => {
                shared.transport_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
    })
}

/// Runs one open-loop measurement and blocks until every scheduled
/// arrival has been resolved (sent and answered, or failed).
///
/// The dispatcher sleeps until each arrival's intended send time (when
/// behind schedule it dispatches immediately and the lateness lands in
/// the latency sample — coordinated-omission-safe), then hands the
/// arrival to an idle client, growing the pool by one whenever every
/// client is already mid-request and the cap allows it.
///
/// # Panics
///
/// Panics if `rate` is not positive or `connections` is zero.
#[must_use]
pub fn run_open_loop(config: &LoadConfig) -> LoadReport {
    assert!(config.rate > 0.0, "rate must be positive");
    assert!(config.connections > 0, "need at least one connection");
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let offered = (config.rate * config.duration.as_secs_f64()).floor().max(1.0) as u64;
    let max_clients = config.max_clients.max(config.connections);

    let (job_tx, job_rx) = std::sync::mpsc::channel::<(u64, Instant)>();
    let shared = Arc::new(ClientShared {
        addr: config.addr,
        timeout: config.timeout,
        run_every: config.run_every,
        jobs: std::sync::Mutex::new(job_rx),
        inflight: AtomicU64::new(0),
        hist: Histogram::new(ntc_obs::latency_bounds_ms()),
        ok: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        http_errors: AtomicU64::new(0),
        transport_errors: AtomicU64::new(0),
        answered: AtomicU64::new(0),
    });
    let mut clients: Vec<_> = (0..config.connections).map(|_| spawn_client(&shared)).collect();

    let start = Instant::now() + Duration::from_millis(20);
    let mut saturated = 0u64;
    for i in 0..offered {
        #[allow(clippy::cast_precision_loss)]
        let intended = start + Duration::from_secs_f64(i as f64 / config.rate);
        let now = Instant::now();
        if intended > now {
            std::thread::sleep(intended - now);
        }
        if shared.inflight.load(Ordering::Acquire) >= clients.len() as u64 {
            if clients.len() < max_clients {
                clients.push(spawn_client(&shared));
            } else {
                saturated += 1;
            }
        }
        shared.inflight.fetch_add(1, Ordering::AcqRel);
        // Receiver outlives every send: clients only exit on a closed
        // channel, which requires this sender dropped first.
        let _ = job_tx.send((i, intended));
    }
    drop(job_tx);
    for c in clients {
        let _ = c.join();
    }
    let elapsed = start.elapsed();
    LoadReport {
        offered,
        answered: shared.answered.load(Ordering::Relaxed),
        ok: shared.ok.load(Ordering::Relaxed),
        rejected_503: shared.rejected.load(Ordering::Relaxed),
        http_errors: shared.http_errors.load(Ordering::Relaxed),
        transport_errors: shared.transport_errors.load(Ordering::Relaxed),
        saturated,
        elapsed,
        latency: shared.hist.snapshot(),
    }
}

/// Measures sustainable capacity with a short **closed-loop** probe:
/// `connections` threads issue back-to-back queries for `window` and
/// the completion rate is the capacity estimate. Closed loop is the
/// right tool *here* — we want the server's service rate, not a latency
/// distribution.
#[must_use]
pub fn measure_capacity(
    addr: SocketAddr,
    connections: usize,
    window: Duration,
    timeout: Duration,
) -> f64 {
    let done = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let probes: Vec<_> = (0..connections.max(1))
        .map(|t| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut i = 10_000 * (t as u64 + 1) + 1; // skip /run arrivals
                while start.elapsed() < window {
                    let (method, target, body) = request_for(i, 0);
                    if send_one(addr, timeout, method, target, &body) == Some(200) {
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                }
            })
        })
        .collect();
    for p in probes {
        let _ = p.join();
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    #[allow(clippy::cast_precision_loss)]
    {
        done.load(Ordering::Relaxed) as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_in_the_index() {
        for i in 0..64 {
            assert_eq!(request_for(i, 16), request_for(i, 16));
        }
        let (_, target, _) = request_for(0, 16);
        assert_eq!(target, "/v1/run");
        let (_, target, _) = request_for(0, 0);
        assert_eq!(target, "/v1/query", "run_every=0 disables /run arrivals");
    }

    #[test]
    fn workload_bodies_parse_back_through_the_shared_dtos() {
        for i in 0..48 {
            let (method, target, body) = request_for(i, 8);
            assert_eq!(method, "POST");
            let v = ntc::artifact::json::parse(&body).expect("body is JSON");
            match target {
                "/v1/run" => {
                    RunRequest::from_json_value(&v).expect("run body round-trips");
                }
                "/v1/query" => {
                    QueryRequest::from_json_value(&v).expect("query body round-trips");
                }
                other => panic!("unexpected target {other}"),
            }
        }
    }

    #[test]
    fn report_flags_http_errors_as_unclean() {
        let snap = Histogram::new(ntc_obs::latency_bounds_ms()).snapshot();
        let mut report = LoadReport {
            offered: 10,
            answered: 10,
            ok: 9,
            rejected_503: 1,
            http_errors: 0,
            transport_errors: 0,
            saturated: 0,
            elapsed: Duration::from_secs(1),
            latency: snap,
        };
        assert!(report.clean(), "503s alone are intended overload, not failure");
        report.http_errors = 1;
        assert!(!report.clean());
    }
}
