//! Figure 7: overview of OCEAN operation — a live trace of phases,
//! checkpoint traffic, detected errors and recoveries on a small workload
//! at a deeply scaled supply.

use ntc_ocean::detect::DetectOnlyMemory;
use ntc_ocean::runtime::{Granularity, OceanConfig, OceanRuntime};
use ntc_sim::asm::assemble;
use ntc_sim::memory::{FaultInjector, ProtectedMemory};
use ntc_sim::platform::{Platform, PlatformConfig, Protection};

fn main() {
    let program = assemble(
        "   li r1, 0
            li r2, 0
            li r3, 64
        fill:
            mul r4, r1, r1
            sw  r4, 0(r2)
            addi r1, r1, 1
            addi r2, r2, 4
            bne r1, r3, fill
            ecall 1
            li r1, 0
            li r2, 0
            li r4, 0
        sum:
            lw r5, 0(r2)
            add r4, r4, r5
            addi r1, r1, 1
            addi r2, r2, 4
            bne r1, r3, sum
            sw r4, 0(r2)
            ecall 1
            halt",
    )
    .expect("assembles");

    println!("Figure 7 — OCEAN operation on a two-phase workload at 0.33 V\n");
    let cfg = PlatformConfig::mparm_like(0.33, 290e3, Protection::DetectOnly)
        .with_protected_buffer(128);
    let sp = DetectOnlyMemory::new(128).with_injector(FaultInjector::with_p(8e-4, 7));
    let mut platform = Platform::new(&cfg, program, sp, Some(ProtectedMemory::new(128)));
    let mut runtime = OceanRuntime::new(
        OceanConfig::new(0, 80).with_granularity(Granularity::WriteThrough),
    );
    let outcome = runtime
        .run(&mut platform, &[0; 80], 10_000_000)
        .expect("completes");

    let stats = outcome.stats;
    println!("phases crossed          : {}", stats.phases);
    println!("words shadowed to PM    : {}", stats.words_shadowed);
    println!("word recoveries from PM : {}", stats.word_recoveries);
    println!("full rollbacks          : {}", stats.rollbacks);
    println!("detected scratchpad errs: {}", platform.scratchpad().detected());
    println!("DMA stall cycles        : {}", runtime.dma_stats().stall_cycles);
    println!("\nfinal sum (golden copy) : {}", platform.protected().unwrap().load(64).unwrap());
    let want: u32 = (0u32..64).map(|i| i * i).sum();
    println!("expected                : {want}");
    assert_eq!(platform.protected().unwrap().load(64).unwrap(), want);
    println!("\nenergy ledger:\n{}", platform.ledger());
}
