//! Figure 10: inverter delay in finFETs — mean delay and sigma spread vs.
//! supply for the 14 nm finFET and 10 nm multi-gate nodes.

use ntc_bench::compare_line;
use ntc_stats::hist::Histogram;
use ntc_stats::rng::Source;
use ntc_stats::sweep::voltage_grid;
use ntc_tech::card;
use ntc_tech::inverter::Inverter;

fn main() {
    let inv14 = Inverter::fo4(&card::n14finfet());
    let inv10 = Inverter::fo4(&card::n10gaa());
    println!("Figure 10 — inverter delay in finFETs\n");
    println!(
        "{:>6} | {:>12} {:>9} | {:>12} {:>9} | {:>8}",
        "VDD", "14nm mean", "σ/µ", "10nm mean", "σ/µ", "speedup"
    );
    let mut src = Source::seeded(10);
    for vdd in voltage_grid(0.25, 0.80, 50) {
        let p14 = inv14.monte_carlo(vdd, 4000, &mut src);
        let p10 = inv10.monte_carlo(vdd, 4000, &mut src);
        println!(
            "{:>5.2}V | {:>10.2}ps {:>8.1}% | {:>10.2}ps {:>8.1}% | {:>7.2}x",
            vdd,
            p14.mean * 1e12,
            100.0 * p14.sigma / p14.mean,
            p10.mean * 1e12,
            100.0 * p10.sigma / p10.mean,
            p14.mean / p10.mean
        );
    }
    // The sigma-spread panel: delay distribution at one NTV point.
    let vdd = 0.4;
    let mean14 = inv14.delay(vdd);
    let mut h = Histogram::new(0.0, 3.0 * mean14, 30);
    let mut src2 = Source::seeded(77);
    for _ in 0..20_000 {
        h.push(inv14.delay_shifted(vdd, src2.normal(0.0, inv14.sigma_vth())));
    }
    println!("\n14nm delay distribution at {vdd} V (s):\n{h}");

    println!();
    println!(
        "{}",
        compare_line(
            "14nm -> 10nm speedup (near threshold)",
            2.0,
            inv14.delay(0.5) / inv10.delay(0.5),
            "x"
        )
    );
}
