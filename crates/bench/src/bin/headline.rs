//! The abstract's headline numbers, measured on this reproduction:
//! "saving energy up to 2x compared to the traditional ECC approaches,
//! and 3x compared to no mitigation … a 3.3x lower dynamic power is
//! achieved beyond the voltage limit for error free operation."

use ntc::experiments::headline;
use ntc_bench::compare_line;

fn main() {
    let h = headline();
    println!("Headline claims vs this reproduction\n");
    println!(
        "{}",
        compare_line("OCEAN vs none saving @290 kHz", 70.0, h.ocean_vs_none_290khz * 100.0, "%")
    );
    println!(
        "{}",
        compare_line("OCEAN vs ECC saving @290 kHz", 48.0, h.ocean_vs_ecc_290khz * 100.0, "%")
    );
    println!(
        "{}",
        compare_line("OCEAN vs none saving @11 MHz", 34.0, h.ocean_vs_none_11mhz * 100.0, "%")
    );
    println!(
        "{}",
        compare_line("OCEAN vs ECC saving @11 MHz", 26.0, h.ocean_vs_ecc_11mhz * 100.0, "%")
    );
    println!(
        "{}",
        compare_line("dynamic power gain beyond V0", 3.3, h.dynamic_power_gain, "x")
    );
    println!(
        "\nenergy ratios: no-mit/OCEAN = {:.2}x (paper: ~3x), ECC/OCEAN = {:.2}x (paper: ~2x)",
        1.0 / (1.0 - h.ocean_vs_none_290khz),
        1.0 / (1.0 - h.ocean_vs_ecc_290khz)
    );
}
