//! Figure 5: read/write access error probability vs. supply voltage —
//! Monte-Carlo "quasi-static" measurement against the Eq. 5 power law,
//! with the law's constants re-fitted from the synthetic measurement.

use ntc_sim::memory::FaultInjector;
use ntc_sram::failure::AccessLaw;
use ntc_stats::fit::fit_power_law;
use ntc_stats::sweep::voltage_grid;

fn measure(law: &AccessLaw, vdd: f64, accesses: u64, seed: u64) -> f64 {
    let mut inj = FaultInjector::from_law(law, vdd, seed);
    let mut flipped = 0u64;
    for _ in 0..accesses {
        flipped += inj.mask(32).count_ones() as u64;
    }
    flipped as f64 / (accesses * 32) as f64
}

fn main() {
    println!("Figure 5 — access error probability vs VDD");
    for (name, law, range) in [
        (
            "commercial memory IP (paper fit: A=6, k=6.14, V0=0.85)",
            AccessLaw::commercial_40nm(),
            (0.55, 0.84),
        ),
        (
            "cell-based memory (reverse-engineered: A=3.82, k=7.20, V0=0.55)",
            AccessLaw::cell_based_40nm(),
            (0.30, 0.54),
        ),
    ] {
        println!("\n=== {name} ===");
        println!("{:>8} {:>14} {:>14}", "VDD", "measured", "Eq.5 model");
        let grid = voltage_grid(range.0, range.1, 20);
        let mut vs = Vec::new();
        let mut ps = Vec::new();
        for &vdd in &grid {
            let accesses = 300_000;
            let measured = measure(&law, vdd, accesses, 7 + (vdd * 1000.0) as u64);
            println!("{:>7.3}V {:>14.3e} {:>14.3e}", vdd, measured, law.p_bit(vdd));
            if measured > 0.0 {
                vs.push(vdd);
                ps.push(measured);
            }
        }
        match fit_power_law(&vs, &ps, (range.1 + 0.005, range.1 + 0.12)) {
            Ok(fit) => println!(
                "re-fit from measurement: A = {:.2}, k = {:.2}, V0 = {:.3}  (law: A = {:.2}, k = {:.2}, V0 = {:.3})",
                fit.amplitude,
                fit.exponent,
                fit.v0,
                law.amplitude(),
                law.exponent(),
                law.v0()
            ),
            Err(e) => println!("fit failed: {e}"),
        }
    }
}
