//! Figure 1: energy per cycle vs. supply voltage for the 40 nm signal
//! processor — commercial memories (supply floor at 0.7 V) vs. the
//! cell-based single-supply platform.

use ntc_memcalc::soc::SocEnergyModel;
use ntc_stats::sweep::voltage_grid;

fn main() {
    let cots = SocEnergyModel::exg_processor_40nm();
    let cell = SocEnergyModel::exg_processor_cell_based_40nm();

    println!("Figure 1 — energy/cycle vs VDD (40nm LP signal processor)");
    println!(
        "{:>6} | {:>11} {:>11} {:>11} {:>11} | {:>11}",
        "VDD", "logic dyn", "mem dyn", "leak/cyc", "total COTS", "total cell"
    );
    for vdd in voltage_grid(0.40, 1.10, 50) {
        let p = cots.operating_point(vdd);
        let c = cell.operating_point(vdd);
        println!(
            "{:>5.2}V | {:>9.2}pJ {:>9.2}pJ {:>9.2}pJ {:>9.2}pJ | {:>9.2}pJ",
            vdd,
            p.components[0].dynamic_j * 1e12,
            p.components[1].dynamic_j * 1e12,
            p.leakage_j() * 1e12,
            p.total_j() * 1e12,
            c.total_j() * 1e12,
        );
    }
    println!();
    println!(
        "COTS-memory optimum: {:.2} V   (memory dynamic energy flattens below 0.70 V)",
        cots.optimal_voltage(0.4, 1.1, 141)
    );
    println!(
        "cell-based optimum : {:.2} V   (full-swing scaling all the way down)",
        cell.optimal_voltage(0.4, 1.1, 141)
    );
    let pt = cots.operating_point(0.55);
    println!(
        "leakage share at 0.55 V: {:.0} %  (paper: leakage dominates below 0.6 V)",
        100.0 * pt.leakage_j() / pt.total_j()
    );
}
