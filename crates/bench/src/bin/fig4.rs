//! Figure 4: retention bit error rate vs. supply voltage, cumulative over
//! nine synthesized dies, with the Gaussian noise-margin fit of Eq. 4
//! recovered from the synthetic measurement.

use ntc_sram::diemap::{DieMap, DieMapConfig};
use ntc_sram::failure::RetentionLaw;
use ntc_stats::fit::probit_line_fit;
use ntc_stats::hist::Histogram;
use ntc_stats::sweep::voltage_grid;

fn main() {
    println!("Figure 4 — retention BER vs VDD (9 dies, cell-based + commercial)");
    for (name, law, seed) in [
        ("commercial memory IP", RetentionLaw::commercial_40nm(), 40u64),
        ("cell-based memory", RetentionLaw::cell_based_40nm(), 41u64),
    ] {
        let cfg = DieMapConfig::new(128, 256, law);
        let dies = DieMap::synthesize_population(&cfg, 9, seed);
        let grid = voltage_grid(
            (law.mean() - 2.0 * law.sigma()).max(0.05),
            law.mean() + 4.5 * law.sigma(),
            10,
        );
        println!("\n=== {name} ===");
        println!("{:>8} {:>14} {:>14}", "VDD", "measured BER", "Eq.4 model");
        let mut vs = Vec::new();
        let mut ps = Vec::new();
        for &vdd in &grid {
            let ber = DieMap::population_ber(&dies, vdd);
            println!("{:>7.3}V {:>14.3e} {:>14.3e}", vdd, ber, law.p_bit(vdd));
            if ber > 0.0 && ber < 1.0 {
                vs.push(vdd);
                ps.push(ber);
            }
        }
        // Distribution of per-bit retention voltages across the population.
        let mut h = Histogram::new(law.mean() - 4.0 * law.sigma(), law.mean() + 4.0 * law.sigma(), 24);
        for die in &dies {
            for r in 0..die.rows() {
                for c in 0..die.cols() {
                    h.push(die.v_ret(r, c));
                }
            }
        }
        println!("\nper-bit retention voltage distribution (9 dies):\n{h}");
        // Recover the Eq. 4 parameters from the synthetic measurement the
        // way the paper fit its silicon data.
        if let Ok(line) = probit_line_fit(&vs, &ps) {
            // p = Φ(√2·(slope·V + b)) ⇒ mean = −b/slope, σ = −1/(√2·slope)
            let sigma = -1.0 / (std::f64::consts::SQRT_2 * line.slope);
            let mean = -line.intercept / line.slope;
            let (d0, d1, d2) = law.to_d_params();
            println!(
                "fit: V_ret ~ N({:.4}, {:.4}²) vs generating N({:.4}, {:.4}²)   R² = {:.4}",
                mean,
                sigma,
                law.mean(),
                law.sigma(),
                line.r_squared
            );
            println!("Eq. 4 d-parameters of the generating law: d0 = {d0:.4}, d1 = {d1:.4}, d2 = {d2:.1}");
        }
    }
}
