//! Figure 9: power consumption at 11 MHz (commercial memory regime,
//! 0.88 / 0.77 / 0.66 V) under the three mitigation policies.

use ntc::experiments::{figure8, figure9};
use ntc_bench::compare_line;

fn main() {
    println!("Figure 9 — power at 11 MHz, 1K-point FFT, commercial memory\n");
    println!(
        "{:<16} {:>6} {:>11} {:>11} {:>11} {:>7} {:>8}",
        "policy", "VDD", "dyn [µW]", "leak [µW]", "total [µW]", "exact", "repairs"
    );
    let rows = figure9();
    for r in &rows {
        println!(
            "{:<16} {:>4.2} V {:>11.4} {:>11.4} {:>11.4} {:>7} {:>8}",
            r.policy.to_string(),
            r.vdd,
            r.dynamic_power_w() * 1e6,
            (r.total_power_w() - r.dynamic_power_w()) * 1e6,
            r.total_power_w() * 1e6,
            if r.is_exact() { "yes" } else { "NO" },
            r.repaired
        );
    }
    let s_none = 1.0 - rows[2].total_power_w() / rows[0].total_power_w();
    let s_ecc = 1.0 - rows[2].total_power_w() / rows[1].total_power_w();
    println!();
    println!("{}", compare_line("OCEAN vs no-mitigation saving", 34.0, s_none * 100.0, "%"));
    println!("{}", compare_line("OCEAN vs ECC saving", 26.0, s_ecc * 100.0, "%"));
    let f8 = figure8();
    println!(
        "power ratio 11 MHz / 290 kHz (no-mit): {:.1}x  (paper: one order of magnitude)",
        rows[0].total_power_w() / f8[0].total_power_w()
    );
}
