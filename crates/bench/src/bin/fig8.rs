//! Figure 8: power consumption at 290 kHz (cell-based memory) under the
//! three mitigation policies, split per module.

use ntc::experiments::figure8;
use ntc_bench::compare_line;

fn main() {
    println!("Figure 8 — power at 290 kHz, 1K-point FFT, cell-based memory\n");
    println!(
        "{:<16} {:>6} {:>11} {:>11} {:>11} {:>7} {:>8}",
        "policy", "VDD", "dyn [µW]", "leak [µW]", "total [µW]", "exact", "repairs"
    );
    let rows = figure8();
    for r in &rows {
        println!(
            "{:<16} {:>4.2} V {:>11.4} {:>11.4} {:>11.4} {:>7} {:>8}",
            r.policy.to_string(),
            r.vdd,
            r.dynamic_power_w() * 1e6,
            (r.total_power_w() - r.dynamic_power_w()) * 1e6,
            r.total_power_w() * 1e6,
            if r.is_exact() { "yes" } else { "NO" },
            r.repaired
        );
        for m in &r.modules {
            println!(
                "   {:<13} {:>18.4} {:>11.4}",
                m.name,
                m.dynamic_w * 1e6,
                m.leakage_w * 1e6
            );
        }
    }
    let s_none = 1.0 - rows[2].total_power_w() / rows[0].total_power_w();
    let s_ecc = 1.0 - rows[2].total_power_w() / rows[1].total_power_w();
    println!();
    println!("{}", compare_line("OCEAN vs no-mitigation saving", 70.0, s_none * 100.0, "%"));
    println!("{}", compare_line("OCEAN vs ECC saving", 48.0, s_ecc * 100.0, "%"));
}
