//! Figure 6: the evaluated architecture — printed as a configuration
//! summary of the simulated platform (core, IM, SP, bus/DMA, and the
//! OCEAN additions the paper circles in red: protected memory + runtime).

use ntc_sim::dma::Dma;
use ntc_sim::platform::{PlatformConfig, Protection};

fn main() {
    let cfg = PlatformConfig::mparm_like(0.44, 290e3, Protection::Secded)
        .with_protected_buffer(1536);
    println!("Figure 6 — simulated platform configuration\n");
    println!("core : 32-bit RISC (ARM9-class timing), {} pJ/cycle @ {} V,", cfg.core_e_ref * 1e12, cfg.vref);
    println!("       {} µW leakage @ {} V", cfg.core_leak_ref * 1e6, cfg.vref);
    println!("IM   : {} ({:.1} KB), {:.2} pJ/access @1.1 V", cfg.im.organization(), cfg.im.organization().kib(), cfg.im.access_energy(1.1) * 1e12);
    println!("SP   : {} ({:.1} KB), {:.2} pJ/access @1.1 V", cfg.sp.organization(), cfg.sp.organization().kib(), cfg.sp.access_energy(1.1) * 1e12);
    if let Some(pm) = &cfg.pm {
        println!("PM   : {} (OCEAN protected buffer, (57,32) quad BCH)", pm.organization());
    }
    let dma = Dma::figure6_default();
    println!("DMA  : {dma}");
    println!("\nprotection of the scratchpad at this operating point: {:?}", cfg.protection);
    println!("operating point: {} V, {} kHz", cfg.vdd, cfg.frequency_hz / 1e3);
}
