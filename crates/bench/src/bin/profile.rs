//! Workload profiler: instruction mix, memory traffic and the OCEAN phase
//! plan for the two streaming kernels.
//!
//! ```text
//! cargo run --release -p ntc-bench --bin profile [fft_n]
//! ```

use ntc_ocean::planning::planned_phase_count;
use ntc_sim::asm::assemble;
use ntc_sim::fft::{fft_program, random_input, scratchpad_words, twiddle_table};
use ntc_sim::fir;
use ntc_sim::memory::RawMemory;
use ntc_sim::profile::profile;
use ntc_sram::failure::AccessLaw;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);

    // --- FFT ---
    let program = assemble(&fft_program(n)).expect("kernel assembles");
    let mut mem = RawMemory::new(scratchpad_words(n).next_power_of_two());
    for (i, &w) in random_input(n, 1)
        .iter()
        .chain(twiddle_table(n).iter())
        .enumerate()
    {
        mem.store(i, w);
    }
    let p = profile(&program, &mut mem, u64::MAX).expect("error-free run");
    println!("=== {n}-point FFT ===");
    print!("{p}");
    let law = AccessLaw::cell_based_40nm();
    for vdd in [0.50, 0.44, 0.40, 0.36, 0.33] {
        let plan = planned_phase_count(&p, scratchpad_words(n) as u32, &law, vdd, 512)
            .expect("plan solvable");
        println!("  optimal phases at {vdd:.2} V: {plan}");
    }

    // --- FIR ---
    let (sn, taps, block) = (256, 16, 32);
    let program = assemble(&fir::fir_program(sn, taps, block)).expect("kernel assembles");
    let mut mem = RawMemory::new(fir::scratchpad_words(sn, taps).next_power_of_two());
    for (i, &x) in fir::random_signal(sn, 2)
        .iter()
        .chain(fir::moving_average_taps(taps).iter())
        .enumerate()
    {
        mem.store(i, x as u32);
    }
    let p = profile(&program, &mut mem, u64::MAX).expect("error-free run");
    println!("\n=== {sn}-sample, {taps}-tap FIR (block {block}) ===");
    print!("{p}");
}
