//! `repro` — the one CLI for every reproduction in the workspace.
//!
//! ```text
//! repro list                                     # all experiment ids
//! repro run fig8 table2 --format text            # render artifacts
//! repro run --all --format json --out artifacts/ # machine-readable dump
//! repro check --all                              # verify paper anchors
//! ```
//!
//! `run` defaults to full paper-fidelity Monte-Carlo sizes (`--quick`
//! shrinks them for smoke runs); output is deterministic and
//! byte-identical across thread counts. `check` exits nonzero when any
//! artifact misses its paper band.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use ntc::artifact::Artifact;
use ntc::repro::{find, registry, run_one, RunCtx};
use ntc_bench::{csv_sections, render_csv, render_text};
use ntc_obs::Provenance;

/// Output format of `repro run`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Csv,
    Json,
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  repro list\n  repro run <id...>|--all [--format text|csv|json] \
         [--out <dir>] [--trace <file>] [--metrics <file>] [--quick] [--seed <n>]\n  \
         repro check <id...>|--all [--quick] [--seed <n>]"
    );
    std::process::exit(2);
}

/// Parsed `run`/`check` options.
struct Options {
    ids: Vec<String>,
    all: bool,
    format: Format,
    out: Option<PathBuf>,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    quick: bool,
    seed: Option<u64>,
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        ids: Vec::new(),
        all: false,
        format: Format::Text,
        out: None,
        trace: None,
        metrics: None,
        quick: false,
        seed: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => opts.all = true,
            "--quick" => opts.quick = true,
            "--format" => {
                opts.format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("csv") => Format::Csv,
                    Some("json") => Format::Json,
                    _ => usage(),
                }
            }
            "--out" => match it.next() {
                Some(dir) => opts.out = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--trace" => match it.next() {
                Some(path) => opts.trace = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--metrics" => match it.next() {
                Some(path) => opts.metrics = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(seed) => opts.seed = Some(seed),
                None => usage(),
            },
            flag if flag.starts_with('-') => usage(),
            id => opts.ids.push(id.to_string()),
        }
    }
    if opts.all != opts.ids.is_empty() {
        // Either explicit ids or --all, not both and not neither.
        usage();
    }
    opts
}

fn context(opts: &Options) -> RunCtx {
    let ctx = if opts.quick { RunCtx::quick() } else { RunCtx::paper() };
    match opts.seed {
        Some(seed) => ctx.with_seed(seed),
        None => ctx,
    }
}

/// Resolves the requested experiments, exiting on unknown ids.
fn resolve(opts: &Options) -> Vec<Box<dyn ntc::repro::Experiment>> {
    if opts.all {
        return registry();
    }
    opts.ids
        .iter()
        .map(|id| {
            find(id).unwrap_or_else(|| {
                eprintln!("unknown experiment `{id}` — see `repro list`");
                std::process::exit(2);
            })
        })
        .collect()
}

fn write_file(path: &Path, contents: &str) {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).unwrap_or_else(|e| {
            eprintln!("cannot create {}: {e}", parent.display());
            std::process::exit(1);
        });
    }
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
}

fn emit(artifact: &Artifact, format: Format, out: Option<&Path>) {
    match (format, out) {
        (Format::Text, None) => print!("{}", render_text(artifact)),
        (Format::Csv, None) => print!("{}", render_csv(artifact)),
        (Format::Json, None) => print!("{}", artifact.to_json()),
        (Format::Text, Some(dir)) => {
            write_file(&dir.join(format!("{}.txt", artifact.id)), &render_text(artifact));
        }
        (Format::Json, Some(dir)) => {
            write_file(&dir.join(format!("{}.json", artifact.id)), &artifact.to_json());
        }
        (Format::Csv, Some(dir)) => {
            for (name, csv) in csv_sections(artifact) {
                write_file(&dir.join(format!("{}_{}.csv", artifact.id, name)), &csv);
            }
        }
    }
}

fn cmd_list() -> ExitCode {
    for e in registry() {
        println!("{:<22} {}", e.id(), e.description());
    }
    ExitCode::SUCCESS
}

fn cmd_run(opts: &Options) -> ExitCode {
    let ctx = context(opts);
    // Any sink flag (or an --out dir, which gets provenance sidecars)
    // turns the observability layer on. Artifact bytes are identical
    // either way: telemetry only ever reaches sidecar files.
    let observing = opts.trace.is_some() || opts.metrics.is_some() || opts.out.is_some();
    if observing {
        ntc_obs::enable();
    }
    if let Some(dir) = &opts.out {
        // Create the output directory (with parents) up front so a
        // long run never fails at write time.
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("cannot create output directory {}: {e}", dir.display());
            std::process::exit(1);
        });
    }
    for e in resolve(opts) {
        let started = Instant::now();
        let artifact = run_one(e.as_ref(), &ctx);
        let wall_ns = started.elapsed().as_nanos();
        emit(&artifact, opts.format, opts.out.as_deref());
        if let Some(dir) = &opts.out {
            let provenance = Provenance {
                experiment: artifact.id.clone(),
                seed: ctx.seed(),
                scale: ctx.scale().name().to_string(),
                version: ntc_obs::version(),
                threads: ctx.threads(),
                wall_ns,
                metrics: ntc_obs::metrics_snapshot(),
            };
            write_file(
                &dir.join(format!("{}.provenance.json", artifact.id)),
                &provenance.to_json(),
            );
            eprintln!("wrote {} ({})", dir.join(artifact.id.as_str()).display(), match opts.format {
                Format::Text => "text",
                Format::Csv => "csv",
                Format::Json => "json",
            });
        }
    }
    if observing {
        // Derive the headline cache gauge from the raw counters so the
        // metrics snapshot carries it ready-made.
        let snap = ntc_obs::metrics_snapshot();
        let hits = snap.counter("memcalc.cache.hit").unwrap_or(0);
        let misses = snap.counter("memcalc.cache.miss").unwrap_or(0);
        let total = hits + misses;
        #[allow(clippy::cast_precision_loss)]
        ntc_obs::gauge_set(
            "memcalc.cache.hit_rate",
            if total == 0 { 0.0 } else { hits as f64 / total as f64 },
        );
    }
    if let Some(path) = &opts.metrics {
        write_file(path, &ntc_obs::metrics_json(&ntc_obs::metrics_snapshot()));
        eprintln!("wrote metrics {}", path.display());
    }
    if let Some(path) = &opts.trace {
        write_file(path, &ntc_obs::chrome_trace(&ntc_obs::take_spans()));
        eprintln!("wrote trace {}", path.display());
    }
    ExitCode::SUCCESS
}

fn cmd_check(opts: &Options) -> ExitCode {
    let ctx = context(opts);
    let mut total = 0usize;
    let mut missed = 0usize;
    println!(
        "{:<22} {:<52} {:>14} {:>14}   verdict",
        "experiment", "anchor", "measured", "paper"
    );
    for e in resolve(opts) {
        let artifact = e.run(&ctx);
        for check in artifact.checks() {
            total += 1;
            let ok = check.passes();
            if !ok {
                missed += 1;
            }
            println!(
                "{:<22} {:<52} {:>14.6} {:>14.6}   {} ({})",
                artifact.id,
                check.label,
                check.measured,
                check.paper.paper,
                if ok { "ok" } else { "MISS" },
                check.paper.band,
            );
        }
    }
    println!("\n{} anchors checked, {} missed", total, missed);
    if missed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&parse_options(&args[1..])),
        Some("check") => cmd_check(&parse_options(&args[1..])),
        _ => usage(),
    }
}
