//! `repro` — the one CLI for every reproduction in the workspace.
//!
//! ```text
//! repro list [--verbose]                         # experiment ids (+anchors)
//! repro run fig8 table2 --format text            # render artifacts
//! repro run --all --format json --out artifacts/ # machine-readable dump
//! repro run --all --store st --resume            # resume from checkpoints
//! repro run --all --store st --shards 0..32      # worker: claim a range
//! repro check --all                              # verify paper anchors
//! repro diff baselines/quick --quick             # regression-diff a baseline
//! repro report --all --html report.html          # self-contained HTML report
//! repro optimize --frequency 290e3               # design-space autotuner
//! repro serve --port 0                           # HTTP/1.1 JSON query service
//! repro bench-serve --duration-secs 5            # open-loop serve load sweep
//! repro store stat --store st                    # store contents / gc
//! repro status --store st --watch 2              # live fleet progress table
//! ```
//!
//! `run` defaults to full paper-fidelity Monte-Carlo sizes (`--quick`
//! shrinks them for smoke runs); output is deterministic and
//! byte-identical across thread counts. `check` exits nonzero when any
//! artifact misses its paper band and ranks every anchor by its margin
//! to the band edge. `diff` re-runs the experiments found in a previous
//! `--out` directory and exits nonzero on any drift beyond tolerance.
//!
//! With `--store` (or `NTC_STORE`) every Monte-Carlo collective
//! checkpoints its shards into the content-addressed store, so a killed
//! run resumes where it left off, `--shards LO..HI` lets N worker
//! processes split the 64-shard space via lock-file claims, and
//! `--resume` serves already-published artifacts back byte-for-byte
//! without recomputing.
//!
//! Every store-backed run also publishes an integrity-hashed event
//! journal (`events/<worker>.jsonl`, heartbeat cadence `NTC_HEARTBEAT_MS`
//! ms, default 1000) that `repro status` aggregates into a per-worker
//! progress/liveness table — see DESIGN.md §18.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use ntc::artifact::diff::{diff_artifacts, Tolerance};
use ntc::artifact::{Artifact, Check};
use ntc::repro::{find_id, registry, run_one, ExperimentId, RunCtx, Scale};
use ntc::store::{ArtifactKey, Store};
use ntc_bench::report::{render_report, ReportMeta};
use ntc_bench::{csv_sections, render_csv, render_text};
use ntc_obs::Provenance;
use ntc_stats::exec::MC_SHARDS;

/// Output format of `repro run`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Csv,
    Json,
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  repro list [--verbose] [--store <dir>]\n  repro run <id...>|--all [--format text|csv|json] \
         [--out <dir>] [--trace <file>] [--metrics <file>] [--quick|--scale quick|paper] [--seed <n>]\n            \
         [--store <dir>] [--resume] [--shards <lo>..<hi>]\n  \
         repro check <id...>|--all [--quick] [--seed <n>]\n  \
         repro diff <baseline-dir> [<id...>] [--rtol <x>] [--quick] [--seed <n>]\n  \
         repro report <id...>|--all [--html <file>] [--quick] [--seed <n>]\n  \
         repro optimize --frequency <hz> [--paper] | --request <file>|-\n                 \
         [--seed <n>] [--restarts <n>] [--store <dir>] [--out <file>]\n  \
         repro serve [--addr <ip>] [--port <n>] [--workers <n>] [--queue <n>] \
         [--deadline-ms <n>] [--seed <n>] [--store <dir>] [--memo-cap <n>] [--access-log <file>]\n  \
         repro bench-serve [--rate <rps>] [--duration-secs <n>] [--connections <n>] \
         [--max-clients <n>] [--run-every <n>] [--workers <n>] [--queue <n>] [--out <file>]\n  \
         repro store stat|gc [--store <dir>]\n  \
         repro status [--store <dir>] [--watch <secs>] [--format text|json]\n\
         (--store defaults to the NTC_STORE environment variable when set)"
    );
    std::process::exit(2);
}

/// Parsed options shared by `run`/`check`/`diff`/`report`.
struct Options {
    ids: Vec<String>,
    all: bool,
    format: Format,
    out: Option<PathBuf>,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    html: Option<PathBuf>,
    quick: bool,
    seed: Option<u64>,
    rtol: Option<f64>,
    verbose: bool,
    store: Option<PathBuf>,
    resume: bool,
    shards: Option<(u32, u32)>,
    watch: Option<u64>,
}

/// Whether a subcommand needs an explicit experiment selection.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Selection {
    Required,
    Optional,
}

fn parse_options(args: &[String], selection: Selection) -> Options {
    let mut opts = Options {
        ids: Vec::new(),
        all: false,
        format: Format::Text,
        out: None,
        trace: None,
        metrics: None,
        html: None,
        quick: false,
        seed: None,
        rtol: None,
        verbose: false,
        store: None,
        resume: false,
        shards: None,
        watch: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => opts.all = true,
            "--quick" => opts.quick = true,
            "--resume" => opts.resume = true,
            "--verbose" => opts.verbose = true,
            "--scale" => match it.next().map(String::as_str) {
                Some("quick") => opts.quick = true,
                Some("paper") => opts.quick = false,
                _ => usage(),
            },
            "--store" => match it.next() {
                Some(dir) => opts.store = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--shards" => match it.next().and_then(|s| parse_shard_range(s)) {
                Some(range) => opts.shards = Some(range),
                None => usage(),
            },
            "--watch" => match it.next().and_then(|s| s.parse().ok()) {
                Some(secs) if secs > 0 => opts.watch = Some(secs),
                _ => usage(),
            },
            "--format" => {
                opts.format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("csv") => Format::Csv,
                    Some("json") => Format::Json,
                    _ => usage(),
                }
            }
            "--out" => match it.next() {
                Some(dir) => opts.out = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--trace" => match it.next() {
                Some(path) => opts.trace = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--metrics" => match it.next() {
                Some(path) => opts.metrics = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--html" => match it.next() {
                Some(path) => opts.html = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(seed) => opts.seed = Some(seed),
                None => usage(),
            },
            "--rtol" => match it.next().and_then(|s| s.parse().ok()) {
                Some(rtol) if rtol >= 0.0 => opts.rtol = Some(rtol),
                _ => usage(),
            },
            flag if flag.starts_with('-') => usage(),
            id => opts.ids.push(id.to_string()),
        }
    }
    if selection == Selection::Required && opts.all != opts.ids.is_empty() {
        // Either explicit ids or --all, not both and not neither.
        usage();
    }
    if selection == Selection::Optional && opts.all && !opts.ids.is_empty() {
        usage();
    }
    opts
}

/// Parses a worker shard claim, `"LO..HI"` over the fixed 64-shard
/// layout. Half-open, nonempty, within `0..=MC_SHARDS`.
fn parse_shard_range(s: &str) -> Option<(u32, u32)> {
    let (lo, hi) = s.split_once("..")?;
    let lo: u32 = lo.trim().parse().ok()?;
    let hi: u32 = hi.trim().parse().ok()?;
    (lo < hi && hi as usize <= MC_SHARDS).then_some((lo, hi))
}

/// Opens the store named by `--store` or the `NTC_STORE` environment
/// variable, if either is present. Exits on an unusable root.
fn open_store(opts: &Options) -> Option<Store> {
    let root = opts
        .store
        .clone()
        .or_else(|| std::env::var("NTC_STORE").ok().filter(|s| !s.is_empty()).map(PathBuf::from))?;
    match Store::open(&root) {
        Ok(store) => Some(store),
        Err(e) => {
            eprintln!("cannot open store {}: {e}", root.display());
            std::process::exit(1);
        }
    }
}

fn context(opts: &Options) -> RunCtx {
    let mut builder = RunCtx::builder();
    if opts.quick {
        builder = builder.quick();
    }
    if let Some(seed) = opts.seed {
        builder = builder.seed(seed);
    }
    builder.build()
}

/// Resolves the requested experiments, exiting on unknown ids. The
/// typed-id parse error already enumerates every registered id, so the
/// operator sees the valid vocabulary, not just a rejection.
fn resolve(opts: &Options) -> Vec<Box<dyn ntc::repro::Experiment>> {
    if opts.all {
        return registry();
    }
    opts.ids
        .iter()
        .map(|id| match id.parse::<ExperimentId>() {
            Ok(id) => find_id(id),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        })
        .collect()
}

fn write_file(path: &Path, contents: &str) {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).unwrap_or_else(|e| {
            eprintln!("cannot create {}: {e}", parent.display());
            std::process::exit(1);
        });
    }
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
}

fn emit(artifact: &Artifact, format: Format, out: Option<&Path>) {
    match (format, out) {
        (Format::Text, None) => print!("{}", render_text(artifact)),
        (Format::Csv, None) => print!("{}", render_csv(artifact)),
        (Format::Json, None) => print!("{}", artifact.to_json()),
        (Format::Text, Some(dir)) => {
            write_file(&dir.join(format!("{}.txt", artifact.id)), &render_text(artifact));
        }
        (Format::Json, Some(dir)) => {
            write_file(&dir.join(format!("{}.json", artifact.id)), &artifact.to_json());
        }
        (Format::Csv, Some(dir)) => {
            for (name, csv) in csv_sections(artifact) {
                write_file(&dir.join(format!("{}_{}.csv", artifact.id, name)), &csv);
            }
        }
    }
}

/// What the store holds for one experiment at `seed`: which scales have
/// a published artifact, or how many shard checkpoints are banked.
fn store_status(store: &Store, id: &str, seed: u64) -> String {
    let mut cached: Vec<&str> = Vec::new();
    for scale in [Scale::Paper, Scale::Quick] {
        if store.has_artifact(&ArtifactKey::new(id, scale, seed)) {
            cached.push(scale.name());
        }
    }
    if !cached.is_empty() {
        return format!("cached({})", cached.join(","));
    }
    match store.checkpoint_count(id) {
        0 => "absent".to_string(),
        n => format!("ckpt({n})"),
    }
}

fn cmd_list(opts: &Options) -> ExitCode {
    if !opts.verbose {
        for e in registry() {
            println!("{:<22} {}", e.id(), e.description());
        }
        return ExitCode::SUCCESS;
    }
    // Anchor counts come from an actual (quick-scale) run: the registry
    // is the single source of truth, so nothing here can go stale.
    let ctx = RunCtx::quick();
    let store = open_store(opts);
    let seed = opts.seed.unwrap_or_else(|| ctx.seed());
    match &store {
        Some(_) => println!(
            "{:<22} {:<26} {:>7}  {:<16} description",
            "experiment", "paper ref", "anchors", "store"
        ),
        None => println!("{:<22} {:<26} {:>7}  description", "experiment", "paper ref", "anchors"),
    }
    for e in registry() {
        let anchors = e.run(&ctx).checks().len();
        match &store {
            Some(store) => println!(
                "{:<22} {:<26} {:>7}  {:<16} {}",
                e.id(),
                e.paper_ref(),
                anchors,
                store_status(store, &e.id().to_string(), seed),
                e.description()
            ),
            None => println!(
                "{:<22} {:<26} {:>7}  {}",
                e.id(),
                e.paper_ref(),
                anchors,
                e.description()
            ),
        }
    }
    if let Some(store) = &store {
        println!("\nstore {}: {}", store.root().display(), store.stat().summary());
    }
    ExitCode::SUCCESS
}

/// Emits an artifact served straight from the store. JSON output reuses
/// the **stored bytes** (byte-identity is the contract, not a re-render);
/// text/CSV render from the parsed artifact.
fn emit_cached(artifact: &Artifact, json: &str, format: Format, out: Option<&Path>) {
    match (format, out) {
        (Format::Json, None) => print!("{json}"),
        (Format::Json, Some(dir)) => {
            write_file(&dir.join(format!("{}.json", artifact.id)), json);
        }
        _ => emit(artifact, format, out),
    }
}

fn cmd_run(opts: &Options) -> ExitCode {
    let ctx = context(opts);
    // Any sink flag (or an --out dir, which gets provenance sidecars)
    // turns the observability layer on. Artifact bytes are identical
    // either way: telemetry only ever reaches sidecar files.
    let observing = opts.trace.is_some() || opts.metrics.is_some() || opts.out.is_some();
    if observing {
        ntc_obs::enable();
    }
    let store = open_store(opts);
    // Store-backed runs publish heartbeat journals fed by the progress
    // tracker, which (like all telemetry) only collects while the obs
    // layer is on. Artifact bytes are unaffected by contract.
    if store.is_some() {
        ntc_obs::enable();
    }
    if (opts.resume || opts.shards.is_some()) && store.is_none() {
        eprintln!("--resume/--shards need a store: pass --store <dir> or set NTC_STORE");
        std::process::exit(2);
    }
    // Worker mode claims its shard range up front; overlapping claims
    // (another live worker, or a stale lock from a killed one) refuse
    // loudly rather than duplicating or corrupting work.
    let claim = match (&store, opts.shards) {
        (Some(store), Some((lo, hi))) => match store.claim_shards(lo, hi) {
            Ok(claim) => Some(claim),
            Err(e) => {
                eprintln!("cannot claim shards {lo}..{hi}: {e}");
                std::process::exit(1);
            }
        },
        _ => None,
    };
    // Every store-backed run keeps an event journal in the store
    // (`events/<worker>.jsonl`): claims, shard lifecycle, heartbeats.
    // The journal decorates the checkpoint sink; disk flushes happen on
    // the heartbeat ticker, never on the compute path.
    let journal = store.as_ref().map(|store| {
        let (lo, hi) = opts.shards.unwrap_or((0, u32::try_from(MC_SHARDS).unwrap_or(u32::MAX)));
        let flush_ms = std::env::var("NTC_HEARTBEAT_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&ms| ms > 0)
            .unwrap_or(ntc::journal::DEFAULT_FLUSH_MS);
        ntc::journal::Journal::new(store, lo, hi, flush_ms)
    });
    if let (Some(store), Some(journal)) = (&store, &journal) {
        ntc_stats::ckpt::install(Arc::new(ntc::journal::JournalSink::new(
            store.sink(opts.shards),
            Arc::clone(journal),
        )));
    }
    let heartbeat = journal.as_ref().map(|j| ntc::journal::Heartbeat::start(Arc::clone(j)));
    if let Some(dir) = &opts.out {
        // Create the output directory (with parents) up front so a
        // long run never fails at write time.
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("cannot create output directory {}: {e}", dir.display());
            std::process::exit(1);
        });
    }
    let mut partial = 0usize;
    for e in resolve(opts) {
        let id = e.id().to_string();
        // Checkpoints are scoped per experiment so `repro list --verbose`
        // can attribute them and two experiments sharing a kernel+params
        // never cross-pollinate.
        ntc_stats::ckpt::set_scope(&id);
        let key = ArtifactKey::new(&id, ctx.scale(), ctx.seed());
        if opts.resume && opts.shards.is_none() {
            if let Some(json) = store.as_ref().and_then(|s| s.get_artifact(&key)) {
                if let Ok(artifact) = Artifact::from_json(&json) {
                    emit_cached(&artifact, &json, opts.format, opts.out.as_deref());
                    eprintln!("{id}: served from store ({})", key.file_name());
                    continue;
                }
            }
        }
        let started = Instant::now();
        ntc_stats::ckpt::take_missing();
        let artifact = run_one(e.as_ref(), &ctx);
        let wall_ns = started.elapsed().as_nanos();
        let missing = ntc_stats::ckpt::take_missing();
        if let Some(claim) = &claim {
            // Worker mode: the artifact folded identity values for every
            // unclaimed shard, so it is deliberately discarded — only the
            // checkpoints this worker owns are the product.
            eprintln!(
                "worker {}..{}: {id} checkpointed ({missing} shard results outside claim)",
                claim.lo, claim.hi
            );
            continue;
        }
        if missing > 0 {
            // Unreachable without a range-restricted sink, but never
            // publish or emit a partial artifact if it does happen.
            eprintln!("{id}: PARTIAL result ({missing} shards missing) — discarded");
            partial += 1;
            continue;
        }
        emit(&artifact, opts.format, opts.out.as_deref());
        if let Some(store) = &store {
            if let Err(e) = store.put_artifact(&key, &artifact.to_json()) {
                eprintln!("warning: could not publish {id} to store: {e}");
            }
        }
        if let Some(dir) = &opts.out {
            let provenance = Provenance {
                experiment: artifact.id.clone(),
                seed: ctx.seed(),
                scale: ctx.scale().name().to_string(),
                version: ntc_obs::version(),
                threads: ctx.threads(),
                wall_ns,
                metrics: ntc_obs::metrics_snapshot(),
            };
            write_file(
                &dir.join(format!("{}.provenance.json", artifact.id)),
                &provenance.to_json(),
            );
            eprintln!("wrote {} ({})", dir.join(artifact.id.as_str()).display(), match opts.format {
                Format::Text => "text",
                Format::Csv => "csv",
                Format::Json => "json",
            });
        }
    }
    if observing {
        // Derive the headline cache gauge from the raw counters so the
        // metrics snapshot carries it ready-made.
        let snap = ntc_obs::metrics_snapshot();
        let hits = snap.counter("memcalc.cache.hit").unwrap_or(0);
        let misses = snap.counter("memcalc.cache.miss").unwrap_or(0);
        let total = hits + misses;
        #[allow(clippy::cast_precision_loss)]
        ntc_obs::gauge_set(
            "memcalc.cache.hit_rate",
            if total == 0 { 0.0 } else { hits as f64 / total as f64 },
        );
    }
    if let Some(path) = &opts.metrics {
        write_file(path, &ntc_obs::metrics_json(&ntc_obs::metrics_snapshot()));
        eprintln!("wrote metrics {}", path.display());
    }
    if let Some(path) = &opts.trace {
        write_file(path, &ntc_obs::chrome_trace(&ntc_obs::take_spans()));
        eprintln!("wrote trace {}", path.display());
    }
    ntc_stats::ckpt::set_scope("");
    if let Some(hb) = heartbeat {
        hb.stop();
    }
    if let Some(j) = &journal {
        // Terminal `done` marker: `repro status` distinguishes a
        // finished worker from a stalled one by this event, not by
        // journal age.
        j.done();
    }
    if store.is_some() {
        ntc_stats::ckpt::uninstall();
    }
    drop(claim);
    if partial > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_check(opts: &Options) -> ExitCode {
    let ctx = context(opts);
    let mut checks: Vec<Check> = Vec::new();
    for e in resolve(opts) {
        checks.extend(e.run(&ctx).checks());
    }
    println!(
        "{:<22} {:<52} {:>14} {:>14} {:>10}   verdict",
        "experiment", "anchor", "measured", "paper", "margin"
    );
    for check in &checks {
        println!(
            "{:<22} {:<52} {:>14.6} {:>14.6} {:>10}   {} ({})",
            check.artifact,
            check.label,
            check.measured,
            check.paper.paper,
            check.margin_display(),
            if !check.passes() {
                "MISS"
            } else if check.at_risk() {
                "ok (AT RISK)"
            } else {
                "ok"
            },
            check.paper.band,
        );
    }

    // Ranked margin table: every finite-margin anchor, closest to its
    // band edge first, so drift shows up here before it becomes a MISS.
    let mut ranked: Vec<&Check> = checks.iter().filter(|c| c.margin().is_finite()).collect();
    ranked.sort_by(|a, b| {
        a.margin()
            .partial_cmp(&b.margin())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.artifact.cmp(&b.artifact))
            .then_with(|| a.label.cmp(&b.label))
    });
    println!("\nsmallest margins (distance to band edge, normalized):");
    for check in ranked.iter().take(10) {
        println!(
            "  {:>10}  {:<22} {}{}",
            check.margin_display(),
            check.artifact,
            check.label,
            if !check.passes() {
                "  [MISS]"
            } else if check.at_risk() {
                "  [AT RISK]"
            } else {
                ""
            },
        );
    }

    let missed = checks.iter().filter(|c| !c.passes()).count();
    let at_risk = checks.iter().filter(|c| c.at_risk()).count();
    println!("\n{} anchors checked, {} missed, {} at risk", checks.len(), missed, at_risk);
    if missed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Loads every artifact JSON in a baseline directory (ignoring
/// provenance sidecars and non-JSON files), sorted by experiment id.
fn load_baseline(dir: &Path) -> Vec<Artifact> {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| {
        eprintln!("cannot read baseline directory {}: {e}", dir.display());
        std::process::exit(2);
    });
    let mut artifacts = Vec::new();
    for entry in entries {
        let path = entry.expect("directory entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.ends_with(".json") || name.ends_with(".provenance.json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(2);
        });
        match Artifact::from_json(&text) {
            Ok(artifact) => artifacts.push(artifact),
            Err(e) => {
                eprintln!("{} is not an artifact: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if artifacts.is_empty() {
        eprintln!("no artifact JSON files in {}", dir.display());
        std::process::exit(2);
    }
    artifacts.sort_by(|a, b| a.id.cmp(&b.id));
    artifacts
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let Some((dir, rest)) = args.split_first() else { usage() };
    let opts = parse_options(rest, Selection::Optional);
    let baseline = load_baseline(Path::new(dir));
    let tol = Tolerance::rel(opts.rtol.unwrap_or(Tolerance::default().rtol));
    let ctx = context(&opts);
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for old in &baseline {
        if !opts.ids.is_empty() && !opts.ids.contains(&old.id) {
            continue;
        }
        let Ok(e) = old.id.parse::<ExperimentId>().map(find_id) else {
            println!("[structure] {}: experiment no longer registered", old.id);
            regressions += 1;
            continue;
        };
        compared += 1;
        let new = run_one(e.as_ref(), &ctx);
        let diff = diff_artifacts(old, &new, tol);
        if diff.is_clean() {
            println!("{:<22} ok", old.id);
        } else {
            println!("{:<22} {} difference(s)", old.id, diff.entries.len());
            for entry in &diff.entries {
                println!("  {entry}");
            }
            regressions += diff.entries.len();
        }
    }
    if compared == 0 && regressions == 0 {
        eprintln!("no baseline artifact matched the requested ids");
        return ExitCode::from(2);
    }
    println!(
        "\n{} artifact(s) compared against {}, {} difference(s) (rtol {})",
        compared,
        dir,
        regressions,
        tol.rtol
    );
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_report(opts: &Options) -> ExitCode {
    // The report carries convergence/fit diagnostics, which only exist
    // while the observability layer is up.
    ntc_obs::enable();
    let ctx = context(opts);
    let artifacts: Vec<Artifact> =
        resolve(opts).iter().map(|e| run_one(e.as_ref(), &ctx)).collect();
    let meta = ReportMeta {
        version: ntc_obs::version(),
        seed: ctx.seed(),
        scale: ctx.scale().name().to_string(),
        threads: ctx.threads(),
    };
    let html = render_report(&artifacts, &meta, &ntc_obs::metrics_snapshot());
    match &opts.html {
        Some(path) => {
            write_file(path, &html);
            eprintln!("wrote report {}", path.display());
        }
        None => print!("{html}"),
    }
    ExitCode::SUCCESS
}

/// `repro optimize` — the design-space autotuner from the command
/// line. The same typed [`ntc::api::OptimizeRequest`] the server
/// parses, the same [`ntc::optimize::optimize`] search, the same
/// [`ntc::api::OptimizeResponse::to_json`] bytes on the way out — so
/// a CLI answer and a `POST /v1/optimize` answer for one request are
/// byte-identical, and a `--store` shared with a server shares its
/// memoized results both ways (same `optimize-{hash}` key).
fn cmd_optimize(args: &[String]) -> ExitCode {
    use ntc::api::{OptimizeRequest, OptimizeResponse};

    let mut request_path: Option<String> = None;
    let mut frequency: Option<f64> = None;
    let mut seed: Option<u64> = None;
    let mut restarts: Option<u32> = None;
    let mut store_root: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--request" => match it.next() {
                Some(path) => request_path = Some(path.clone()),
                None => usage(),
            },
            "--frequency" => match it.next().and_then(|s| s.parse().ok()) {
                Some(f) if f > 0.0 => frequency = Some(f),
                _ => usage(),
            },
            // The paper design space is already the default whenever the
            // request is built from --frequency; the flag documents intent.
            "--paper" => {}
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = Some(s),
                None => usage(),
            },
            "--restarts" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if (1..=64).contains(&n) => restarts = Some(n),
                _ => usage(),
            },
            "--store" => match it.next() {
                Some(dir) => store_root = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--out" => match it.next() {
                Some(file) => out = Some(PathBuf::from(file)),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let mut req = match (&request_path, frequency) {
        (Some(_), Some(_)) => {
            eprintln!("--request and --frequency are mutually exclusive");
            std::process::exit(2);
        }
        (Some(path), None) => {
            let text = if path == "-" {
                use std::io::Read as _;
                let mut buf = String::new();
                if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                    eprintln!("cannot read request from stdin: {e}");
                    std::process::exit(2);
                }
                buf
            } else {
                std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read request {path}: {e}");
                    std::process::exit(2);
                })
            };
            match OptimizeRequest::from_json(&text) {
                Ok(req) => req,
                Err(e) => {
                    eprintln!("invalid optimize request: {e}");
                    std::process::exit(2);
                }
            }
        }
        (None, Some(f)) => OptimizeRequest::paper(f),
        (None, None) => {
            eprintln!("optimize needs --frequency <hz> or --request <file>|-");
            std::process::exit(2);
        }
    };
    if let Some(s) = seed {
        req.seed = s;
    }
    if let Some(n) = restarts {
        req.restarts = n;
    }
    // Overrides change the canonical rendering, so re-canonicalize
    // before hashing: the request hash is the memoization key the
    // server shares.
    req.canonicalize();

    let store = match &store_root {
        Some(root) => match Store::open(root) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("cannot open store {}: {e}", root.display());
                std::process::exit(1);
            }
        },
        None => std::env::var("NTC_STORE")
            .ok()
            .filter(|s| !s.is_empty())
            .map(|root| match Store::open(Path::new(&root)) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("cannot open store {root}: {e}");
                    std::process::exit(1);
                }
            }),
    };
    // The optimizer emits spans/counters; they only reach sidecars and
    // stores, never the response bytes.
    ntc_obs::enable();

    let hex = req.request_hash_hex();
    let key = ArtifactKey::new(&format!("optimize-{hex}"), Scale::Quick, req.seed);
    let cached = store.as_ref().and_then(|s| s.get_artifact(&key)).filter(|body| {
        OptimizeResponse::from_json(body).is_ok_and(|r| r.request_hash == hex)
    });
    let body = match cached {
        Some(body) => {
            eprintln!("optimize: served from store ({})", key.file_name());
            body
        }
        None => {
            let body = ntc::optimize::optimize(&req).to_json();
            if let Some(store) = &store {
                if let Err(e) = store.put_artifact(&key, &body) {
                    eprintln!("warning: could not publish to store: {e}");
                }
            }
            body
        }
    };
    match &out {
        Some(path) => {
            write_file(path, &body);
            eprintln!("wrote {}", path.display());
        }
        None => print!("{body}"),
    }
    let resp = OptimizeResponse::from_json(&body).expect("optimizer response parses");
    if resp.feasible {
        ExitCode::SUCCESS
    } else {
        eprintln!("optimize: no feasible design in the requested space");
        ExitCode::FAILURE
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut config = ntc_serve::ServeConfig::default();
    let mut ip = "127.0.0.1".to_string();
    let mut port: u16 = 7878;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => ip = a.clone(),
                None => usage(),
            },
            "--port" => match it.next().and_then(|s| s.parse().ok()) {
                Some(p) => port = p,
                None => usage(),
            },
            "--workers" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => config.workers = n,
                _ => usage(),
            },
            "--queue" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => config.queue_capacity = n,
                _ => usage(),
            },
            "--deadline-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(ms) if ms > 0 => {
                    config.deadline = std::time::Duration::from_millis(ms);
                }
                _ => usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(seed) => config.seed = seed,
                None => usage(),
            },
            "--store" => match it.next() {
                Some(dir) => config.store = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--memo-cap" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => config.memo_cap = n,
                None => usage(),
            },
            "--access-log" => match it.next() {
                Some(file) => config.access_log = Some(PathBuf::from(file)),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if config.store.is_none() {
        if let Ok(root) = std::env::var("NTC_STORE") {
            if !root.is_empty() {
                config.store = Some(PathBuf::from(root));
            }
        }
    }
    config.addr = format!("{ip}:{port}");
    // The service publishes /metrics, so the layer is always on here;
    // artifact bytes are unaffected by contract.
    ntc_obs::enable();
    ntc_serve::signal::install();
    match ntc_serve::Server::bind(config) {
        Ok(server) => {
            // Machine-readable first line: scripts parse the resolved
            // port from here when started with --port 0.
            println!("listening on http://{}", server.addr());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            server.join();
            eprintln!("shutdown complete");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot bind {ip}:{port}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One quantile, rendered for the bench JSON (`null` when empty).
fn q_json(latency: &ntc_obs::HistogramSnapshot, q: f64) -> String {
    match latency.quantile(q) {
        Some(v) => format!("{v:.4}"),
        None => "null".to_string(),
    }
}

fn cmd_bench_serve(args: &[String]) -> ExitCode {
    let mut config = ntc_serve::ServeConfig::default();
    let mut load = ntc_bench::loadgen::LoadConfig::default();
    let mut rate: Option<f64> = None;
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rate" => match it.next().and_then(|s| s.parse().ok()) {
                Some(r) if r > 0.0 => rate = Some(r),
                _ => usage(),
            },
            "--duration-secs" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) if s > 0 => load.duration = std::time::Duration::from_secs(s),
                _ => usage(),
            },
            "--connections" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => load.connections = n,
                _ => usage(),
            },
            "--max-clients" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => load.max_clients = n,
                _ => usage(),
            },
            "--run-every" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => load.run_every = n,
                None => usage(),
            },
            "--workers" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => config.workers = n,
                _ => usage(),
            },
            "--queue" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => config.queue_capacity = n,
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(file) => out = PathBuf::from(file),
                None => usage(),
            },
            _ => usage(),
        }
    }

    // Spawn the server in-process on an OS-assigned port: same code
    // path as `repro serve`, no subprocess management, and the metrics
    // registry is still reachable over HTTP only — the generator reads
    // /metrics like any external scraper would.
    ntc_obs::enable();
    config.addr = "127.0.0.1:0".to_string();
    let server = match ntc_serve::Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind loopback server: {e}");
            return ExitCode::FAILURE;
        }
    };
    load.addr = server.addr();
    eprintln!("bench-serve: server on http://{}", load.addr);

    // Warm the /run memo and the query models once so the sweep
    // measures steady state, not first-touch compute.
    for i in [0u64, 1, 2, 3] {
        let (method, target, body) = ntc_bench::loadgen::request_for(i, 1.max(load.run_every));
        let _ = bench_http(load.addr, method, target, &body);
    }

    // Closed-loop capacity probe, then an open-loop sweep up to 10x.
    let capacity = ntc_bench::loadgen::measure_capacity(
        load.addr,
        load.connections,
        std::time::Duration::from_secs(1),
        load.timeout,
    );
    eprintln!("bench-serve: measured capacity {capacity:.0} req/s");
    let factors: Vec<f64> = match rate {
        Some(_) => vec![1.0],
        None => vec![0.25, 0.5, 1.0, 2.0, 10.0],
    };

    let mut sweep_rows = Vec::new();
    let mut sustained: f64 = 0.0;
    let mut all_clean = true;
    for &factor in &factors {
        load.rate = rate.unwrap_or_else(|| (capacity * factor).max(1.0));
        let report = ntc_bench::loadgen::run_open_loop(&load);
        eprintln!(
            "bench-serve: x{factor} target {:.0} req/s -> {:.0} ok/s, {} x503, {} errors, {} saturated, p999 {} ms",
            load.rate,
            report.achieved_rps(),
            report.rejected_503,
            report.http_errors + report.transport_errors,
            report.saturated,
            q_json(&report.latency, 0.999),
        );
        if report.clean() {
            sustained = sustained.max(report.achieved_rps());
        }
        all_clean &= report.clean();
        #[allow(clippy::cast_precision_loss)]
        let err_rate = (report.http_errors + report.transport_errors) as f64
            / (report.offered.max(1)) as f64;
        #[allow(clippy::cast_precision_loss)]
        let reject_rate = report.rejected_503 as f64 / (report.offered.max(1)) as f64;
        sweep_rows.push(format!(
            "{{\"factor\":{factor},\"target_rps\":{:.2},\"offered\":{},\"ok\":{},\
             \"rejected_503\":{},\"http_errors\":{},\"transport_errors\":{},\"saturated\":{},\
             \"achieved_rps\":{:.2},\"error_rate\":{err_rate:.6},\"reject_rate\":{reject_rate:.6},\
             \"p50_ms\":{},\"p90_ms\":{},\"p99_ms\":{},\"p999_ms\":{}}}",
            load.rate,
            report.offered,
            report.ok,
            report.rejected_503,
            report.http_errors,
            report.transport_errors,
            report.saturated,
            report.achieved_rps(),
            q_json(&report.latency, 0.5),
            q_json(&report.latency, 0.9),
            q_json(&report.latency, 0.99),
            q_json(&report.latency, 0.999),
        ));
    }

    // Cache effectiveness, read from /metrics like any other scraper.
    let metrics = bench_http(load.addr, "GET", "/metrics", "").unwrap_or_default().1;
    let parsed = ntc::artifact::json::parse(&metrics).ok();
    let counter = |name: &str| -> f64 {
        parsed
            .as_ref()
            .and_then(|v| v.get(name))
            .and_then(|m| m.get("value"))
            .and_then(ntc::artifact::json::JsonValue::as_num)
            .unwrap_or(0.0)
    };
    let store_lookups = counter("store.hit") + counter("store.miss");
    let store_hit_rate =
        if store_lookups > 0.0 { counter("store.hit") / store_lookups } else { 0.0 };
    let runs = counter("serve.run.memo_hit") + counter("serve.run.computed");
    let memo_hit_rate = if runs > 0.0 { counter("serve.run.memo_hit") / runs } else { 0.0 };

    let json = format!(
        "{{\"schema\":\"ntc.bench.serve.v1\",\"connections\":{},\"max_clients\":{},\
         \"duration_secs\":{},\
         \"run_every\":{},\"capacity_rps\":{capacity:.2},\"sustained_rps\":{sustained:.2},\
         \"cache\":{{\"query_hit_rate\":{:.4},\"run_memo_hit_rate\":{memo_hit_rate:.4},\
         \"store_hit_rate\":{store_hit_rate:.4}}},\"sweep\":[{}]}}\n",
        load.connections,
        load.max_clients,
        load.duration.as_secs(),
        load.run_every,
        counter("serve.cache.hit_rate"),
        sweep_rows.join(","),
    );
    write_file(&out, &json);
    eprintln!("wrote {}", out.display());

    server.shutdown();
    if all_clean {
        ExitCode::SUCCESS
    } else {
        eprintln!("bench-serve: non-503 failures observed — failing");
        ExitCode::FAILURE
    }
}

/// One scripted request from the bench harness (status, body).
fn bench_http(
    addr: std::net::SocketAddr,
    method: &str,
    target: &str,
    body: &str,
) -> Option<(u16, String)> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(60))).ok()?;
    let raw = format!(
        "{method} {target} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).ok()?;
    let mut text = String::new();
    stream.read_to_string(&mut text).ok()?;
    let status = text.split(' ').nth(1).and_then(|s| s.parse().ok())?;
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Some((status, body))
}

fn cmd_store(args: &[String]) -> ExitCode {
    let Some((action, rest)) = args.split_first() else { usage() };
    let opts = parse_options(rest, Selection::Optional);
    let Some(store) = open_store(&opts) else {
        eprintln!("no store: pass --store <dir> or set NTC_STORE");
        std::process::exit(2);
    };
    match action.as_str() {
        "stat" => {
            println!("store {}", store.root().display());
            println!("version {}", ntc::store::store_version());
            // Ages come from file mtimes: "newest" is the most recent
            // write (how fresh the store is), "oldest" the first.
            let age = |a: Option<u64>| a.map_or_else(|| "-".to_string(), |s| format!("{s}s"));
            for row in store.age_summary() {
                // The on-disk subtree is `events/`; the operator-facing
                // name for its contents is worker journals.
                let label = if row.kind == "events" { "journals" } else { row.kind };
                println!(
                    "{label} {} bytes {} ({}) newest {} oldest {}",
                    row.count,
                    row.bytes,
                    ntc::store::human_bytes(row.bytes),
                    age(row.newest_secs),
                    age(row.oldest_secs),
                );
            }
            ExitCode::SUCCESS
        }
        "gc" => match store.gc() {
            Ok(removed) => {
                println!("removed: {}", removed.summary());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gc failed: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}

/// Renders `null` for a missing ETA, seconds (3 decimals) otherwise.
fn eta_json(eta: Option<f64>) -> String {
    eta.map_or_else(|| "null".to_string(), |e| format!("{e:.3}"))
}

/// One `ntc.status.v1` JSON document: per-worker rows plus the merged
/// fleet view and store-wide claim/checkpoint state.
fn render_status_json(store: &Store, fleet: &ntc::journal::FleetStatus, now_ms: u64) -> String {
    let workers: Vec<String> = fleet
        .workers
        .iter()
        .map(|w| {
            format!(
                "{{\"worker\":\"{}\",\"pid\":{},\"lo\":{},\"hi\":{},\"state\":\"{}\",\
                 \"flush_ms\":{},\"shards_done\":{},\"shards_total\":{},\"trials_done\":{},\
                 \"trials_total\":{},\"restored\":{},\"computed\":{},\"samples_per_sec\":{:.3},\
                 \"eta_secs\":{},\"heartbeat_age_ms\":{},\"checkpoint_age_ms\":{},\
                 \"events\":{},\"corrupt_lines\":{},\"done\":{}}}",
                w.worker,
                w.pid,
                w.lo,
                w.hi,
                w.state(now_ms).name(),
                w.flush_ms,
                w.progress.shards_done,
                w.progress.shards_total,
                w.progress.trials_done,
                w.progress.trials_total,
                w.progress.restored,
                w.progress.computed,
                w.progress.samples_per_sec,
                eta_json(w.eta_secs()),
                w.heartbeat_age_ms(now_ms),
                w.checkpoint_age_ms(now_ms)
                    .map_or_else(|| "null".to_string(), |a| a.to_string()),
                w.events,
                w.corrupt_lines,
                w.done,
            )
        })
        .collect();
    let claims: Vec<String> =
        fleet.claims.iter().map(|(lo, hi)| format!("[{lo},{hi}]")).collect();
    let merged = fleet.merged();
    let fleet_eta = if fleet.workers.iter().all(|w| w.done) {
        Some(0.0)
    } else {
        merged.eta_secs()
    };
    format!(
        "{{\"schema\":\"ntc.status.v1\",\"store\":\"{}\",\"now_ms\":{now_ms},\
         \"workers\":[{}],\"claims\":[{}],\"checkpoints\":{},\"checkpoint_bytes\":{},\
         \"fleet\":{{\"shards_done\":{},\"shards_total\":{},\"trials_done\":{},\
         \"trials_total\":{},\"samples_per_sec\":{:.3},\"eta_secs\":{},\"stalled\":{}}}}}\n",
        store.root().display(),
        workers.join(","),
        claims.join(","),
        fleet.checkpoints,
        fleet.checkpoint_bytes,
        merged.shards_done,
        merged.shards_total,
        merged.trials_done,
        merged.trials_total,
        merged.samples_per_sec,
        eta_json(fleet_eta),
        fleet.stalled(now_ms),
    )
}

/// The human table behind `repro status` (and `--watch`).
fn render_status_text(store: &Store, fleet: &ntc::journal::FleetStatus, now_ms: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "store {} — {} worker(s), {} stalled\n",
        store.root().display(),
        fleet.workers.len(),
        fleet.stalled(now_ms)
    ));
    out.push_str(&format!(
        "{:<20} {:<9} {:>11} {:>21} {:>12} {:>9} {:>9} {:>10}  state\n",
        "worker", "shards", "done/total", "trials done/total", "samples/s", "ckpt age", "hb age", "eta"
    ));
    for w in &fleet.workers {
        let eta = w
            .eta_secs()
            .map_or_else(|| "-".to_string(), |e| format!("{e:.1}s"));
        let ckpt_age = w
            .checkpoint_age_ms(now_ms)
            .map_or_else(|| "-".to_string(), |a| format!("{:.1}s", a as f64 / 1e3));
        out.push_str(&format!(
            "{:<20} {:<9} {:>11} {:>21} {:>12.1} {:>9} {:>9} {:>10}  {}\n",
            w.worker,
            format!("{}..{}", w.lo, w.hi),
            format!("{}/{}", w.progress.shards_done, w.progress.shards_total),
            format!("{}/{}", w.progress.trials_done, w.progress.trials_total),
            w.progress.samples_per_sec,
            ckpt_age,
            format!("{:.1}s", w.heartbeat_age_ms(now_ms) as f64 / 1e3),
            eta,
            w.state(now_ms).name(),
        ));
    }
    let merged = fleet.merged();
    let claims: Vec<String> =
        fleet.claims.iter().map(|(lo, hi)| format!("{lo}..{hi}")).collect();
    out.push_str(&format!(
        "fleet: {}/{} shards, {}/{} trials, {:.1} samples/s; {} checkpoints ({}); claims: {}\n",
        merged.shards_done,
        merged.shards_total,
        merged.trials_done,
        merged.trials_total,
        merged.samples_per_sec,
        fleet.checkpoints,
        ntc::store::human_bytes(fleet.checkpoint_bytes),
        if claims.is_empty() { "none".to_string() } else { claims.join(", ") },
    ));
    out
}

fn cmd_status(args: &[String]) -> ExitCode {
    let opts = parse_options(args, Selection::Optional);
    if opts.format == Format::Csv || !opts.ids.is_empty() {
        usage();
    }
    let Some(store) = open_store(&opts) else {
        eprintln!("no store: pass --store <dir> or set NTC_STORE");
        std::process::exit(2);
    };
    loop {
        let fleet = ntc::journal::fleet_status(&store);
        let now_ms = ntc::journal::now_ms();
        match opts.format {
            Format::Json => print!("{}", render_status_json(&store, &fleet, now_ms)),
            _ => print!("{}", render_status_text(&store, &fleet, now_ms)),
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        match opts.watch {
            Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
            None => break,
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(&parse_options(&args[1..], Selection::Optional)),
        Some("run") => cmd_run(&parse_options(&args[1..], Selection::Required)),
        Some("check") => cmd_check(&parse_options(&args[1..], Selection::Required)),
        Some("diff") => cmd_diff(&args[1..]),
        Some("report") => cmd_report(&parse_options(&args[1..], Selection::Required)),
        Some("optimize") => cmd_optimize(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench-serve") => cmd_bench_serve(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        _ => usage(),
    }
}
