//! Figure 3: minimal retention voltage vs. memory location for one
//! instance of the commercial IP (left) and the cell-based memory
//! (right), rendered as failure maps at stepped supplies.

use ntc_sram::diemap::{DieMap, DieMapConfig};
use ntc_sram::failure::RetentionLaw;
use ntc_stats::rng::Source;

fn main() {
    println!("Figure 3 — minimal retention voltage vs location (1k x 32b)");
    let instances = [
        ("commercial memory IP", RetentionLaw::commercial_40nm(), 11u64),
        ("cell-based memory", RetentionLaw::cell_based_40nm(), 12u64),
    ];
    for (name, law, seed) in instances {
        let cfg = DieMapConfig::new(128, 256, law);
        let die = DieMap::synthesize(&cfg, &mut Source::seeded(seed));
        println!("\n=== {name} ===");
        println!(
            "retention voltage: mean {:.3} V, sigma {:.1} mV, worst bit {:.3} V",
            law.mean(),
            law.sigma() * 1000.0,
            die.min_retention_supply()
        );
        // Step the supply down in 3 stops; magnify failing bits like the
        // paper's plot does.
        for step in 1..=3 {
            let vdd = die.min_retention_supply() - 0.012 * step as f64;
            let fails = die.failing_bits(vdd);
            println!(
                "\nVDD = {:.3} V: {} failing bits at (row, col): {:?}{}",
                vdd,
                fails.len(),
                &fails[..fails.len().min(12)],
                if fails.len() > 12 { " …" } else { "" }
            );
            print!("{}", die.render_ascii(vdd, 64));
        }
    }
}
