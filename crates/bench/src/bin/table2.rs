//! Table 2: minimum voltage per mitigation scheme to hold FIT ≤ 1e-15,
//! for both evaluated frequencies, plus the exact (pre-grid) solutions.

use ntc::fit::{paper_platform_f_max, FitSolver, VoltageGrid};
use ntc_sram::failure::AccessLaw;

fn main() {
    let solver =
        FitSolver::new(AccessLaw::cell_based_40nm(), 1e-15).with_grid(VoltageGrid::PaperGrid);
    println!("Table 2 — minimum voltage for FIT ≤ 1e-15 (cell-based memory)\n");
    println!(
        "{:<12} {:>16} {:>14} {:>14}",
        "frequency", "No mitigation", "ECC", "OCEAN"
    );
    for (label, f) in [("290 kHz", 290e3), ("1.96 MHz", 1.96e6)] {
        let row = solver.table_row(f, paper_platform_f_max);
        println!(
            "{:<12} {:>15.2}V {:>13.2}V {:>13.2}V",
            label, row[0].operating, row[1].operating, row[2].operating
        );
        println!(
            "{:<12} {:>15.3}V {:>13.3}V {:>13.3}V   (exact, error-only)",
            "", row[0].error_constrained, row[1].error_constrained, row[2].error_constrained
        );
    }
    println!("\npaper: 290 kHz -> 0.55 / 0.44 / 0.33 V; 1.96 MHz -> 0.55 / 0.44 / 0.44 V");

    // The Figure 9 voltages fall out of the same solver on the commercial law.
    let commercial =
        FitSolver::new(AccessLaw::commercial_40nm(), 1e-15).with_grid(VoltageGrid::PaperGrid);
    let row = commercial.table_row(11e6, paper_platform_f_max);
    println!(
        "\ncommercial law @ 11 MHz: {:.2} / {:.2} / {:.2} V   (paper: 0.88 / 0.77 / 0.66 V)",
        row[0].operating, row[1].operating, row[2].operating
    );
}
