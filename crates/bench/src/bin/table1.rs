//! Table 1: comparison of the four memory implementations scaled to a
//! 1k × 32 b instance — the paper's published figures next to this
//! workspace's calculator output.

use ntc_memcalc::designs::{computed_rows, published_rows};
use ntc_tech::scaling::area_node_factor;

fn main() {
    println!("Table 1 — 1k x 32b memory comparison (40nm, TT, 1.1 V, 25 C)\n");
    println!("published (paper):");
    for row in published_rows() {
        println!("  {row}");
        if let Some((pj, v)) = row.dyn_energy_reduced {
            println!("      reduced voltage: {pj:.2} pJ @ {v:.2} V");
        }
        if let Some((mhz, v)) = row.performance_reduced {
            println!("      reduced voltage: {mhz:.2} MHz @ {v:.2} V");
        }
    }
    println!("\ncomputed (this workspace):");
    for row in computed_rows() {
        println!("  {row}");
        if let Some((pj, v)) = row.dyn_energy_reduced {
            println!("      reduced voltage: {pj:.2} pJ @ {v:.2} V");
        }
        if let Some((mhz, v)) = row.performance_reduced {
            println!("      reduced voltage: {mhz:.3} MHz @ {v:.2} V");
        }
    }
    println!(
        "\nfootnote *4 check: 65nm area 0.19 mm² scaled to 40nm = {:.3} mm²",
        0.19 * area_node_factor(65.0, 40.0)
    );
    println!("note: the COTS retention row differs by design — the paper quotes the");
    println!("provider's 0.85 V spec; the computed row reports the modeled *measured*");
    println!("retention, far below spec (the margin Section IV exploits).");
}
