//! Property tests for the coding layer, across every supported geometry.

use ntc_ecc::interleave::{InterleavedCode, InterleavedOutcome};
use ntc_ecc::parity::Parity;
use ntc_ecc::secded::{DecodeOutcome, Secded};
use proptest::prelude::*;

fn mask_for(width: u32, data: u64) -> u64 {
    if width == 64 {
        data
    } else {
        data & ((1u64 << width) - 1)
    }
}

proptest! {
    /// Clean round trip for every supported width and random data.
    #[test]
    fn secded_round_trip(width in prop::sample::select(vec![8u32, 16, 32, 64]), data: u64) {
        let code = Secded::new(width).unwrap();
        let data = mask_for(width, data);
        prop_assert_eq!(code.decode(code.encode(data)), DecodeOutcome::Clean { data });
    }

    /// Every single flip is corrected back to the original word, on every
    /// geometry.
    #[test]
    fn secded_single_correction(
        width in prop::sample::select(vec![8u32, 16, 32, 64]),
        data: u64,
        bit_sel: u32,
    ) {
        let code = Secded::new(width).unwrap();
        let data = mask_for(width, data);
        let bit = bit_sel % code.codeword_bits();
        let out = code.decode(code.encode(data) ^ (1u128 << bit));
        prop_assert_eq!(out.data(), Some(data));
    }

    /// Every double flip is flagged, never miscorrected, on every geometry.
    #[test]
    fn secded_double_detection(
        width in prop::sample::select(vec![8u32, 16, 32, 64]),
        data: u64,
        a_sel: u32,
        b_sel: u32,
    ) {
        let code = Secded::new(width).unwrap();
        let data = mask_for(width, data);
        let n = code.codeword_bits();
        let a = a_sel % n;
        let b = b_sel % n;
        prop_assume!(a != b);
        let out = code.decode(code.encode(data) ^ (1u128 << a) ^ (1u128 << b));
        prop_assert!(out.is_detected_failure());
    }

    /// The syndrome is linear: syndrome(cw ^ e) = syndrome(cw) ^ syndrome(e).
    #[test]
    fn secded_syndrome_linearity(data: u64, error_bits: u64) {
        let code = Secded::new(32).unwrap();
        let cw = code.encode(data as u32 as u64);
        let e = (error_bits as u128) & ((1u128 << 39) - 1);
        let lhs = code.syndrome(cw ^ e);
        let rhs = code.syndrome(cw) ^ code.syndrome(e);
        prop_assert_eq!(lhs, rhs);
    }

    /// Interleaved code: any error pattern touching at most one bit per
    /// lane is fully corrected.
    #[test]
    fn interleaved_one_per_lane_corrected(
        data: u32,
        depths in prop::collection::vec(0u32..13, 4),
        hit_mask in 0u8..16,
    ) {
        let code = InterleavedCode::new(32, 4).unwrap();
        let stored = code.encode(data as u64);
        let mut corrupted = stored;
        for (lane, &depth) in depths.iter().enumerate() {
            if hit_mask & (1 << lane) != 0 {
                corrupted ^= 1u128 << (depth * 4 + lane as u32);
            }
        }
        let out = code.decode(corrupted);
        prop_assert_eq!(out.data(), Some(data as u64));
    }

    /// Two hits in the same lane always fail (never silent).
    #[test]
    fn interleaved_same_lane_double_fails(
        data: u32,
        lane in 0u32..4,
        d1 in 0u32..13,
        d2 in 0u32..13,
    ) {
        prop_assume!(d1 != d2);
        let code = InterleavedCode::new(32, 4).unwrap();
        let stored = code.encode(data as u64);
        let corrupted = stored ^ (1u128 << (d1 * 4 + lane)) ^ (1u128 << (d2 * 4 + lane));
        prop_assert_eq!(code.decode(corrupted), InterleavedOutcome::Failed);
    }

    /// Parity: detection iff the flip count is odd.
    #[test]
    fn parity_detects_exactly_odd_counts(data: u32, flips in 1usize..6, seed: u64) {
        let code = Parity::new(32);
        let stored = code.encode(data as u64);
        // Choose `flips` distinct positions deterministically from the seed.
        let mut positions = Vec::new();
        let mut s = seed;
        while positions.len() < flips {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let p = (s >> 33) % 33;
            if !positions.contains(&p) {
                positions.push(p);
            }
        }
        let mut corrupted = stored;
        for &p in &positions {
            corrupted ^= 1u128 << p;
        }
        let detected = code.decode(corrupted).is_none();
        prop_assert_eq!(detected, flips % 2 == 1, "flips = {}", flips);
    }
}
