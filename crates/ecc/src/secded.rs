//! Bit-exact SECDED (single-error-correct, double-error-detect) codes with
//! odd-weight columns (Hsiao construction).
//!
//! A Hsiao code's parity-check matrix `H = [D | I]` uses only odd-weight
//! columns: the `r` check positions take the weight-1 columns and the data
//! positions take distinct weight-3 (then weight-5, …) columns. Odd columns
//! make the decode rule simple and fast:
//!
//! * syndrome zero → clean word;
//! * syndrome with **odd** weight matching a column → single error at that
//!   position, flip it;
//! * syndrome with **even** weight → double error, detected but not
//!   correctable;
//! * odd-weight syndrome matching no column → three or more errors
//!   detected.
//!
//! The paper's memory word is 32 bits, giving the classic (39,32) code;
//! the same constructor also produces (13,8), (22,16) and (72,64).

use std::fmt;

/// Error returned when a code cannot be constructed for a data width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeError {
    what: &'static str,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot construct code: {}", self.what)
    }
}

impl std::error::Error for CodeError {}

/// Result of decoding a possibly corrupted codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// Syndrome was zero: the stored word is clean.
    Clean {
        /// The decoded data word.
        data: u64,
    },
    /// A single bit error was located and corrected.
    Corrected {
        /// The corrected data word.
        data: u64,
        /// Codeword bit position that was flipped back.
        bit: u32,
    },
    /// A double bit error was detected; no data can be returned.
    DoubleDetected,
    /// Three or more errors produced an odd syndrome matching no column;
    /// detected as uncorrectable.
    UncorrectableDetected,
}

impl DecodeOutcome {
    /// The usable data word, if the outcome carries one.
    pub fn data(&self) -> Option<u64> {
        match self {
            DecodeOutcome::Clean { data } | DecodeOutcome::Corrected { data, .. } => Some(*data),
            _ => None,
        }
    }

    /// Whether decoding consumed a correction (an error was repaired).
    pub fn was_corrected(&self) -> bool {
        matches!(self, DecodeOutcome::Corrected { .. })
    }

    /// Whether the decoder flagged the word as unusable.
    pub fn is_detected_failure(&self) -> bool {
        matches!(
            self,
            DecodeOutcome::DoubleDetected | DecodeOutcome::UncorrectableDetected
        )
    }
}

/// A Hsiao SECDED code for a given data width.
///
/// Codewords are laid out as `[data bits 0..m | check bits m..m+r]` inside
/// a `u128`.
///
/// # Example
///
/// ```
/// use ntc_ecc::Secded;
///
/// # fn main() -> Result<(), ntc_ecc::secded::CodeError> {
/// let code = Secded::new(8)?; // (13,8) — used per lane in OCEAN's buffer
/// assert_eq!(code.check_bits(), 5);
/// let cw = code.encode(0xA5);
/// assert_eq!(code.decode(cw).data(), Some(0xA5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Secded {
    data_bits: u32,
    check_bits: u32,
    /// Syndrome pattern of each data column (index = data bit position).
    columns: Vec<u32>,
}

impl Secded {
    /// Constructs the Hsiao code for `data_bits` data bits (1 ..= 64).
    ///
    /// The number of check bits is the smallest `r` for which enough
    /// distinct odd-weight-≥3 columns exist: 5 for 8 data bits, 6 for 16,
    /// 7 for 32, 8 for 64.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if `data_bits` is zero or above 64.
    pub fn new(data_bits: u32) -> Result<Self, CodeError> {
        if data_bits == 0 {
            return Err(CodeError {
                what: "data width must be nonzero",
            });
        }
        if data_bits > 64 {
            return Err(CodeError {
                what: "data width above 64 bits is not supported",
            });
        }
        // Find the smallest r with enough odd-weight-≥3 columns.
        let mut r = 3u32;
        loop {
            let capacity = count_odd_ge3_columns(r);
            if capacity >= data_bits as u64 {
                break;
            }
            r += 1;
        }
        // Enumerate odd-weight columns, lowest weight first, then by value —
        // the Hsiao heuristic that also minimizes total XOR count.
        let mut columns = Vec::with_capacity(data_bits as usize);
        'outer: for weight in (3..=r).step_by(2) {
            for v in 1u32..(1 << r) {
                if v.count_ones() == weight {
                    columns.push(v);
                    if columns.len() == data_bits as usize {
                        break 'outer;
                    }
                }
            }
        }
        debug_assert_eq!(columns.len(), data_bits as usize);
        Ok(Self {
            data_bits,
            check_bits: r,
            columns,
        })
    }

    /// Data width in bits.
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Number of check bits.
    pub fn check_bits(&self) -> u32 {
        self.check_bits
    }

    /// Total codeword width (`data_bits + check_bits`).
    pub fn codeword_bits(&self) -> u32 {
        self.data_bits + self.check_bits
    }

    /// The syndrome column assigned to data bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= data_bits`.
    pub fn column(&self, i: u32) -> u32 {
        self.columns[i as usize]
    }

    /// Encodes a data word into a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `data` has bits set above the code's data width.
    pub fn encode(&self, data: u64) -> u128 {
        assert!(
            self.data_bits == 64 || data < (1u64 << self.data_bits),
            "data word wider than {} bits",
            self.data_bits
        );
        let mut checks = 0u32;
        let mut d = data;
        let mut i = 0usize;
        while d != 0 {
            let tz = d.trailing_zeros() as usize;
            i += tz;
            checks ^= self.columns[i];
            d >>= tz + 1;
            i += 1;
        }
        (data as u128) | ((checks as u128) << self.data_bits)
    }

    /// Computes the syndrome of a received codeword.
    pub fn syndrome(&self, codeword: u128) -> u32 {
        let data = (codeword & ((1u128 << self.data_bits) - 1)) as u64;
        let stored_checks = ((codeword >> self.data_bits)
            & ((1u128 << self.check_bits) - 1)) as u32;
        let mut s = stored_checks;
        let mut d = data;
        let mut i = 0usize;
        while d != 0 {
            let tz = d.trailing_zeros() as usize;
            i += tz;
            s ^= self.columns[i];
            d >>= tz + 1;
            i += 1;
        }
        s
    }

    /// Decodes a received codeword, correcting a single error if present.
    pub fn decode(&self, codeword: u128) -> DecodeOutcome {
        let s = self.syndrome(codeword);
        let data_mask = (1u128 << self.data_bits) - 1;
        if s == 0 {
            return DecodeOutcome::Clean {
                data: (codeword & data_mask) as u64,
            };
        }
        if s.count_ones().is_multiple_of(2) {
            return DecodeOutcome::DoubleDetected;
        }
        // Odd syndrome: single error either in a check bit (weight-1
        // syndrome) or a data bit (matching column).
        if s.count_ones() == 1 {
            let bit = self.data_bits + s.trailing_zeros();
            return DecodeOutcome::Corrected {
                data: (codeword & data_mask) as u64,
                bit,
            };
        }
        match self.columns.iter().position(|&c| c == s) {
            Some(i) => {
                let corrected = codeword ^ (1u128 << i);
                DecodeOutcome::Corrected {
                    data: (corrected & data_mask) as u64,
                    bit: i as u32,
                }
            }
            None => DecodeOutcome::UncorrectableDetected,
        }
    }

    /// Number of two-input XOR gates in the encoder: each check bit of
    /// fan-in `f` costs `f − 1` XORs.
    pub fn encoder_xor_count(&self) -> u32 {
        (0..self.check_bits)
            .map(|b| {
                let fanin = self
                    .columns
                    .iter()
                    .filter(|&&c| c & (1 << b) != 0)
                    .count() as u32;
                fanin.saturating_sub(1)
            })
            .sum()
    }

    /// Number of two-input XOR gates in the syndrome generator: the encoder
    /// tree plus one XOR per check bit to fold in the stored checks.
    pub fn syndrome_xor_count(&self) -> u32 {
        self.encoder_xor_count() + self.check_bits
    }
}

impl fmt::Display for Secded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{}) Hsiao SECDED", self.codeword_bits(), self.data_bits)
    }
}

/// Number of odd-weight-≥3 columns available with `r` check bits.
fn count_odd_ge3_columns(r: u32) -> u64 {
    let mut total = 0u64;
    let mut w = 3u32;
    while w <= r {
        total += binomial(r as u64, w as u64);
        w += 2;
    }
    total
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc = 1u64;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_geometries() {
        for (m, n) in [(8u32, 13u32), (16, 22), (32, 39), (64, 72)] {
            let c = Secded::new(m).unwrap();
            assert_eq!(c.codeword_bits(), n, "({n},{m})");
        }
    }

    #[test]
    fn rejects_bad_widths() {
        assert!(Secded::new(0).is_err());
        assert!(Secded::new(65).is_err());
        assert!(!Secded::new(0).unwrap_err().to_string().is_empty());
    }

    #[test]
    fn columns_distinct_and_odd() {
        let c = Secded::new(32).unwrap();
        let mut cols: Vec<u32> = (0..32).map(|i| c.column(i)).collect();
        assert!(cols.iter().all(|v| v.count_ones() % 2 == 1));
        assert!(cols.iter().all(|v| v.count_ones() >= 3));
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 32, "columns must be distinct");
    }

    #[test]
    fn clean_round_trip() {
        let c = Secded::new(32).unwrap();
        for data in [0u64, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001, 0x5555_5555] {
            let cw = c.encode(data);
            assert_eq!(c.decode(cw), DecodeOutcome::Clean { data });
        }
    }

    #[test]
    fn every_single_error_corrected_exhaustive() {
        let c = Secded::new(32).unwrap();
        for data in [0u64, 0xFFFF_FFFF, 0xA5A5_A5A5, 0x1234_5678] {
            let cw = c.encode(data);
            for bit in 0..c.codeword_bits() {
                let corrupted = cw ^ (1u128 << bit);
                let out = c.decode(corrupted);
                assert_eq!(out.data(), Some(data), "bit {bit} of {data:#x}");
                assert!(out.was_corrected());
                if let DecodeOutcome::Corrected { bit: b, .. } = out {
                    assert_eq!(b, bit);
                }
            }
        }
    }

    #[test]
    fn every_double_error_detected_exhaustive() {
        let c = Secded::new(32).unwrap();
        let data = 0xCAFE_F00Du64;
        let cw = c.encode(data);
        let n = c.codeword_bits();
        for i in 0..n {
            for j in (i + 1)..n {
                let corrupted = cw ^ (1u128 << i) ^ (1u128 << j);
                let out = c.decode(corrupted);
                assert_eq!(
                    out,
                    DecodeOutcome::DoubleDetected,
                    "bits {i},{j} must be flagged"
                );
            }
        }
    }

    #[test]
    fn double_errors_detected_on_small_code_all_data() {
        // Exhaustive over data space for the (13,8) lane code.
        let c = Secded::new(8).unwrap();
        for data in 0u64..256 {
            let cw = c.encode(data);
            for i in 0..13 {
                for j in (i + 1)..13 {
                    let out = c.decode(cw ^ (1u128 << i) ^ (1u128 << j));
                    assert!(out.is_detected_failure());
                }
            }
        }
    }

    #[test]
    fn triple_errors_never_silently_accepted_as_clean() {
        // A triple error can alias to a miscorrection (fundamental to
        // SECDED) but must never produce a zero syndrome, because the
        // minimum distance is 4.
        let c = Secded::new(16).unwrap();
        let cw = c.encode(0xBEEF);
        let n = c.codeword_bits();
        for i in 0..n {
            for j in (i + 1)..n {
                for k in (j + 1)..n {
                    let corrupted = cw ^ (1u128 << i) ^ (1u128 << j) ^ (1u128 << k);
                    assert_ne!(c.syndrome(corrupted), 0, "bits {i},{j},{k}");
                }
            }
        }
    }

    #[test]
    fn check_bit_errors_corrected_without_touching_data() {
        let c = Secded::new(32).unwrap();
        let data = 0x0F0F_0F0Fu64;
        let cw = c.encode(data);
        for bit in 32..39 {
            let out = c.decode(cw ^ (1u128 << bit));
            assert_eq!(out.data(), Some(data));
        }
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn encode_rejects_wide_data() {
        Secded::new(8).unwrap().encode(256);
    }

    #[test]
    fn full_width_64_bit_code() {
        let c = Secded::new(64).unwrap();
        let data = u64::MAX;
        let cw = c.encode(data);
        assert_eq!(c.decode(cw).data(), Some(data));
        let out = c.decode(cw ^ (1u128 << 71));
        assert_eq!(out.data(), Some(data));
    }

    #[test]
    fn xor_counts_plausible() {
        let c = Secded::new(32).unwrap();
        // 32 weight-3 columns → 96 ones in D → 96 − 7 = 89 encoder XORs.
        assert_eq!(c.encoder_xor_count(), 89);
        assert_eq!(c.syndrome_xor_count(), 96);
    }

    #[test]
    fn display_shows_geometry() {
        assert_eq!(Secded::new(32).unwrap().to_string(), "(39,32) Hsiao SECDED");
    }

    #[test]
    fn binomials() {
        assert_eq!(binomial(7, 3), 35);
        assert_eq!(binomial(5, 3), 10);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(count_odd_ge3_columns(7), 35 + 21 + 1);
    }
}
