//! Bit-interleaved SECDED: the quadruple-error-correcting protected buffer
//! used by OCEAN for its checkpoints.
//!
//! A word is split across `N` independent SECDED lanes by bit interleaving
//! (bit `i` of the word goes to lane `i mod N`). Each lane corrects one
//! error, so the composite corrects
//!
//! * any **burst** of up to `N` physically adjacent bit flips (they land in
//!   distinct lanes by construction), and
//! * up to `N` **random** flips when no two land in the same lane.
//!
//! With `N = 4` over a 32-bit word this is the paper's "error-protected
//! buffer, with quadruple error correction capability, such that …
//! a quintuple (5 bits) error is needed for system failure".

use crate::secded::{DecodeOutcome, Secded};
use std::fmt;

/// Error returned when an interleaved code cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterleaveError {
    what: &'static str,
}

impl fmt::Display for InterleaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot construct interleaved code: {}", self.what)
    }
}

impl std::error::Error for InterleaveError {}

/// Result of decoding an interleaved codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterleavedOutcome {
    /// All lanes clean.
    Clean {
        /// The decoded data word.
        data: u64,
    },
    /// One or more lanes corrected a single error each.
    Corrected {
        /// The corrected data word.
        data: u64,
        /// Number of bit errors repaired across lanes.
        repaired: u32,
    },
    /// At least one lane saw an uncorrectable (≥2 errors in that lane)
    /// pattern; the word is lost.
    Failed,
}

impl InterleavedOutcome {
    /// The usable data word, if any.
    pub fn data(&self) -> Option<u64> {
        match self {
            InterleavedOutcome::Clean { data } => Some(*data),
            InterleavedOutcome::Corrected { data, .. } => Some(*data),
            InterleavedOutcome::Failed => None,
        }
    }
}

/// An `N`-way bit-interleaved SECDED code over a data word.
///
/// # Example
///
/// ```
/// use ntc_ecc::InterleavedCode;
///
/// # fn main() -> Result<(), ntc_ecc::interleave::InterleaveError> {
/// // The OCEAN protected-buffer code: 32-bit words, 4 lanes of (13,8).
/// let code = InterleavedCode::new(32, 4)?;
/// assert_eq!(code.correctable_random_errors(), 4);
///
/// let stored = code.encode(0x1234_5678);
/// // A 4-bit burst at the word's physical LSBs is repaired in full.
/// let hit = stored ^ 0b1111;
/// assert_eq!(code.decode(hit).data(), Some(0x1234_5678));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterleavedCode {
    data_bits: u32,
    lanes: u32,
    lane_code: Secded,
}

impl InterleavedCode {
    /// Creates an `lanes`-way interleaved code over `data_bits`-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaveError`] if `lanes` is zero, does not divide
    /// `data_bits`, or the per-lane width is unsupported.
    pub fn new(data_bits: u32, lanes: u32) -> Result<Self, InterleaveError> {
        if lanes == 0 {
            return Err(InterleaveError {
                what: "need at least one lane",
            });
        }
        if data_bits == 0 || !data_bits.is_multiple_of(lanes) {
            return Err(InterleaveError {
                what: "lane count must divide the data width",
            });
        }
        let lane_width = data_bits / lanes;
        let lane_code = Secded::new(lane_width).map_err(|_| InterleaveError {
            what: "per-lane width unsupported",
        })?;
        Ok(Self {
            data_bits,
            lanes,
            lane_code,
        })
    }

    /// Data width in bits.
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Number of interleaved lanes.
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// The per-lane SECDED code.
    pub fn lane_code(&self) -> &Secded {
        &self.lane_code
    }

    /// Total stored bits per word (all lanes' codewords).
    pub fn codeword_bits(&self) -> u32 {
        self.lanes * self.lane_code.codeword_bits()
    }

    /// Maximum number of random bit errors guaranteed correctable when they
    /// fall in distinct lanes — and the statistic the FIT solver uses for
    /// OCEAN (`lanes` errors correctable, `lanes + 1` ⇒ possible failure).
    pub fn correctable_random_errors(&self) -> u32 {
        self.lanes
    }

    /// Storage overhead ratio: stored bits / data bits.
    pub fn overhead(&self) -> f64 {
        self.codeword_bits() as f64 / self.data_bits as f64
    }

    /// Encodes a data word into the interleaved stored word.
    ///
    /// Layout: lane codewords are themselves bit-interleaved in storage, so
    /// physically adjacent stored bits belong to different lanes — that is
    /// what turns burst errors into one-per-lane errors.
    ///
    /// # Panics
    ///
    /// Panics if `data` has bits set above the data width.
    pub fn encode(&self, data: u64) -> u128 {
        assert!(
            self.data_bits == 64 || data < (1u64 << self.data_bits),
            "data word wider than {} bits",
            self.data_bits
        );
        let mut stored = 0u128;
        for lane in 0..self.lanes {
            let lane_data = self.extract_lane(data, lane);
            let cw = self.lane_code.encode(lane_data);
            // Spread this lane's codeword bits at stride `lanes`.
            for b in 0..self.lane_code.codeword_bits() {
                if cw >> b & 1 == 1 {
                    stored |= 1u128 << (b * self.lanes + lane);
                }
            }
        }
        stored
    }

    /// Decodes a stored word, correcting up to one error per lane.
    pub fn decode(&self, stored: u128) -> InterleavedOutcome {
        let mut data = 0u64;
        let mut repaired = 0u32;
        for lane in 0..self.lanes {
            let mut cw = 0u128;
            for b in 0..self.lane_code.codeword_bits() {
                if stored >> (b * self.lanes + lane) & 1 == 1 {
                    cw |= 1u128 << b;
                }
            }
            match self.lane_code.decode(cw) {
                DecodeOutcome::Clean { data: d } => {
                    data |= self.deposit_lane(d, lane);
                }
                DecodeOutcome::Corrected { data: d, .. } => {
                    repaired += 1;
                    data |= self.deposit_lane(d, lane);
                }
                DecodeOutcome::DoubleDetected | DecodeOutcome::UncorrectableDetected => {
                    return InterleavedOutcome::Failed;
                }
            }
        }
        if repaired == 0 {
            InterleavedOutcome::Clean { data }
        } else {
            InterleavedOutcome::Corrected { data, repaired }
        }
    }

    /// Extracts the data bits of `lane` (bit `i` of the word belongs to
    /// lane `i mod lanes`).
    fn extract_lane(&self, data: u64, lane: u32) -> u64 {
        let mut out = 0u64;
        let lane_width = self.data_bits / self.lanes;
        for j in 0..lane_width {
            let src = j * self.lanes + lane;
            if data >> src & 1 == 1 {
                out |= 1 << j;
            }
        }
        out
    }

    /// Inverse of [`extract_lane`](Self::extract_lane).
    fn deposit_lane(&self, lane_data: u64, lane: u32) -> u64 {
        let mut out = 0u64;
        let lane_width = self.data_bits / self.lanes;
        for j in 0..lane_width {
            if lane_data >> j & 1 == 1 {
                out |= 1 << (j * self.lanes + lane);
            }
        }
        out
    }
}

impl fmt::Display for InterleavedCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-way interleaved {} over {} data bits",
            self.lanes, self.lane_code, self.data_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ocean_code() -> InterleavedCode {
        InterleavedCode::new(32, 4).unwrap()
    }

    #[test]
    fn geometry() {
        let c = ocean_code();
        assert_eq!(c.codeword_bits(), 4 * 13);
        assert_eq!(c.correctable_random_errors(), 4);
        assert!((c.overhead() - 52.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn construction_validation() {
        assert!(InterleavedCode::new(32, 0).is_err());
        assert!(InterleavedCode::new(32, 5).is_err(), "5 does not divide 32");
        assert!(InterleavedCode::new(0, 4).is_err());
        assert!(InterleavedCode::new(32, 1).is_ok(), "degenerate = plain SECDED");
    }

    #[test]
    fn clean_round_trip() {
        let c = ocean_code();
        for data in [0u64, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x0000_0001, 0x8000_0000] {
            let stored = c.encode(data);
            assert_eq!(c.decode(stored), InterleavedOutcome::Clean { data });
        }
    }

    #[test]
    fn any_burst_up_to_four_adjacent_bits_corrected() {
        let c = ocean_code();
        let data = 0x1357_9BDFu64;
        let stored = c.encode(data);
        let n = c.codeword_bits();
        for len in 1..=4u32 {
            for start in 0..=(n - len) {
                let mask = ((1u128 << len) - 1) << start;
                let out = c.decode(stored ^ mask);
                assert_eq!(
                    out.data(),
                    Some(data),
                    "burst len {len} at {start} must be repaired"
                );
            }
        }
    }

    #[test]
    fn five_bit_burst_fails() {
        let c = ocean_code();
        let stored = c.encode(0xABCD_EF01);
        // A 5-bit burst puts two errors in one lane → detected failure.
        let out = c.decode(stored ^ 0b11111);
        assert_eq!(out, InterleavedOutcome::Failed);
    }

    #[test]
    fn four_random_errors_in_distinct_lanes_corrected() {
        let c = ocean_code();
        let data = 0x0F1E_2D3Cu64;
        let stored = c.encode(data);
        // One error in each lane at different codeword depths.
        // One hit per lane: stored-bit positions lane + 4·depth.
        let corrupted = stored ^ 1u128 ^ (1u128 << 13) ^ (1u128 << 30) ^ (1u128 << 51);
        let out = c.decode(corrupted);
        assert_eq!(out.data(), Some(data));
        if let InterleavedOutcome::Corrected { repaired, .. } = out {
            assert_eq!(repaired, 4);
        } else {
            panic!("expected corrected outcome, got {out:?}");
        }
    }

    #[test]
    fn two_errors_same_lane_fail() {
        let c = ocean_code();
        let stored = c.encode(0x1111_2222);
        // Two errors in lane 0 (positions ≡ 0 mod 4).
        let out = c.decode(stored ^ (1u128 << 0) ^ (1u128 << 8));
        assert_eq!(out, InterleavedOutcome::Failed);
    }

    #[test]
    fn exhaustive_single_errors() {
        let c = ocean_code();
        let data = 0xC0FF_EE00u64;
        let stored = c.encode(data);
        for bit in 0..c.codeword_bits() {
            let out = c.decode(stored ^ (1u128 << bit));
            assert_eq!(out.data(), Some(data), "bit {bit}");
        }
    }

    #[test]
    fn lane_extract_deposit_inverse() {
        let c = ocean_code();
        let data = 0x9E37_79B9u64;
        let mut rebuilt = 0u64;
        for lane in 0..4 {
            rebuilt |= c.deposit_lane(c.extract_lane(data, lane), lane);
        }
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn display_nonempty() {
        assert!(!ocean_code().to_string().is_empty());
        assert!(!InterleaveError { what: "x" }.to_string().is_empty());
    }
}
