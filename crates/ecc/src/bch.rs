//! A DEC-TED BCH code: double-error-correct, triple-error-detect.
//!
//! The OCEAN protected buffer in this workspace uses 4-way interleaved
//! SECDED (burst-oriented). The classic alternative for multi-bit
//! protection is an algebraic BCH code: here a binary (63,51) t = 2 BCH
//! over GF(2⁶), shortened to 32 data bits and extended with an overall
//! parity bit — a (45,32) DEC-TED code that corrects **any** two random
//! bit errors (not just one per interleave lane) and detects any three,
//! at 45 stored bits instead of the interleaved buffer's 52.
//!
//! The trade-off the `ablation_buffer_code` bench quantifies: the BCH
//! corrects any 2-of-45 where the interleaved code corrects up to
//! 4-if-distributed; their FIT-limited voltages and decoder costs differ.
//!
//! Implementation: GF(2⁶) with primitive polynomial `x⁶ + x + 1`,
//! systematic encoding by polynomial division, syndrome decoding with the
//! closed-form two-error locator (`x² + S₁x + (S₃ + S₁³)/S₁`) and Chien
//! search, and the extended parity bit arbitrating the error-count parity
//! for triple-error detection.

use std::fmt;
use std::sync::OnceLock;

const M: usize = 6;
const FIELD: usize = (1 << M) - 1; // 63
const DATA_BITS: u32 = 32;
const CHECK_BITS: u32 = 12; // degree of g(x) = m1(x)·m3(x)
const BCH_BITS: u32 = DATA_BITS + CHECK_BITS; // 44 (shortened from 63)
const CODEWORD_BITS: u32 = BCH_BITS + 1; // +1 extended parity

/// GF(2⁶) log/antilog tables.
struct Tables {
    exp: [u8; 2 * FIELD],
    log: [u8; FIELD + 1],
}

fn tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(|| {
        let mut exp = [0u8; 2 * FIELD];
        let mut log = [0u8; FIELD + 1];
        let mut x = 1usize;
        for (i, e) in exp.iter_mut().enumerate().take(FIELD) {
            *e = x as u8;
            log[x] = i as u8;
            x <<= 1;
            if x & (1 << M) != 0 {
                x ^= 0b100_0011; // x^6 = x + 1
            }
        }
        for i in FIELD..2 * FIELD {
            exp[i] = exp[i - FIELD];
        }
        Tables { exp, log }
    })
}

fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

fn gf_inv(a: u8) -> u8 {
    debug_assert_ne!(a, 0, "zero has no inverse");
    let t = tables();
    t.exp[FIELD - t.log[a as usize] as usize]
}

fn gf_pow_alpha(e: usize) -> u8 {
    tables().exp[e % FIELD]
}

/// Outcome of decoding a (45,32) DEC-TED codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BchOutcome {
    /// No errors.
    Clean {
        /// Decoded data word.
        data: u32,
    },
    /// One or two bit errors corrected.
    Corrected {
        /// Corrected data word.
        data: u32,
        /// Number of bits repaired (1 or 2).
        repaired: u32,
    },
    /// Three or more errors detected; the word is unusable.
    Detected,
}

impl BchOutcome {
    /// The usable data, if any.
    pub fn data(&self) -> Option<u32> {
        match self {
            BchOutcome::Clean { data } | BchOutcome::Corrected { data, .. } => Some(*data),
            BchOutcome::Detected => None,
        }
    }
}

/// The (45,32) DEC-TED BCH code.
///
/// # Example
///
/// ```
/// use ntc_ecc::bch::{BchDecTed, BchOutcome};
///
/// let code = BchDecTed::new();
/// let cw = code.encode(0xDEAD_BEEF);
/// // Any two random flips are corrected…
/// let hit = cw ^ (1 << 3) ^ (1 << 41);
/// assert_eq!(code.decode(hit).data(), Some(0xDEAD_BEEF));
/// // …and any three are detected.
/// let three = hit ^ (1 << 20);
/// assert_eq!(code.decode(three), BchOutcome::Detected);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BchDecTed {
    /// `g(x) = m₁(x)·m₃(x)`, degree 12, as a bit mask (LSB = x⁰).
    generator: u32,
}

impl Default for BchDecTed {
    fn default() -> Self {
        Self::new()
    }
}

impl BchDecTed {
    /// Constructs the code (generator computed from the field tables).
    pub fn new() -> Self {
        // m1(x): minimal polynomial of α — the primitive polynomial itself.
        let m1: u32 = 0b100_0011; // x^6 + x + 1
        // m3(x): minimal polynomial of α³. Conjugates: α^3, α^6, α^12,
        // α^24, α^48, α^33 → degree 6. Compute Π (x − α^(3·2^i)).
        let mut m3 = [0u8; 7];
        m3[0] = 1;
        let mut e = 3usize;
        for deg in 0..6 {
            let root = gf_pow_alpha(e);
            // Multiply m3 by (x + root).
            let mut next = [0u8; 7];
            for (j, &c) in m3.iter().enumerate().take(deg + 1) {
                next[j + 1] ^= c; // x·c
                next[j] ^= gf_mul(c, root);
            }
            m3 = next;
            e = (e * 2) % FIELD;
        }
        // m3 must have binary coefficients.
        let mut m3_mask = 0u32;
        for (j, &c) in m3.iter().enumerate() {
            debug_assert!(c <= 1, "minimal polynomial must be binary");
            m3_mask |= (c as u32) << j;
        }
        // g = m1 · m3 over GF(2).
        let mut generator = 0u32;
        for j in 0..=6 {
            if m1 >> j & 1 == 1 {
                generator ^= m3_mask << j;
            }
        }
        debug_assert_eq!(generator >> 12, 1, "generator must have degree 12");
        Self { generator }
    }

    /// Total stored bits (45).
    pub fn codeword_bits(&self) -> u32 {
        CODEWORD_BITS
    }

    /// Data bits (32).
    pub fn data_bits(&self) -> u32 {
        DATA_BITS
    }

    /// Encodes a data word.
    ///
    /// Layout: bits `[11:0]` BCH checks, `[43:12]` data, bit 44 overall
    /// parity.
    pub fn encode(&self, data: u32) -> u64 {
        // Systematic encoding: remainder of data(x)·x^12 modulo g(x).
        let mut rem: u64 = (data as u64) << CHECK_BITS;
        for bit in (CHECK_BITS..BCH_BITS).rev() {
            if rem >> bit & 1 == 1 {
                rem ^= (self.generator as u64) << (bit - CHECK_BITS);
            }
        }
        let bch = ((data as u64) << CHECK_BITS) | (rem & ((1 << CHECK_BITS) - 1));
        let parity = (bch.count_ones() & 1) as u64;
        bch | (parity << BCH_BITS)
    }

    /// Syndromes `S₁ = r(α)` and `S₃ = r(α³)` of the 44 BCH bits.
    fn syndromes(&self, received: u64) -> (u8, u8) {
        let mut s1 = 0u8;
        let mut s3 = 0u8;
        let mut r = received & ((1u64 << BCH_BITS) - 1);
        while r != 0 {
            let i = r.trailing_zeros() as usize;
            s1 ^= gf_pow_alpha(i);
            s3 ^= gf_pow_alpha(3 * i);
            r &= r - 1;
        }
        (s1, s3)
    }

    /// Decodes a received 45-bit word.
    pub fn decode(&self, received: u64) -> BchOutcome {
        let (s1, s3) = self.syndromes(received);
        let parity_ok = received.count_ones() & 1 == 0;
        let data = |w: u64| ((w >> CHECK_BITS) & 0xFFFF_FFFF) as u32;

        if s1 == 0 && s3 == 0 {
            return if parity_ok {
                BchOutcome::Clean { data: data(received) }
            } else {
                // The overall parity bit itself flipped.
                BchOutcome::Corrected {
                    data: data(received),
                    repaired: 1,
                }
            };
        }

        if !parity_ok {
            // Odd error count with nonzero syndrome: try single error.
            if s1 != 0 && gf_mul(gf_mul(s1, s1), s1) == s3 {
                let pos = tables().log[s1 as usize] as u32;
                if pos < BCH_BITS {
                    return BchOutcome::Corrected {
                        data: data(received ^ (1u64 << pos)),
                        repaired: 1,
                    };
                }
            }
            // Syndrome inconsistent with one error: three or more.
            return BchOutcome::Detected;
        }

        // Even error count with nonzero syndrome: try two errors.
        if s1 == 0 {
            // Two errors cannot give S1 = 0 (X1 ≠ X2); ≥4 detected.
            return BchOutcome::Detected;
        }
        let s1_cubed = gf_mul(gf_mul(s1, s1), s1);
        // Special even-count pattern: one BCH-part error plus a flip of the
        // extended parity bit itself (syndromes consistent with a single).
        if s1_cubed == s3 {
            let pos = tables().log[s1 as usize] as u32;
            if pos < BCH_BITS {
                return BchOutcome::Corrected {
                    data: data(received ^ (1u64 << pos)),
                    repaired: 2,
                };
            }
        }
        // σ(x) = x² + S1·x + (S3 + S1³)/S1; find its two roots by Chien
        // search over the shortened positions.
        let c = gf_mul(s3 ^ s1_cubed, gf_inv(s1));
        if c == 0 {
            // Double root / degenerate: not a valid 2-error pattern.
            return BchOutcome::Detected;
        }
        let mut roots = [0u32; 2];
        let mut found = 0usize;
        for i in 0..BCH_BITS {
            let x = gf_pow_alpha(i as usize);
            let val = gf_mul(x, x) ^ gf_mul(s1, x) ^ c;
            if val == 0 {
                if found == 2 {
                    return BchOutcome::Detected;
                }
                roots[found] = i;
                found += 1;
            }
        }
        if found != 2 {
            return BchOutcome::Detected;
        }
        let fixed = received ^ (1u64 << roots[0]) ^ (1u64 << roots[1]);
        BchOutcome::Corrected {
            data: data(fixed),
            repaired: 2,
        }
    }
}

impl fmt::Display for BchDecTed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(45,32) DEC-TED BCH (shortened (63,51), t = 2 + parity)")
    }
}


/// Outcome of decoding the quad-correcting code — same shape as
/// [`BchOutcome`] but up to four repairs.
pub type BchQuadOutcome = BchOutcome;

/// The (57,32) QEC-PED BCH code: corrects **any four** random bit errors,
/// detects any five.
///
/// This is the code the paper's protected buffer claims to be: "an
/// error-protected buffer, with quadruple error correction capability,
/// such that … a quintuple (5 bits) error is needed for system failure" —
/// for *random* errors, which the interleaved-SECDED construction only
/// achieves for distributed/burst patterns. Built from the (63,39) t = 4
/// binary BCH (generator `m₁m₃m₅m₇`, degree 24), shortened to 32 data
/// bits (56 bits) and extended with an overall parity bit.
///
/// Decoding: syndromes S₁..S₈ (even ones by squaring), Berlekamp–Massey
/// for the error locator, Chien search, and the extended parity
/// arbitrating odd/even error counts.
///
/// # Example
///
/// ```
/// use ntc_ecc::bch::{BchOutcome, BchQuad};
///
/// let code = BchQuad::new();
/// let cw = code.encode(0x0BAD_F00D);
/// let hit = cw ^ (1 << 2) ^ (1 << 19) ^ (1 << 40) ^ (1 << 55);
/// assert_eq!(code.decode(hit).data(), Some(0x0BAD_F00D)); // any 4 corrected
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BchQuad {
    /// Degree-24 generator as a bit mask (LSB = x⁰).
    generator: u32,
}

/// Stored bits of the quad code's BCH part (56) and total (57).
const QUAD_CHECK_BITS: u32 = 24;
const QUAD_BCH_BITS: u32 = DATA_BITS + QUAD_CHECK_BITS; // 56
const QUAD_CODEWORD_BITS: u32 = QUAD_BCH_BITS + 1; // 57

impl Default for BchQuad {
    fn default() -> Self {
        Self::new()
    }
}

/// Minimal polynomial of α^e over GF(2), as a bit mask.
fn minimal_poly(e: usize) -> u32 {
    // Collect the conjugacy class {e·2^i mod 63}.
    let mut class = Vec::new();
    let mut x = e % FIELD;
    loop {
        if class.contains(&x) {
            break;
        }
        class.push(x);
        x = (x * 2) % FIELD;
    }
    // Π (x + α^c) — coefficients end up binary.
    let mut poly = vec![0u8; class.len() + 1];
    poly[0] = 1;
    for (deg, &c) in class.iter().enumerate() {
        let root = gf_pow_alpha(c);
        let mut next = vec![0u8; poly.len()];
        for (j, &coef) in poly.iter().enumerate().take(deg + 1) {
            next[j + 1] ^= coef;
            next[j] ^= gf_mul(coef, root);
        }
        poly = next;
    }
    let mut mask = 0u32;
    for (j, &c) in poly.iter().enumerate() {
        debug_assert!(c <= 1, "minimal polynomial must be binary");
        mask |= (c as u32) << j;
    }
    mask
}

/// GF(2) polynomial product.
fn poly_mul_gf2(a: u32, b: u32) -> u32 {
    let mut out = 0u32;
    for j in 0..32 {
        if a >> j & 1 == 1 {
            out ^= b << j;
        }
    }
    out
}

impl BchQuad {
    /// Constructs the code.
    pub fn new() -> Self {
        let g = poly_mul_gf2(
            poly_mul_gf2(minimal_poly(1), minimal_poly(3)),
            poly_mul_gf2(minimal_poly(5), minimal_poly(7)),
        );
        debug_assert_eq!(g >> 24, 1, "generator must have degree 24");
        Self { generator: g }
    }

    /// Total stored bits (57).
    pub fn codeword_bits(&self) -> u32 {
        QUAD_CODEWORD_BITS
    }

    /// Data bits (32).
    pub fn data_bits(&self) -> u32 {
        DATA_BITS
    }

    /// Storage overhead ratio (57/32).
    pub fn overhead(&self) -> f64 {
        QUAD_CODEWORD_BITS as f64 / DATA_BITS as f64
    }

    /// Two-input XOR gates in a parallel encoder, counted exactly from
    /// the systematic generator matrix (each check bit is the XOR of the
    /// data bits whose unit-vector encodings set it), plus the overall
    /// parity tree.
    pub fn encoder_xor_count(&self) -> u32 {
        let mut fanin = [0u32; QUAD_CHECK_BITS as usize + 1];
        for i in 0..DATA_BITS {
            let cw = self.encode(1u32 << i);
            for (b, f) in fanin.iter_mut().enumerate().take(QUAD_CHECK_BITS as usize) {
                *f += (cw >> b & 1) as u32;
            }
        }
        let checks: u32 = fanin[..QUAD_CHECK_BITS as usize]
            .iter()
            .map(|&f| f.saturating_sub(1))
            .sum();
        // Overall parity: 56-input XOR tree.
        checks + (QUAD_BCH_BITS - 1)
    }

    /// Decoder logic scale relative to the syndrome tree: the iterative
    /// Berlekamp–Massey datapath plus the Chien search are charged as 4×
    /// the syndrome generator (the ratio reported for serial t = 4 BCH
    /// decoders versus their syndrome stage).
    pub fn decoder_syndrome_ratio(&self) -> f64 {
        4.0
    }

    /// Encodes a data word.
    ///
    /// Layout: bits `[23:0]` BCH checks, `[55:24]` data, bit 56 parity.
    pub fn encode(&self, data: u32) -> u64 {
        let mut rem: u64 = (data as u64) << QUAD_CHECK_BITS;
        for bit in (QUAD_CHECK_BITS..QUAD_BCH_BITS).rev() {
            if rem >> bit & 1 == 1 {
                rem ^= (self.generator as u64) << (bit - QUAD_CHECK_BITS);
            }
        }
        let bch = ((data as u64) << QUAD_CHECK_BITS) | (rem & ((1 << QUAD_CHECK_BITS) - 1));
        let parity = (bch.count_ones() & 1) as u64;
        bch | (parity << QUAD_BCH_BITS)
    }

    /// Odd syndromes S₁, S₃, S₅, S₇ of the BCH part.
    fn syndromes(&self, received: u64) -> [u8; 9] {
        // s[j] = S_j for j in 1..=8 (s[0] unused).
        let mut s = [0u8; 9];
        let mut r = received & ((1u64 << QUAD_BCH_BITS) - 1);
        while r != 0 {
            let i = r.trailing_zeros() as usize;
            for j in [1usize, 3, 5, 7] {
                s[j] ^= gf_pow_alpha(j * i);
            }
            r &= r - 1;
        }
        // Even syndromes by the Frobenius square: S_2k = S_k².
        s[2] = gf_mul(s[1], s[1]);
        s[4] = gf_mul(s[2], s[2]);
        s[6] = gf_mul(s[3], s[3]);
        s[8] = gf_mul(s[4], s[4]);
        s
    }

    /// Berlekamp–Massey over the 8 syndromes; returns the error-locator
    /// polynomial coefficients `σ₀..σ_L` (σ₀ = 1) or `None` if L > 4.
    fn berlekamp_massey(s: &[u8; 9]) -> Option<Vec<u8>> {
        let mut sigma = vec![1u8];
        let mut prev = vec![1u8];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = 1u8;
        for n in 0..8 {
            // Discrepancy d = S_{n+1} + Σ σ_i·S_{n+1-i}.
            let mut d = s[n + 1];
            for i in 1..=l.min(n) {
                if i < sigma.len() {
                    d ^= gf_mul(sigma[i], s[n + 1 - i]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= n {
                let t = sigma.clone();
                let scale = gf_mul(d, gf_inv(b));
                // sigma -= scale · x^m · prev
                if sigma.len() < prev.len() + m {
                    sigma.resize(prev.len() + m, 0);
                }
                for (j, &c) in prev.iter().enumerate() {
                    sigma[j + m] ^= gf_mul(scale, c);
                }
                l = n + 1 - l;
                prev = t;
                b = d;
                m = 1;
            } else {
                let scale = gf_mul(d, gf_inv(b));
                if sigma.len() < prev.len() + m {
                    sigma.resize(prev.len() + m, 0);
                }
                for (j, &c) in prev.iter().enumerate() {
                    sigma[j + m] ^= gf_mul(scale, c);
                }
                m += 1;
            }
        }
        if l > 4 {
            return None;
        }
        sigma.truncate(l + 1);
        Some(sigma)
    }

    /// Decodes a received 57-bit word.
    pub fn decode(&self, received: u64) -> BchQuadOutcome {
        let s = self.syndromes(received);
        let parity_ok = received.count_ones() & 1 == 0;
        let data = |w: u64| ((w >> QUAD_CHECK_BITS) & 0xFFFF_FFFF) as u32;

        if s[1] == 0 && s[3] == 0 && s[5] == 0 && s[7] == 0 {
            return if parity_ok {
                BchOutcome::Clean { data: data(received) }
            } else {
                BchOutcome::Corrected {
                    data: data(received),
                    repaired: 1, // the parity bit itself
                }
            };
        }

        let Some(sigma) = Self::berlekamp_massey(&s) else {
            return BchOutcome::Detected;
        };
        let l = sigma.len() - 1;
        // Chien search: error at position i iff σ(α^{-i}) = 0.
        let mut positions = Vec::with_capacity(l);
        for i in 0..QUAD_BCH_BITS as usize {
            let x = gf_pow_alpha((FIELD - i % FIELD) % FIELD); // α^{-i}
            let mut val = 0u8;
            let mut xp = 1u8;
            for &c in &sigma {
                val ^= gf_mul(c, xp);
                xp = gf_mul(xp, x);
            }
            if val == 0 {
                positions.push(i);
                if positions.len() > l {
                    return BchOutcome::Detected;
                }
            }
        }
        if positions.len() != l {
            return BchOutcome::Detected;
        }
        // Parity arbitration: total flips = l (+1 if the parity bit also
        // flipped). The observed parity must match.
        let bch_flips_odd = l % 2 == 1;
        let parity_bit_flipped = parity_ok == bch_flips_odd;
        let total = l + usize::from(parity_bit_flipped);
        // Bounded-distance rule: correct up to 4 total flips, detect 5.
        // (Allowing a 4-BCH + parity-bit quintuple would also admit
        // miscorrection of true 5-BCH-error patterns sitting at distance
        // 4 from another codeword; d = 10 only guarantees detect-5.)
        if total > 4 {
            return BchOutcome::Detected;
        }
        let mut fixed = received;
        for &i in &positions {
            fixed ^= 1u64 << i;
        }
        BchOutcome::Corrected {
            data: data(fixed),
            repaired: total as u32,
        }
    }
}

impl fmt::Display for BchQuad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(57,32) QEC-PED BCH (shortened (63,39), t = 4 + parity)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: [u32; 5] = [0, u32::MAX, 0xDEAD_BEEF, 0xA5A5_5A5A, 0x0000_0001];

    #[test]
    fn generator_is_degree_12_and_binary() {
        let code = BchDecTed::new();
        assert_eq!(code.generator >> 12, 1);
        assert_eq!(code.codeword_bits(), 45);
        assert_eq!(code.data_bits(), 32);
    }

    #[test]
    fn codewords_have_zero_syndrome_and_even_parity() {
        let code = BchDecTed::new();
        for &d in &SAMPLES {
            let cw = code.encode(d);
            assert_eq!(code.syndromes(cw), (0, 0), "data {d:#x}");
            assert_eq!(cw.count_ones() % 2, 0);
            assert_eq!(code.decode(cw), BchOutcome::Clean { data: d });
        }
    }

    #[test]
    fn every_single_error_corrected_exhaustive() {
        let code = BchDecTed::new();
        for &d in &SAMPLES {
            let cw = code.encode(d);
            for bit in 0..45 {
                let out = code.decode(cw ^ (1u64 << bit));
                assert_eq!(out.data(), Some(d), "bit {bit}, data {d:#x}");
                assert_eq!(out, BchOutcome::Corrected { data: d, repaired: 1 });
            }
        }
    }

    #[test]
    fn every_double_error_corrected_exhaustive() {
        let code = BchDecTed::new();
        let d = 0xCAFE_F00Du32;
        let cw = code.encode(d);
        for a in 0..45u32 {
            for b in (a + 1)..45 {
                let out = code.decode(cw ^ (1u64 << a) ^ (1u64 << b));
                assert_eq!(out.data(), Some(d), "bits {a},{b}");
            }
        }
    }

    #[test]
    fn every_triple_error_detected_exhaustive() {
        // d_min = 6: any 3-bit pattern must be flagged, never miscorrected.
        let code = BchDecTed::new();
        let d = 0x1234_5678u32;
        let cw = code.encode(d);
        for a in 0..45u32 {
            for b in (a + 1)..45 {
                for c in (b + 1)..45 {
                    let out = code.decode(cw ^ (1u64 << a) ^ (1u64 << b) ^ (1u64 << c));
                    assert_eq!(out, BchOutcome::Detected, "bits {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn corrects_random_double_errors_on_random_data() {
        // Randomized cross-check over many data words.
        let code = BchDecTed::new();
        let mut x = 0x9E37_79B9u32;
        for _ in 0..500 {
            x = x.wrapping_mul(747796405).wrapping_add(2891336453);
            let d = x;
            let a = (x >> 8) % 45;
            let b = (x >> 16) % 45;
            let cw = code.encode(d);
            let corrupted = cw ^ (1u64 << a) ^ (1u64 << b);
            let out = code.decode(corrupted);
            assert_eq!(out.data(), Some(d), "data {d:#x}, bits {a},{b}");
        }
    }

    #[test]
    fn storage_comparison_with_interleaved() {
        use crate::interleave::InterleavedCode;
        let bch = BchDecTed::new();
        let inter = InterleavedCode::new(32, 4).unwrap();
        assert!(bch.codeword_bits() < inter.codeword_bits(), "45 < 52 bits");
    }

    #[test]
    fn display_nonempty() {
        assert!(!BchDecTed::new().to_string().is_empty());
        assert!(!BchQuad::new().to_string().is_empty());
    }

    #[test]
    fn quad_generator_and_geometry() {
        let code = BchQuad::new();
        assert_eq!(code.codeword_bits(), 57);
        assert_eq!(code.data_bits(), 32);
        assert!((code.overhead() - 57.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn quad_clean_round_trip() {
        let code = BchQuad::new();
        for &d in &SAMPLES {
            let cw = code.encode(d);
            assert_eq!(code.decode(cw), BchOutcome::Clean { data: d }, "{d:#x}");
        }
    }

    #[test]
    fn quad_every_single_and_double_corrected_exhaustive() {
        let code = BchQuad::new();
        let d = 0xDEAD_BEEFu32;
        let cw = code.encode(d);
        for a in 0..57u32 {
            let out = code.decode(cw ^ (1u64 << a));
            assert_eq!(out.data(), Some(d), "single at {a}");
            for b in (a + 1)..57 {
                let out = code.decode(cw ^ (1u64 << a) ^ (1u64 << b));
                assert_eq!(out.data(), Some(d), "double {a},{b}");
            }
        }
    }

    #[test]
    fn quad_corrects_any_four_random_errors() {
        // Sampled quadruples over random data (exhaustive C(57,4) is run
        // by the release-mode bench gate; here a dense deterministic scan).
        let code = BchQuad::new();
        let mut x = 0xACE1u32;
        for trial in 0..4000 {
            x = x.wrapping_mul(747796405).wrapping_add(2891336453);
            let d = x;
            let mut bits = [0u32; 4];
            let mut k = 0;
            let mut y = x;
            while k < 4 {
                y = y.wrapping_mul(2654435761).wrapping_add(1);
                let b = (y >> 16) % 57;
                if !bits[..k].contains(&b) {
                    bits[k] = b;
                    k += 1;
                }
            }
            let mut w = code.encode(d);
            for &b in &bits {
                w ^= 1u64 << b;
            }
            let out = code.decode(w);
            assert_eq!(out.data(), Some(d), "trial {trial}: bits {bits:?}");
            if let BchOutcome::Corrected { repaired, .. } = out {
                assert_eq!(repaired, 4);
            }
        }
    }

    #[test]
    fn quad_detects_sampled_quintuple_errors() {
        let code = BchQuad::new();
        let d = 0x1357_9BDFu32;
        let cw = code.encode(d);
        let mut x = 0xBEEFu32;
        for trial in 0..4000 {
            let mut bits = [0u32; 5];
            let mut k = 0;
            while k < 5 {
                x = x.wrapping_mul(747796405).wrapping_add(2891336453);
                let b = (x >> 20) % 57;
                if !bits[..k].contains(&b) {
                    bits[k] = b;
                    k += 1;
                }
            }
            let mut w = cw;
            for &b in &bits {
                w ^= 1u64 << b;
            }
            assert_eq!(
                code.decode(w),
                BchOutcome::Detected,
                "trial {trial}: bits {bits:?}"
            );
        }
    }

    #[test]
    fn quad_triples_corrected_with_parity_interplay() {
        // 3 BCH errors + parity mismatch: corrected as 3. 3 BCH + parity
        // bit: 4 total, corrected.
        let code = BchQuad::new();
        let d = 0x0F1E_2D3Cu32;
        let cw = code.encode(d);
        let three = cw ^ (1u64 << 1) ^ (1u64 << 30) ^ (1u64 << 50);
        assert_eq!(code.decode(three).data(), Some(d));
        let with_parity = three ^ (1u64 << 56);
        let out = code.decode(with_parity);
        assert_eq!(out.data(), Some(d));
        if let BchOutcome::Corrected { repaired, .. } = out {
            assert_eq!(repaired, 4);
        }
    }

}
