//! Error-correcting codes for near-threshold memories.
//!
//! The DATE 2014 paper evaluates two hardware protection levels:
//!
//! * a **(39,32) SECDED Hamming code** on every scratchpad word — the
//!   industry-standard single-error-correct / double-error-detect scheme,
//!   implemented here bit-exactly as an odd-weight-column (Hsiao) code
//!   ([`Secded`]); and
//! * a **quadruple-error-correcting protected buffer** used by OCEAN for
//!   its checkpoints, implemented as a 4-way bit-interleaved SECDED
//!   ([`InterleavedCode`]): each lane corrects one error, so up to four
//!   errors landing in distinct lanes — and any burst of four adjacent
//!   bits — are corrected.
//!
//! Energy overheads are not hand-waved: [`energy::EccEnergyModel`] derives
//! encoder/decoder energy from the *actual XOR-gate counts* of the
//! generated parity-check matrix, scaled by supply voltage, following the
//! accounting the paper borrows from Wang et al. (JETTA 2010).
//!
//! # Example
//!
//! ```
//! use ntc_ecc::Secded;
//!
//! # fn main() -> Result<(), ntc_ecc::secded::CodeError> {
//! let code = Secded::new(32)?; // the paper's (39,32) code
//! assert_eq!(code.codeword_bits(), 39);
//!
//! let cw = code.encode(0xDEAD_BEEF);
//! let corrupted = cw ^ (1 << 7); // flip one bit
//! let outcome = code.decode(corrupted);
//! assert_eq!(outcome.data(), Some(0xDEAD_BEEF)); // corrected
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bch;
pub mod energy;
pub mod interleave;
pub mod parity;
pub mod secded;

pub use bch::{BchDecTed, BchQuad};
pub use energy::EccEnergyModel;
pub use parity::Parity;
pub use interleave::InterleavedCode;
pub use secded::{DecodeOutcome, Secded};
