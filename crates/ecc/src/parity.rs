//! Single-parity error detection (EDC) — the cheapest detection scheme,
//! used as the baseline in the detection-strength ablation.
//!
//! One even-parity bit per word detects any odd number of flips and
//! *misses every even-count error*. Against the SECDED-based detect-only
//! scheme (`ntc-ocean`), parity costs a 33/32 bit factor instead of 39/32
//! and a 31-XOR tree instead of ~96 — but its silent-corruption
//! probability is `P(2 of 33)` instead of the vastly smaller aliasing
//! probability of a distance-4 code, which is what rules it out for the
//! paper's FIT target.

use std::fmt;

/// Even-parity code over a fixed data width.
///
/// # Example
///
/// ```
/// use ntc_ecc::parity::Parity;
///
/// let code = Parity::new(32);
/// let stored = code.encode(0xDEAD_BEEF);
/// assert_eq!(code.decode(stored), Some(0xDEAD_BEEF));
/// // One flip: detected.
/// assert_eq!(code.decode(stored ^ 1), None);
/// // Two flips: silently accepted — the scheme's fundamental weakness.
/// assert!(code.decode(stored ^ 0b11).is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parity {
    data_bits: u32,
}

impl Parity {
    /// Creates a parity code over `data_bits` (1 ..= 64).
    ///
    /// # Panics
    ///
    /// Panics if `data_bits` is zero or above 64.
    pub fn new(data_bits: u32) -> Self {
        assert!(
            (1..=64).contains(&data_bits),
            "data width must be in 1..=64, got {data_bits}"
        );
        Self { data_bits }
    }

    /// Data width in bits.
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Stored width (`data_bits + 1`).
    pub fn codeword_bits(&self) -> u32 {
        self.data_bits + 1
    }

    /// Encodes: parity bit in position `data_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `data` has bits set above the data width.
    pub fn encode(&self, data: u64) -> u128 {
        assert!(
            self.data_bits == 64 || data < (1u64 << self.data_bits),
            "data word wider than {} bits",
            self.data_bits
        );
        let p = (data.count_ones() & 1) as u128;
        (data as u128) | (p << self.data_bits)
    }

    /// Decodes: `Some(data)` if parity checks, `None` if an odd error
    /// count was detected. Even error counts pass silently.
    pub fn decode(&self, stored: u128) -> Option<u64> {
        let total_ones = stored.count_ones();
        if total_ones & 1 != 0 {
            return None;
        }
        Some((stored & ((1u128 << self.data_bits) - 1)) as u64)
    }

    /// Number of two-input XOR gates in the parity tree.
    pub fn xor_count(&self) -> u32 {
        self.data_bits - 1
    }
}

impl fmt::Display for Parity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{}) even parity", self.codeword_bits(), self.data_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_geometry() {
        let c = Parity::new(32);
        assert_eq!(c.codeword_bits(), 33);
        assert_eq!(c.xor_count(), 31);
        for data in [0u64, 1, 0xFFFF_FFFF, 0x8000_0001] {
            assert_eq!(c.decode(c.encode(data)), Some(data));
        }
    }

    #[test]
    fn detects_all_odd_error_counts_exhaustively() {
        let c = Parity::new(16);
        let cw = c.encode(0xBEEF);
        for a in 0..17u32 {
            assert_eq!(c.decode(cw ^ (1 << a)), None, "single at {a}");
            for b in (a + 1)..17 {
                for d in (b + 1)..17 {
                    assert_eq!(
                        c.decode(cw ^ (1 << a) ^ (1 << b) ^ (1 << d)),
                        None,
                        "triple at {a},{b},{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn misses_all_double_errors_exhaustively() {
        // The documented weakness, verified exhaustively: every 2-bit
        // pattern passes the check (and corrupts data silently unless both
        // flips hit the parity bit… which is impossible for 2 distinct).
        let c = Parity::new(16);
        let cw = c.encode(0x1234);
        for a in 0..17u32 {
            for b in (a + 1)..17 {
                assert!(c.decode(cw ^ (1 << a) ^ (1 << b)).is_some(), "{a},{b}");
            }
        }
    }

    #[test]
    fn full_width_64() {
        let c = Parity::new(64);
        let cw = c.encode(u64::MAX);
        assert_eq!(c.decode(cw), Some(u64::MAX));
        assert_eq!(c.decode(cw ^ (1 << 64)), None, "parity-bit flip detected");
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_zero_width() {
        Parity::new(0);
    }

    #[test]
    fn display() {
        assert_eq!(Parity::new(32).to_string(), "(33,32) even parity");
    }
}
