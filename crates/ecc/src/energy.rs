//! Energy overhead models for the protection hardware.
//!
//! The paper accounts ECC cost the way Wang et al. (JETTA 2010) do: extra
//! bits read/written per access (39 instead of 32), plus the energy of
//! generating the code word on writes and checking/correcting on reads.
//! [`EccEnergyModel`] derives those from the *actual gate counts* of a
//! [`Secded`] (or interleaved) instance — the XOR trees are enumerable from
//! the generated parity-check matrix — times a per-gate switching energy
//! taken from the technology, scaled quadratically with supply voltage.

use crate::bch::BchQuad;
use crate::interleave::InterleavedCode;
use crate::secded::Secded;
use std::fmt;

/// Per-access energy overheads of a protection scheme at a given supply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessOverhead {
    /// Multiplier on the memory array's per-access energy from storing
    /// codeword bits instead of data bits (e.g. 39/32).
    pub bit_factor: f64,
    /// Logic energy added to each write (encoder), in joules.
    pub write_logic_j: f64,
    /// Logic energy added to each read (syndrome + correction), in joules.
    pub read_logic_j: f64,
}

/// Gate-count-based ECC energy model.
///
/// # Example
///
/// ```
/// use ntc_ecc::{EccEnergyModel, Secded};
///
/// # fn main() -> Result<(), ntc_ecc::secded::CodeError> {
/// let code = Secded::new(32)?;
/// // 0.5 fJ per XOR at the 1.1 V reference supply.
/// let model = EccEnergyModel::new(0.5e-15, 1.1);
/// let at_nominal = model.secded_overhead(&code, 1.1);
/// let at_ntv = model.secded_overhead(&code, 0.44);
/// // Quadratic voltage scaling: (0.44/1.1)² = 0.16.
/// assert!((at_ntv.write_logic_j / at_nominal.write_logic_j - 0.16).abs() < 1e-12);
/// // The dominant cost is the 39/32 extra array bits.
/// assert!((at_nominal.bit_factor - 39.0 / 32.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccEnergyModel {
    xor_energy_j: f64,
    vref: f64,
}

impl EccEnergyModel {
    /// Creates a model from the switching energy of one two-input XOR gate
    /// at the reference supply `vref` (volts).
    ///
    /// # Panics
    ///
    /// Panics if either argument is not finite and positive.
    pub fn new(xor_energy_j: f64, vref: f64) -> Self {
        assert!(
            xor_energy_j.is_finite() && xor_energy_j > 0.0,
            "XOR energy must be positive, got {xor_energy_j}"
        );
        assert!(
            vref.is_finite() && vref > 0.0,
            "reference voltage must be positive, got {vref}"
        );
        Self { xor_energy_j, vref }
    }

    /// A 40 nm LP default: ~0.5 fJ per XOR at 1.1 V.
    pub fn n40lp_default() -> Self {
        Self::new(0.5e-15, 1.1)
    }

    /// Energy of one XOR at supply `vdd` (quadratic scaling).
    pub fn xor_energy(&self, vdd: f64) -> f64 {
        let r = vdd / self.vref;
        self.xor_energy_j * r * r
    }

    /// Per-access overheads of a plain SECDED word at supply `vdd`.
    ///
    /// The read path runs the syndrome tree plus, on average, the correction
    /// network; the correction side (decoder priority logic + flip) is
    /// charged as an extra 50 % of the syndrome tree, following the
    /// decoder-vs-encoder area ratios reported for Hsiao decoders.
    pub fn secded_overhead(&self, code: &Secded, vdd: f64) -> AccessOverhead {
        let e = self.xor_energy(vdd);
        let enc = code.encoder_xor_count() as f64 * e;
        let syn = code.syndrome_xor_count() as f64 * e;
        AccessOverhead {
            bit_factor: code.codeword_bits() as f64 / code.data_bits() as f64,
            write_logic_j: enc,
            read_logic_j: syn * 1.5,
        }
    }

    /// Per-access overheads of an interleaved protected-buffer word at
    /// supply `vdd`: all lanes' encoders/decoders in parallel.
    pub fn interleaved_overhead(&self, code: &InterleavedCode, vdd: f64) -> AccessOverhead {
        let lane = self.secded_overhead(code.lane_code(), vdd);
        AccessOverhead {
            bit_factor: code.overhead(),
            write_logic_j: lane.write_logic_j * code.lanes() as f64,
            read_logic_j: lane.read_logic_j * code.lanes() as f64,
        }
    }

    /// Per-access overheads of the (57,32) quad-correcting BCH buffer at
    /// supply `vdd`: exact encoder gate count, decoder charged at the
    /// BM+Chien-to-syndrome ratio.
    pub fn bch_quad_overhead(&self, code: &BchQuad, vdd: f64) -> AccessOverhead {
        let e = self.xor_energy(vdd);
        let enc = code.encoder_xor_count() as f64 * e;
        AccessOverhead {
            bit_factor: code.codeword_bits() as f64 / code.data_bits() as f64,
            write_logic_j: enc,
            read_logic_j: enc * code.decoder_syndrome_ratio(),
        }
    }

    /// No-protection baseline: unit bit factor, zero logic energy.
    pub fn none_overhead(&self) -> AccessOverhead {
        AccessOverhead {
            bit_factor: 1.0,
            write_logic_j: 0.0,
            read_logic_j: 0.0,
        }
    }
}

impl fmt::Display for EccEnergyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ECC energy model ({:.2} fJ/XOR @ {:.2} V)",
            self.xor_energy_j * 1e15,
            self.vref
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_scaling_is_quadratic() {
        let m = EccEnergyModel::n40lp_default();
        assert!((m.xor_energy(0.55) / m.xor_energy(1.1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn secded_overheads() {
        let m = EccEnergyModel::n40lp_default();
        let c = Secded::new(32).unwrap();
        let o = m.secded_overhead(&c, 1.1);
        assert!((o.bit_factor - 1.21875).abs() < 1e-9);
        // 89 encoder XORs at 0.5 fJ = 44.5 fJ.
        assert!((o.write_logic_j - 44.5e-15).abs() < 1e-18);
        assert!(o.read_logic_j > o.write_logic_j, "read path includes correction");
    }

    #[test]
    fn interleaved_costs_more_bits_than_plain() {
        let m = EccEnergyModel::n40lp_default();
        let plain = m.secded_overhead(&Secded::new(32).unwrap(), 0.9);
        let inter = m.interleaved_overhead(&InterleavedCode::new(32, 4).unwrap(), 0.9);
        assert!(inter.bit_factor > plain.bit_factor);
    }

    #[test]
    fn bch_quad_costs_more_logic_than_interleaved() {
        let m = EccEnergyModel::n40lp_default();
        let quad = m.bch_quad_overhead(&BchQuad::new(), 0.9);
        let inter = m.interleaved_overhead(&InterleavedCode::new(32, 4).unwrap(), 0.9);
        // More stored bits, heavier decoder — the price of any-4 correction.
        assert!(quad.bit_factor > 1.7 && quad.bit_factor < 1.8);
        assert!(quad.read_logic_j > inter.read_logic_j);
    }

    #[test]
    fn none_overhead_is_free() {
        let m = EccEnergyModel::n40lp_default();
        let o = m.none_overhead();
        assert_eq!(o.bit_factor, 1.0);
        assert_eq!(o.write_logic_j, 0.0);
        assert_eq!(o.read_logic_j, 0.0);
    }

    #[test]
    #[should_panic(expected = "XOR energy")]
    fn rejects_zero_energy() {
        EccEnergyModel::new(0.0, 1.1);
    }

    #[test]
    fn display_nonempty() {
        assert!(!EccEnergyModel::n40lp_default().to_string().is_empty());
    }
}
