//! Shared typed wire model for the HTTP surface and the CLI.
//!
//! Every request and response body that crosses a process boundary —
//! `ntc-serve` handlers, the `repro` subcommands, the load generator —
//! is built from the types in this one module, so the wire format cannot
//! drift between producers: a body is always serialized by the same
//! `to_json_value()` and parsed by the same `from_json_value()`.
//!
//! The DTOs are:
//!
//! * [`QueryRequest`] / [`QueryResponse`] — the `/v1/query` point
//!   lookups (`ber`, `vmin`, `energy`), with an optional client `id`
//!   echoed back per item so batched responses can be correlated.
//! * [`RunRequest`] — the `/v1/run` experiment trigger.
//! * [`OptimizeRequest`] / [`OptimizeResponse`] — the design-space
//!   autotuner. Requests are **canonicalized at parse time** (axis
//!   candidate lists sorted and deduplicated), so two requests naming
//!   the same design space in different enumeration orders are the same
//!   request: same [`OptimizeRequest::request_hash`], same memo entry,
//!   same byte-identical response.
//! * [`ErrorBody`] — the stable `{"error":{kind,message}}` envelope.
//!
//! [`ENDPOINTS`] is the machine-readable route table served by
//! `GET /v1/api`; the serve e2e suite drives every row, so the listing
//! cannot drift from the handlers.

use crate::artifact::json::JsonValue;
use crate::error::NtcError;
use crate::fit::{Scheme, VoltageGrid};
use crate::repro::Scale;
use ntc_sram::styles::CellStyle;

// ---------------------------------------------------------------------
// Field-level parse helpers (shared by every DTO).
// ---------------------------------------------------------------------

/// Required string field of a JSON object.
pub fn str_field<'a>(obj: &'a JsonValue, field: &str) -> Result<&'a str, NtcError> {
    match obj.get(field) {
        None => Err(NtcError::missing_field(field)),
        Some(v) => v
            .as_str()
            .ok_or_else(|| NtcError::invalid_param(field, "expected a string")),
    }
}

/// Required finite number field of a JSON object.
pub fn num_field(obj: &JsonValue, field: &str) -> Result<f64, NtcError> {
    match obj.get(field) {
        None => Err(NtcError::missing_field(field)),
        Some(v) => v
            .as_num()
            .filter(|v| v.is_finite())
            .ok_or_else(|| NtcError::invalid_param(field, "expected a finite number")),
    }
}

/// Optional finite number field (`null` counts as absent).
pub fn optional_num(obj: &JsonValue, field: &str) -> Result<Option<f64>, NtcError> {
    match obj.get(field) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_num()
            .filter(|v| v.is_finite())
            .map(Some)
            .ok_or_else(|| NtcError::invalid_param(field, "expected a finite number")),
    }
}

/// Optional string field (`null` counts as absent).
pub fn optional_str(obj: &JsonValue, field: &str) -> Result<Option<String>, NtcError> {
    match obj.get(field) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| NtcError::invalid_param(field, "expected a string")),
    }
}

/// Validates a strictly positive value.
pub fn positive(field: &str, v: f64) -> Result<f64, NtcError> {
    if v > 0.0 {
        Ok(v)
    } else {
        Err(NtcError::invalid_param(field, format!("must be positive, got {v}")))
    }
}

fn non_negative_int(field: &str, v: f64) -> Result<u64, NtcError> {
    if v >= 0.0 && v.fract() == 0.0 && v <= 2f64.powi(53) {
        Ok(v as u64)
    } else {
        Err(NtcError::invalid_param(
            field,
            format!("expected a non-negative integer, got {v}"),
        ))
    }
}

// ---------------------------------------------------------------------
// Enumerations with stable wire names.
// ---------------------------------------------------------------------

/// Which failure law family a BER query reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LawKind {
    /// Eq. 5: access errors vs supply.
    Access,
    /// Eq. 4: retention errors vs supply.
    Retention,
}

impl LawKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            LawKind::Access => "access",
            LawKind::Retention => "retention",
        }
    }
}

/// Which characterized memory a BER query targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Memory {
    /// The commercial 40 nm macro.
    Commercial40,
    /// The cell-based 40 nm macro.
    CellBased40,
    /// The cell-based 65 nm macro (retention law only).
    CellBased65,
}

impl Memory {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Memory::Commercial40 => "commercial_40nm",
            Memory::CellBased40 => "cell_based_40nm",
            Memory::CellBased65 => "cell_based_65nm",
        }
    }

    /// Parses a wire name; the error names `field`.
    pub fn parse(s: &str, field: &str) -> Result<Memory, NtcError> {
        match s {
            "commercial_40nm" => Ok(Memory::Commercial40),
            "cell_based_40nm" => Ok(Memory::CellBased40),
            "cell_based_65nm" => Ok(Memory::CellBased65),
            other => Err(NtcError::invalid_param(
                field,
                format!("unknown memory `{other}` — one of commercial_40nm, cell_based_40nm, cell_based_65nm"),
            )),
        }
    }
}

/// Which SoC energy model an energy query evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnergyModel {
    /// COTS-memory 40 nm signal processor (Fig. 1 upper curve).
    Cots40,
    /// Cell-based-memory variant (Fig. 1 lower curve).
    CellBased40,
}

impl EnergyModel {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            EnergyModel::Cots40 => "cots_40nm",
            EnergyModel::CellBased40 => "cell_based_40nm",
        }
    }
}

/// Stable wire name of a mitigation scheme.
pub fn scheme_str(s: Scheme) -> &'static str {
    match s {
        Scheme::NoMitigation => "no_mitigation",
        Scheme::Secded => "secded",
        Scheme::Ocean => "ocean",
    }
}

/// Parses a mitigation scheme wire name (`ecc` is a `secded` alias).
pub fn parse_scheme(s: &str) -> Result<Scheme, NtcError> {
    match s {
        "no_mitigation" => Ok(Scheme::NoMitigation),
        "secded" | "ecc" => Ok(Scheme::Secded),
        "ocean" => Ok(Scheme::Ocean),
        other => Err(NtcError::invalid_param(
            "scheme",
            format!("unknown scheme `{other}` — one of no_mitigation, secded, ocean"),
        )),
    }
}

/// Stable wire name of a voltage grid.
pub fn grid_str(g: VoltageGrid) -> &'static str {
    match g {
        VoltageGrid::PaperGrid => "paper",
        // `CeilStep` is an internal solver knob; `parse_grid` never
        // produces it, so no DTO ever carries it onto the wire.
        VoltageGrid::Exact | VoltageGrid::CeilStep(_) => "exact",
    }
}

/// Parses a voltage grid wire name.
pub fn parse_grid(s: &str) -> Result<VoltageGrid, NtcError> {
    match s {
        "paper" => Ok(VoltageGrid::PaperGrid),
        "exact" => Ok(VoltageGrid::Exact),
        other => Err(NtcError::invalid_param(
            "grid",
            format!("expected \"paper\" or \"exact\", got \"{other}\""),
        )),
    }
}

/// Stable wire name of a run scale.
pub fn scale_str(s: Scale) -> &'static str {
    s.name()
}

/// Parses a run scale; absent defaults to [`Scale::Quick`], matching
/// the server's historical `/run` behavior.
pub fn parse_scale(s: Option<&str>) -> Result<Scale, NtcError> {
    match s {
        None | Some("quick") => Ok(Scale::Quick),
        Some("paper") => Ok(Scale::Paper),
        Some(other) => Err(NtcError::invalid_param(
            "scale",
            format!("expected \"quick\" or \"paper\", got \"{other}\""),
        )),
    }
}

/// Stable wire name of a cell family in the optimizer design space.
pub fn cell_style_str(s: CellStyle) -> &'static str {
    match s {
        CellStyle::Commercial6T => "commercial_6t",
        CellStyle::Custom6T => "custom_6t",
        CellStyle::CellBasedLatch65 => "cell_based_latch_65",
        CellStyle::CellBasedAoi => "cell_based_aoi",
    }
}

/// Parses a cell family wire name. The 65 nm latch family is rejected:
/// the optimizer evaluates everything on the 40 nm technology card.
pub fn parse_cell_style(s: &str) -> Result<CellStyle, NtcError> {
    match s {
        "commercial_6t" => Ok(CellStyle::Commercial6T),
        "custom_6t" => Ok(CellStyle::Custom6T),
        "cell_based_aoi" => Ok(CellStyle::CellBasedAoi),
        "cell_based_latch_65" => Err(NtcError::invalid_param(
            "cells",
            "cell_based_latch_65 is a 65 nm family; the optimizer runs on the 40 nm card",
        )),
        other => Err(NtcError::invalid_param(
            "cells",
            format!("unknown cell family `{other}` — one of commercial_6t, custom_6t, cell_based_aoi"),
        )),
    }
}

// ---------------------------------------------------------------------
// FNV-64 request hashing.
// ---------------------------------------------------------------------

/// FNV-1a 64-bit hash, the memoization key for canonical request bytes.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// ErrorBody
// ---------------------------------------------------------------------

/// The stable error envelope every endpoint returns on failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// Stable machine-readable kind (snake_case).
    pub kind: String,
    /// Human-readable message.
    pub message: String,
}

impl ErrorBody {
    /// Builds an envelope from parts.
    pub fn new(kind: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            kind: kind.into(),
            message: message.into(),
        }
    }

    /// Builds the envelope for an [`NtcError`].
    pub fn from_error(err: &NtcError) -> Self {
        Self::new(err.kind(), err.to_string())
    }

    /// `{"error":{"kind":...,"message":...}}`.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(vec![(
            "error".into(),
            JsonValue::Obj(vec![
                ("kind".into(), JsonValue::Str(self.kind.clone())),
                ("message".into(), JsonValue::Str(self.message.clone())),
            ]),
        )])
    }

    /// Compact serialized form.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.to_json_value().write_compact(&mut s);
        s
    }

    /// Parses the envelope back out of a response body.
    pub fn from_json(text: &str) -> Result<Self, NtcError> {
        let v = crate::artifact::json::parse(text)?;
        let err = v
            .get("error")
            .ok_or_else(|| NtcError::missing_field("error"))?;
        Ok(Self {
            kind: str_field(err, "kind")?.to_string(),
            message: str_field(err, "message")?.to_string(),
        })
    }
}

// ---------------------------------------------------------------------
// RunRequest
// ---------------------------------------------------------------------

/// `POST /v1/run` body: run one registry experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRequest {
    /// Registry experiment name (e.g. `"table2"`).
    pub id: crate::repro::ExperimentId,
    /// Monte-Carlo scale; the wire default is `quick`.
    pub scale: Scale,
    /// Seed override; the server applies its default when absent.
    pub seed: Option<u64>,
}

impl RunRequest {
    /// Parses a request body (already-parsed JSON).
    pub fn from_json_value(v: &JsonValue) -> Result<Self, NtcError> {
        if !matches!(v, JsonValue::Obj(_)) {
            return Err(NtcError::invalid_param("run", "expected a JSON object"));
        }
        let id = str_field(v, "id")?.parse::<crate::repro::ExperimentId>()?;
        let scale = parse_scale(v.get("scale").and_then(JsonValue::as_str))?;
        if matches!(v.get("scale"), Some(s) if s.as_str().is_none()) {
            return Err(NtcError::invalid_param("scale", "expected a string"));
        }
        let seed = match optional_num(v, "seed")? {
            None => None,
            Some(n) => Some(non_negative_int("seed", n)?),
        };
        Ok(Self { id, scale, seed })
    }

    /// Serializes the request in canonical field order.
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("id".into(), JsonValue::Str(self.id.as_str().into())),
            ("scale".into(), JsonValue::Str(scale_str(self.scale).into())),
        ];
        if let Some(seed) = self.seed {
            fields.push(("seed".into(), JsonValue::num(seed as f64)));
        }
        JsonValue::Obj(fields)
    }

    /// Compact serialized form, for clients assembling request bodies.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.to_json_value().write_compact(&mut s);
        s
    }
}

// ---------------------------------------------------------------------
// QueryRequest / QueryResponse
// ---------------------------------------------------------------------

/// The model lookup a query performs (the `kind` discriminator).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// Bit error rate at a voltage.
    Ber {
        /// Law family (Eq. 4 or Eq. 5).
        law: LawKind,
        /// Which memory's calibration.
        memory: Memory,
        /// Supply voltage, volts.
        vdd: f64,
    },
    /// Minimum supply for a scheme under a FIT budget.
    Vmin {
        /// Mitigation scheme.
        scheme: Scheme,
        /// Which memory's access law constrains errors.
        memory: Memory,
        /// FIT budget per transaction.
        fit_target: f64,
        /// Required clock, if performance-constrained.
        frequency_hz: Option<f64>,
        /// Voltage grid for the reported operating point.
        grid: VoltageGrid,
    },
    /// Energy/power breakdown at an operating point.
    Energy {
        /// Which SoC model.
        model: EnergyModel,
        /// Supply voltage, volts.
        vdd: f64,
        /// Clock to evaluate at (defaults to `f_max(vdd)`).
        frequency_hz: Option<f64>,
    },
}

/// One `/v1/query` item: the lookup plus an optional client-chosen id
/// echoed back in the matching response item.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Client correlation id, echoed per response item.
    pub id: Option<String>,
    /// The lookup to perform.
    pub kind: QueryKind,
}

impl QueryRequest {
    /// Parses one query object (already-parsed JSON).
    pub fn from_json_value(v: &JsonValue) -> Result<Self, NtcError> {
        if !matches!(v, JsonValue::Obj(_)) {
            return Err(NtcError::invalid_param("query", "expected a JSON object"));
        }
        let id = optional_str(v, "id")?;
        let kind = match str_field(v, "kind")? {
            "ber" => {
                let law = match str_field(v, "law")? {
                    "access" => LawKind::Access,
                    "retention" => LawKind::Retention,
                    other => {
                        return Err(NtcError::invalid_param(
                            "law",
                            format!("unknown law `{other}` — one of access, retention"),
                        ))
                    }
                };
                let memory = Memory::parse(str_field(v, "memory")?, "memory")?;
                if law == LawKind::Access && memory == Memory::CellBased65 {
                    return Err(NtcError::invalid_param(
                        "memory",
                        "no access law is characterized for cell_based_65nm (retention only)",
                    ));
                }
                let vdd = positive("vdd", num_field(v, "vdd")?)?;
                QueryKind::Ber { law, memory, vdd }
            }
            "vmin" => {
                let scheme = parse_scheme(str_field(v, "scheme")?)?;
                let memory = match v.get("memory") {
                    None => Memory::CellBased40,
                    Some(_) => Memory::parse(str_field(v, "memory")?, "memory")?,
                };
                if memory == Memory::CellBased65 {
                    return Err(NtcError::invalid_param(
                        "memory",
                        "vmin solves against an access law; cell_based_65nm has none",
                    ));
                }
                let fit_target = match optional_num(v, "fit_target")? {
                    None => 1e-15,
                    Some(t) if t > 0.0 && t < 1.0 => t,
                    Some(t) => {
                        return Err(NtcError::invalid_param(
                            "fit_target",
                            format!("must be in (0, 1), got {t}"),
                        ))
                    }
                };
                let frequency_hz = match optional_num(v, "frequency_hz")? {
                    None => None,
                    Some(f) => Some(positive("frequency_hz", f)?),
                };
                let grid = match v.get("grid").map(|g| g.as_str()) {
                    None => VoltageGrid::PaperGrid,
                    Some(Some(s)) => parse_grid(s)?,
                    Some(None) => {
                        return Err(NtcError::invalid_param("grid", "expected a string"))
                    }
                };
                QueryKind::Vmin { scheme, memory, fit_target, frequency_hz, grid }
            }
            "energy" => {
                let model = match str_field(v, "model")? {
                    "cots_40nm" => EnergyModel::Cots40,
                    "cell_based_40nm" => EnergyModel::CellBased40,
                    other => {
                        return Err(NtcError::invalid_param(
                            "model",
                            format!("unknown model `{other}` — one of cots_40nm, cell_based_40nm"),
                        ))
                    }
                };
                let vdd = positive("vdd", num_field(v, "vdd")?)?;
                let frequency_hz = match optional_num(v, "frequency_hz")? {
                    None => None,
                    Some(f) => Some(positive("frequency_hz", f)?),
                };
                QueryKind::Energy { model, vdd, frequency_hz }
            }
            other => {
                return Err(NtcError::Unsupported {
                    what: format!("query kind `{other}` — one of ber, vmin, energy"),
                })
            }
        };
        Ok(Self { id, kind })
    }

    /// Serializes the request in canonical field order (the shape the
    /// load generator and CLI clients send).
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        if let Some(id) = &self.id {
            fields.push(("id".into(), JsonValue::Str(id.clone())));
        }
        match &self.kind {
            QueryKind::Ber { law, memory, vdd } => {
                fields.push(("kind".into(), JsonValue::Str("ber".into())));
                fields.push(("law".into(), JsonValue::Str(law.as_str().into())));
                fields.push(("memory".into(), JsonValue::Str(memory.as_str().into())));
                fields.push(("vdd".into(), JsonValue::num(*vdd)));
            }
            QueryKind::Vmin { scheme, memory, fit_target, frequency_hz, grid } => {
                fields.push(("kind".into(), JsonValue::Str("vmin".into())));
                fields.push(("scheme".into(), JsonValue::Str(scheme_str(*scheme).into())));
                fields.push(("memory".into(), JsonValue::Str(memory.as_str().into())));
                fields.push(("fit_target".into(), JsonValue::num(*fit_target)));
                if let Some(f) = frequency_hz {
                    fields.push(("frequency_hz".into(), JsonValue::num(*f)));
                }
                fields.push(("grid".into(), JsonValue::Str(grid_str(*grid).into())));
            }
            QueryKind::Energy { model, vdd, frequency_hz } => {
                fields.push(("kind".into(), JsonValue::Str("energy".into())));
                fields.push(("model".into(), JsonValue::Str(model.as_str().into())));
                fields.push(("vdd".into(), JsonValue::num(*vdd)));
                if let Some(f) = frequency_hz {
                    fields.push(("frequency_hz".into(), JsonValue::num(*f)));
                }
            }
        }
        JsonValue::Obj(fields)
    }

    /// Compact serialized form.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.to_json_value().write_compact(&mut s);
        s
    }
}

/// One `/v1/query` response item, typed per kind.
///
/// Field order in the serialized form is frozen — it predates this
/// module and baselines/clients grep it — so each variant's
/// `to_json_value` emits exactly the historical layout, with the echoed
/// `id` (when the request carried one) prepended.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// `ber` result.
    Ber {
        /// Echoed client id.
        id: Option<String>,
        /// Law family evaluated.
        law: LawKind,
        /// Memory evaluated.
        memory: Memory,
        /// Supply voltage, volts.
        vdd: f64,
        /// Per-bit failure probability.
        p_bit: f64,
    },
    /// `vmin` result.
    Vmin {
        /// Echoed client id.
        id: Option<String>,
        /// Mitigation scheme.
        scheme: Scheme,
        /// Memory evaluated.
        memory: Memory,
        /// FIT budget per transaction.
        fit_target: f64,
        /// Tolerable per-bit error probability under the scheme.
        max_p_bit: f64,
        /// Clock constraint echoed when the request had one.
        frequency_hz: Option<f64>,
        /// Error-constrained minimum supply, volts.
        error_constrained: f64,
        /// Performance-constrained supply, volts (when constrained).
        performance_constrained: Option<f64>,
        /// Operating point on the requested grid, volts.
        operating: f64,
    },
    /// `energy` result.
    Energy {
        /// Echoed client id.
        id: Option<String>,
        /// SoC model evaluated.
        model: EnergyModel,
        /// Supply voltage, volts.
        vdd: f64,
        /// Maximum clock at `vdd`, Hz.
        f_max_hz: f64,
        /// Energy per cycle at `f_max`, joules.
        energy_per_cycle_j: f64,
        /// Total energy per cycle at the operating point, joules.
        total_j: f64,
        /// Dynamic component, joules.
        dynamic_j: f64,
        /// Leakage component, joules.
        leakage_j: f64,
        /// Power at the operating point, watts.
        power_w: f64,
    },
}

impl QueryResponse {
    /// Serializes the response item in the frozen field order.
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        let id = match self {
            QueryResponse::Ber { id, .. }
            | QueryResponse::Vmin { id, .. }
            | QueryResponse::Energy { id, .. } => id,
        };
        if let Some(id) = id {
            fields.push(("id".into(), JsonValue::Str(id.clone())));
        }
        match self {
            QueryResponse::Ber { law, memory, vdd, p_bit, .. } => {
                fields.push(("kind".into(), JsonValue::Str("ber".into())));
                fields.push(("law".into(), JsonValue::Str(law.as_str().into())));
                fields.push(("memory".into(), JsonValue::Str(memory.as_str().into())));
                fields.push(("vdd".into(), JsonValue::num(*vdd)));
                fields.push(("p_bit".into(), JsonValue::num(*p_bit)));
            }
            QueryResponse::Vmin {
                scheme,
                memory,
                fit_target,
                max_p_bit,
                frequency_hz,
                error_constrained,
                performance_constrained,
                operating,
                ..
            } => {
                fields.push(("kind".into(), JsonValue::Str("vmin".into())));
                fields.push(("scheme".into(), JsonValue::Str(scheme_str(*scheme).into())));
                fields.push(("memory".into(), JsonValue::Str(memory.as_str().into())));
                fields.push(("fit_target".into(), JsonValue::num(*fit_target)));
                fields.push(("max_p_bit".into(), JsonValue::num(*max_p_bit)));
                if let Some(f) = frequency_hz {
                    fields.push(("frequency_hz".into(), JsonValue::num(*f)));
                }
                fields.push(("error_constrained".into(), JsonValue::num(*error_constrained)));
                fields.push((
                    "performance_constrained".into(),
                    performance_constrained.map_or(JsonValue::Null, JsonValue::num),
                ));
                fields.push(("operating".into(), JsonValue::num(*operating)));
            }
            QueryResponse::Energy {
                model,
                vdd,
                f_max_hz,
                energy_per_cycle_j,
                total_j,
                dynamic_j,
                leakage_j,
                power_w,
                ..
            } => {
                fields.push(("kind".into(), JsonValue::Str("energy".into())));
                fields.push(("model".into(), JsonValue::Str(model.as_str().into())));
                fields.push(("vdd".into(), JsonValue::num(*vdd)));
                fields.push(("f_max_hz".into(), JsonValue::num(*f_max_hz)));
                fields.push(("energy_per_cycle_j".into(), JsonValue::num(*energy_per_cycle_j)));
                fields.push(("total_j".into(), JsonValue::num(*total_j)));
                fields.push(("dynamic_j".into(), JsonValue::num(*dynamic_j)));
                fields.push(("leakage_j".into(), JsonValue::num(*leakage_j)));
                fields.push(("power_w".into(), JsonValue::num(*power_w)));
            }
        }
        JsonValue::Obj(fields)
    }
}

// ---------------------------------------------------------------------
// OptimizeRequest / OptimizeResponse
// ---------------------------------------------------------------------

/// Axis length cap: keeps a hostile request from turning one POST into
/// an unbounded search.
const MAX_AXIS: usize = 64;

/// User weights on the optimizer objective. Terms are normalized to
/// O(1) engineering units before weighting: energy per access in pJ,
/// cycle time in ns, area in mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveWeights {
    /// Weight on energy per access (pJ).
    pub energy: f64,
    /// Weight on macro cycle time (ns).
    pub delay: f64,
    /// Weight on macro area (mm²).
    pub area: f64,
}

impl Default for ObjectiveWeights {
    /// Energy-only, the paper's Table 2 objective.
    fn default() -> Self {
        Self { energy: 1.0, delay: 0.0, area: 0.0 }
    }
}

/// Hard constraints every candidate design must satisfy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeConstraints {
    /// Required platform clock, Hz (the paper's performance constraint).
    pub frequency_hz: f64,
    /// FIT budget per transaction (Table 2 uses 1e-15).
    pub fit_target: f64,
    /// Minimum word count (data capacity floor), if any.
    pub min_words: Option<u32>,
}

/// The VDD axis: a bracketed interval plus the quantization grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VddRange {
    /// Lower bound, volts.
    pub lo: f64,
    /// Upper bound, volts.
    pub hi: f64,
    /// `paper` snaps candidates to the 110 mV grid; `exact` refines
    /// continuously by golden section.
    pub grid: VoltageGrid,
}

/// Candidate sets per discrete axis. Lists are canonicalized (sorted,
/// deduplicated) at parse time, so enumeration order never matters.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpaceSpec {
    /// Bank counts (powers of two).
    pub banks: Vec<u32>,
    /// Word counts.
    pub words: Vec<u32>,
    /// Cell families (40 nm card).
    pub cells: Vec<CellStyle>,
    /// Mitigation schemes.
    pub schemes: Vec<Scheme>,
    /// Supply voltage axis.
    pub vdd: VddRange,
}

impl DesignSpaceSpec {
    /// The paper's design space: the Fig. 1/Table 2 cell families, the
    /// banking ablation's bank axis, scratchpad-scale word counts, all
    /// three mitigation schemes, and the paper's 110 mV voltage grid.
    pub fn paper() -> Self {
        Self {
            banks: vec![1, 2, 4, 8, 16, 32],
            words: vec![512, 1024, 2048, 4096, 8192],
            cells: vec![CellStyle::CellBasedAoi, CellStyle::Commercial6T, CellStyle::Custom6T],
            schemes: vec![Scheme::NoMitigation, Scheme::Secded, Scheme::Ocean],
            vdd: VddRange { lo: 0.2, hi: 1.2, grid: VoltageGrid::PaperGrid },
        }
    }

    fn canonicalize(&mut self) {
        self.banks.sort_unstable();
        self.banks.dedup();
        self.words.sort_unstable();
        self.words.dedup();
        self.cells.sort_by_key(|c| cell_style_str(*c));
        self.cells.dedup();
        self.schemes.sort_by_key(|s| match s {
            Scheme::NoMitigation => 0,
            Scheme::Secded => 1,
            Scheme::Ocean => 2,
        });
        self.schemes.dedup();
    }
}

/// `POST /v1/optimize` body: a constrained design-space search.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// Objective weights.
    pub objective: ObjectiveWeights,
    /// Hard constraints.
    pub constraints: OptimizeConstraints,
    /// The candidate space.
    pub space: DesignSpaceSpec,
    /// Root seed for the optimizer restarts.
    pub seed: u64,
    /// Restart count (1..=64).
    pub restarts: u32,
}

impl OptimizeRequest {
    /// The paper constraint set at one clock: paper design space,
    /// energy-only objective, 1e-15 FIT, 8 KB capacity floor.
    pub fn paper(frequency_hz: f64) -> Self {
        Self {
            objective: ObjectiveWeights::default(),
            constraints: OptimizeConstraints {
                frequency_hz,
                fit_target: 1e-15,
                min_words: Some(2048),
            },
            space: DesignSpaceSpec::paper(),
            seed: 2014,
            restarts: 8,
        }
    }

    /// Sorts and deduplicates every axis candidate list. `from_json_value`
    /// does this automatically; callers constructing requests in code
    /// should call it before hashing.
    pub fn canonicalize(&mut self) {
        self.space.canonicalize();
    }

    /// Parses and canonicalizes a request body (already-parsed JSON).
    pub fn from_json_value(v: &JsonValue) -> Result<Self, NtcError> {
        if !matches!(v, JsonValue::Obj(_)) {
            return Err(NtcError::invalid_param("optimize", "expected a JSON object"));
        }
        let objective = match v.get("objective") {
            None => ObjectiveWeights::default(),
            Some(o) if matches!(o, JsonValue::Obj(_)) => {
                let w = ObjectiveWeights {
                    energy: optional_num(o, "energy")?.unwrap_or(1.0),
                    delay: optional_num(o, "delay")?.unwrap_or(0.0),
                    area: optional_num(o, "area")?.unwrap_or(0.0),
                };
                for (name, x) in [("energy", w.energy), ("delay", w.delay), ("area", w.area)] {
                    if x < 0.0 {
                        return Err(NtcError::invalid_param(
                            "objective",
                            format!("weight `{name}` must be non-negative, got {x}"),
                        ));
                    }
                }
                if w.energy + w.delay + w.area <= 0.0 {
                    return Err(NtcError::invalid_param(
                        "objective",
                        "at least one weight must be positive",
                    ));
                }
                w
            }
            Some(_) => {
                return Err(NtcError::invalid_param("objective", "expected a JSON object"))
            }
        };
        let constraints = {
            let c = v
                .get("constraints")
                .ok_or_else(|| NtcError::missing_field("constraints"))?;
            if !matches!(c, JsonValue::Obj(_)) {
                return Err(NtcError::invalid_param("constraints", "expected a JSON object"));
            }
            let frequency_hz = positive("frequency_hz", num_field(c, "frequency_hz")?)?;
            let fit_target = match optional_num(c, "fit_target")? {
                None => 1e-15,
                Some(t) if t > 0.0 && t < 1.0 => t,
                Some(t) => {
                    return Err(NtcError::invalid_param(
                        "fit_target",
                        format!("must be in (0, 1), got {t}"),
                    ))
                }
            };
            let min_words = match optional_num(c, "min_words")? {
                None => None,
                Some(n) => {
                    let n = non_negative_int("min_words", n)?;
                    if n == 0 || n > u64::from(u32::MAX) {
                        return Err(NtcError::invalid_param(
                            "min_words",
                            format!("must be in 1..=2^32-1, got {n}"),
                        ));
                    }
                    Some(n as u32)
                }
            };
            OptimizeConstraints { frequency_hz, fit_target, min_words }
        };
        let space = match v.get("space") {
            None => DesignSpaceSpec::paper(),
            Some(s) if matches!(s, JsonValue::Obj(_)) => {
                let paper = DesignSpaceSpec::paper();
                let banks = parse_u32_axis(s, "banks", &paper.banks)?;
                for &b in &banks {
                    if !b.is_power_of_two() {
                        return Err(NtcError::invalid_param(
                            "banks",
                            format!("bank counts must be powers of two, got {b}"),
                        ));
                    }
                }
                let words = parse_u32_axis(s, "words", &paper.words)?;
                let cells = match s.get("cells") {
                    None => paper.cells.clone(),
                    Some(JsonValue::Arr(items)) => {
                        check_axis_len("cells", items.len())?;
                        items
                            .iter()
                            .map(|i| {
                                i.as_str()
                                    .ok_or_else(|| {
                                        NtcError::invalid_param("cells", "expected strings")
                                    })
                                    .and_then(parse_cell_style)
                            })
                            .collect::<Result<Vec<_>, _>>()?
                    }
                    Some(_) => {
                        return Err(NtcError::invalid_param("cells", "expected an array"))
                    }
                };
                let schemes = match s.get("schemes") {
                    None => paper.schemes.clone(),
                    Some(JsonValue::Arr(items)) => {
                        check_axis_len("schemes", items.len())?;
                        items
                            .iter()
                            .map(|i| {
                                i.as_str()
                                    .ok_or_else(|| {
                                        NtcError::invalid_param("schemes", "expected strings")
                                    })
                                    .and_then(parse_scheme)
                            })
                            .collect::<Result<Vec<_>, _>>()?
                    }
                    Some(_) => {
                        return Err(NtcError::invalid_param("schemes", "expected an array"))
                    }
                };
                let vdd = match s.get("vdd") {
                    None => paper.vdd,
                    Some(r) if matches!(r, JsonValue::Obj(_)) => {
                        let lo = optional_num(r, "lo")?.unwrap_or(paper.vdd.lo);
                        let hi = optional_num(r, "hi")?.unwrap_or(paper.vdd.hi);
                        if !(lo > 0.0 && hi >= lo && hi <= 2.0) {
                            return Err(NtcError::invalid_param(
                                "vdd",
                                format!("need 0 < lo <= hi <= 2.0 V, got [{lo}, {hi}]"),
                            ));
                        }
                        let grid = match r.get("grid").and_then(JsonValue::as_str) {
                            None => paper.vdd.grid,
                            Some(g) => parse_grid(g)?,
                        };
                        VddRange { lo, hi, grid }
                    }
                    Some(_) => {
                        return Err(NtcError::invalid_param("vdd", "expected a JSON object"))
                    }
                };
                if banks.is_empty() || words.is_empty() || cells.is_empty() || schemes.is_empty()
                {
                    return Err(NtcError::invalid_param(
                        "space",
                        "every axis needs at least one candidate",
                    ));
                }
                DesignSpaceSpec { banks, words, cells, schemes, vdd }
            }
            Some(_) => return Err(NtcError::invalid_param("space", "expected a JSON object")),
        };
        let seed = match optional_num(v, "seed")? {
            None => 2014,
            Some(n) => non_negative_int("seed", n)?,
        };
        let restarts = match optional_num(v, "restarts")? {
            None => 8,
            Some(n) => {
                let n = non_negative_int("restarts", n)?;
                if !(1..=64).contains(&n) {
                    return Err(NtcError::invalid_param(
                        "restarts",
                        format!("must be in 1..=64, got {n}"),
                    ));
                }
                n as u32
            }
        };
        let mut req = Self { objective, constraints, space, seed, restarts };
        req.canonicalize();
        Ok(req)
    }

    /// Parses and canonicalizes a request from JSON text.
    pub fn from_json(text: &str) -> Result<Self, NtcError> {
        Self::from_json_value(&crate::artifact::json::parse(text)?)
    }

    /// Serializes the request in canonical field order. For a
    /// canonicalized request this rendering *is* the memoization key
    /// preimage.
    pub fn to_json_value(&self) -> JsonValue {
        let mut constraints = vec![
            ("frequency_hz".into(), JsonValue::num(self.constraints.frequency_hz)),
            ("fit_target".into(), JsonValue::num(self.constraints.fit_target)),
        ];
        if let Some(w) = self.constraints.min_words {
            constraints.push(("min_words".into(), JsonValue::num(f64::from(w))));
        }
        JsonValue::Obj(vec![
            (
                "objective".into(),
                JsonValue::Obj(vec![
                    ("energy".into(), JsonValue::num(self.objective.energy)),
                    ("delay".into(), JsonValue::num(self.objective.delay)),
                    ("area".into(), JsonValue::num(self.objective.area)),
                ]),
            ),
            ("constraints".into(), JsonValue::Obj(constraints)),
            (
                "space".into(),
                JsonValue::Obj(vec![
                    (
                        "banks".into(),
                        JsonValue::Arr(
                            self.space.banks.iter().map(|&b| JsonValue::num(f64::from(b))).collect(),
                        ),
                    ),
                    (
                        "words".into(),
                        JsonValue::Arr(
                            self.space.words.iter().map(|&w| JsonValue::num(f64::from(w))).collect(),
                        ),
                    ),
                    (
                        "cells".into(),
                        JsonValue::Arr(
                            self.space
                                .cells
                                .iter()
                                .map(|&c| JsonValue::Str(cell_style_str(c).into()))
                                .collect(),
                        ),
                    ),
                    (
                        "schemes".into(),
                        JsonValue::Arr(
                            self.space
                                .schemes
                                .iter()
                                .map(|&s| JsonValue::Str(scheme_str(s).into()))
                                .collect(),
                        ),
                    ),
                    (
                        "vdd".into(),
                        JsonValue::Obj(vec![
                            ("lo".into(), JsonValue::num(self.space.vdd.lo)),
                            ("hi".into(), JsonValue::num(self.space.vdd.hi)),
                            ("grid".into(), JsonValue::Str(grid_str(self.space.vdd.grid).into())),
                        ]),
                    ),
                ]),
            ),
            ("seed".into(), JsonValue::num(self.seed as f64)),
            ("restarts".into(), JsonValue::num(f64::from(self.restarts))),
        ])
    }

    /// Compact serialized form.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.to_json_value().write_compact(&mut s);
        s
    }

    /// FNV-64 over the canonical compact rendering — the memoization
    /// key shared by the server memo, the artifact store and the CLI.
    pub fn request_hash(&self) -> u64 {
        fnv64(self.to_json().as_bytes())
    }

    /// The hash formatted the way responses and store keys carry it.
    pub fn request_hash_hex(&self) -> String {
        format!("{:016x}", self.request_hash())
    }
}

fn check_axis_len(field: &str, len: usize) -> Result<(), NtcError> {
    if len > MAX_AXIS {
        return Err(NtcError::invalid_param(
            field,
            format!("at most {MAX_AXIS} candidates per axis, got {len}"),
        ));
    }
    Ok(())
}

fn parse_u32_axis(obj: &JsonValue, field: &str, default: &[u32]) -> Result<Vec<u32>, NtcError> {
    match obj.get(field) {
        None => Ok(default.to_vec()),
        Some(JsonValue::Arr(items)) => {
            check_axis_len(field, items.len())?;
            items
                .iter()
                .map(|i| {
                    let n = i
                        .as_num()
                        .filter(|n| n.is_finite())
                        .ok_or_else(|| NtcError::invalid_param(field, "expected numbers"))?;
                    let n = non_negative_int(field, n)?;
                    if n == 0 || n > 1 << 24 {
                        return Err(NtcError::invalid_param(
                            field,
                            format!("must be in 1..=2^24, got {n}"),
                        ));
                    }
                    Ok(n as u32)
                })
                .collect()
        }
        Some(_) => Err(NtcError::invalid_param(field, "expected an array")),
    }
}

/// The winning design point of an optimize run.
#[derive(Debug, Clone, PartialEq)]
pub struct BestDesign {
    /// Cell family.
    pub cell: CellStyle,
    /// Mitigation scheme.
    pub scheme: Scheme,
    /// Bank count.
    pub banks: u32,
    /// Word count.
    pub words: u32,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Energy per access at the constrained clock (access + leakage), pJ.
    pub energy_per_access_pj: f64,
    /// Macro cycle time at `vdd`, ns.
    pub cycle_time_ns: f64,
    /// Macro area, mm².
    pub area_mm2: f64,
    /// Macro f_max at `vdd`, Hz.
    pub f_max_hz: f64,
    /// Weighted objective value.
    pub objective: f64,
}

/// Convergence record of an optimize run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeConvergence {
    /// Restarts run.
    pub restarts: u32,
    /// Total coordinate sweeps.
    pub sweeps: u64,
    /// Total objective evaluations.
    pub evaluations: u64,
    /// Best objective per restart, in restart order (infeasible
    /// restarts report `null`).
    pub best_per_restart: Vec<f64>,
}

/// `POST /v1/optimize` response.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeResponse {
    /// Hex FNV-64 of the canonical request — the memoization key.
    pub request_hash: String,
    /// Whether any candidate satisfied the constraints.
    pub feasible: bool,
    /// The winning design (absent when infeasible).
    pub best: Option<BestDesign>,
    /// How the search converged.
    pub convergence: OptimizeConvergence,
}

impl OptimizeResponse {
    /// Schema tag carried in the serialized form.
    pub const SCHEMA: &'static str = "ntc.optimize.v1";

    /// Serializes the response in canonical field order.
    pub fn to_json_value(&self) -> JsonValue {
        let best = match &self.best {
            None => JsonValue::Null,
            Some(b) => JsonValue::Obj(vec![
                ("cell".into(), JsonValue::Str(cell_style_str(b.cell).into())),
                ("scheme".into(), JsonValue::Str(scheme_str(b.scheme).into())),
                ("banks".into(), JsonValue::num(f64::from(b.banks))),
                ("words".into(), JsonValue::num(f64::from(b.words))),
                ("vdd".into(), JsonValue::num(b.vdd)),
                ("energy_per_access_pj".into(), JsonValue::num(b.energy_per_access_pj)),
                ("cycle_time_ns".into(), JsonValue::num(b.cycle_time_ns)),
                ("area_mm2".into(), JsonValue::num(b.area_mm2)),
                ("f_max_hz".into(), JsonValue::num(b.f_max_hz)),
                ("objective".into(), JsonValue::num(b.objective)),
            ]),
        };
        JsonValue::Obj(vec![
            ("schema".into(), JsonValue::Str(Self::SCHEMA.into())),
            ("request_hash".into(), JsonValue::Str(self.request_hash.clone())),
            ("feasible".into(), JsonValue::Bool(self.feasible)),
            ("best".into(), best),
            (
                "convergence".into(),
                JsonValue::Obj(vec![
                    ("restarts".into(), JsonValue::num(f64::from(self.convergence.restarts))),
                    ("sweeps".into(), JsonValue::num(self.convergence.sweeps as f64)),
                    (
                        "evaluations".into(),
                        JsonValue::num(self.convergence.evaluations as f64),
                    ),
                    (
                        "best_per_restart".into(),
                        JsonValue::Arr(
                            self.convergence
                                .best_per_restart
                                .iter()
                                .map(|&v| {
                                    if v.is_finite() {
                                        JsonValue::num(v)
                                    } else {
                                        JsonValue::Null
                                    }
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// Compact serialized form — the exact bytes `POST /v1/optimize`
    /// returns and `repro optimize --out` writes.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.to_json_value().write_compact(&mut s);
        s
    }

    /// Parses a serialized response.
    pub fn from_json(text: &str) -> Result<Self, NtcError> {
        let v = crate::artifact::json::parse(text)?;
        let schema = str_field(&v, "schema")?;
        if schema != Self::SCHEMA {
            return Err(NtcError::Unsupported {
                what: format!("optimize response schema `{schema}`"),
            });
        }
        let request_hash = str_field(&v, "request_hash")?.to_string();
        let feasible = match v.get("feasible") {
            Some(JsonValue::Bool(b)) => *b,
            _ => return Err(NtcError::invalid_param("feasible", "expected a boolean")),
        };
        let best = match v.get("best") {
            None | Some(JsonValue::Null) => None,
            Some(b) => Some(BestDesign {
                cell: parse_cell_style(str_field(b, "cell")?)?,
                scheme: parse_scheme(str_field(b, "scheme")?)?,
                banks: num_field(b, "banks")? as u32,
                words: num_field(b, "words")? as u32,
                vdd: num_field(b, "vdd")?,
                energy_per_access_pj: num_field(b, "energy_per_access_pj")?,
                cycle_time_ns: num_field(b, "cycle_time_ns")?,
                area_mm2: num_field(b, "area_mm2")?,
                f_max_hz: num_field(b, "f_max_hz")?,
                objective: num_field(b, "objective")?,
            }),
        };
        let conv = v
            .get("convergence")
            .ok_or_else(|| NtcError::missing_field("convergence"))?;
        let best_per_restart = match conv.get("best_per_restart") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|i| i.as_num().unwrap_or(f64::INFINITY))
                .collect(),
            _ => Vec::new(),
        };
        Ok(Self {
            request_hash,
            feasible,
            best,
            convergence: OptimizeConvergence {
                restarts: num_field(conv, "restarts")? as u32,
                sweeps: num_field(conv, "sweeps")? as u64,
                evaluations: num_field(conv, "evaluations")? as u64,
                best_per_restart,
            },
        })
    }
}

// ---------------------------------------------------------------------
// Endpoint schema (GET /v1/api)
// ---------------------------------------------------------------------

/// One row of the versioned route table.
#[derive(Debug, Clone, Copy)]
pub struct EndpointSpec {
    /// HTTP method.
    pub method: &'static str,
    /// Canonical `/v1` path (`{id}` marks a path parameter).
    pub path: &'static str,
    /// Deprecated unversioned alias, served with a `Deprecation`
    /// header, if one exists.
    pub legacy: Option<&'static str>,
    /// Request DTO name, if the endpoint takes a body.
    pub request: Option<&'static str>,
    /// Response DTO name.
    pub response: &'static str,
    /// One-line description.
    pub description: &'static str,
}

/// Every route the server answers, canonical `/v1` form first.
pub const ENDPOINTS: &[EndpointSpec] = &[
    EndpointSpec {
        method: "GET",
        path: "/v1/api",
        legacy: None,
        request: None,
        response: "ApiSchema",
        description: "this machine-readable endpoint/DTO listing",
    },
    EndpointSpec {
        method: "GET",
        path: "/v1/healthz",
        legacy: Some("/healthz"),
        request: None,
        response: "Health",
        description: "liveness, worker count, store version",
    },
    EndpointSpec {
        method: "GET",
        path: "/v1/metrics",
        legacy: Some("/metrics"),
        request: None,
        response: "Metrics",
        description: "observability snapshot (json or ?format=prom)",
    },
    EndpointSpec {
        method: "GET",
        path: "/v1/progress",
        legacy: Some("/progress"),
        request: None,
        response: "Progress",
        description: "in-process sweep progress plus store fleet view",
    },
    EndpointSpec {
        method: "GET",
        path: "/v1/experiments",
        legacy: Some("/experiments"),
        request: None,
        response: "ExperimentList",
        description: "the registry: ids, descriptions, paper refs",
    },
    EndpointSpec {
        method: "GET",
        path: "/v1/artifact/{id}",
        legacy: Some("/artifact/{id}"),
        request: None,
        response: "Artifact",
        description: "one experiment artifact (?scale=quick|paper&seed=N)",
    },
    EndpointSpec {
        method: "POST",
        path: "/v1/run",
        legacy: Some("/run"),
        request: Some("RunRequest"),
        response: "RunReply",
        description: "run an experiment, memoized by (id, scale, seed)",
    },
    EndpointSpec {
        method: "POST",
        path: "/v1/query",
        legacy: Some("/query"),
        request: Some("QueryRequest"),
        response: "QueryResponse",
        description: "ber/vmin/energy point lookups, single or batched",
    },
    EndpointSpec {
        method: "POST",
        path: "/v1/optimize",
        legacy: Some("/optimize"),
        request: Some("OptimizeRequest"),
        response: "OptimizeResponse",
        description: "design-space autotuner, memoized by request hash",
    },
];

/// DTO field descriptor for the schema listing.
struct DtoField {
    name: &'static str,
    ty: &'static str,
    required: bool,
}

struct DtoSpec {
    name: &'static str,
    fields: &'static [DtoField],
}

const DTOS: &[DtoSpec] = &[
    DtoSpec {
        name: "ErrorBody",
        fields: &[
            DtoField { name: "error.kind", ty: "string", required: true },
            DtoField { name: "error.message", ty: "string", required: true },
        ],
    },
    DtoSpec {
        name: "RunRequest",
        fields: &[
            DtoField { name: "id", ty: "string (experiment id)", required: true },
            DtoField { name: "scale", ty: "\"quick\" | \"paper\"", required: false },
            DtoField { name: "seed", ty: "integer", required: false },
        ],
    },
    DtoSpec {
        name: "QueryRequest",
        fields: &[
            DtoField { name: "kind", ty: "\"ber\" | \"vmin\" | \"energy\"", required: true },
            DtoField { name: "id", ty: "string (echoed per item)", required: false },
            DtoField { name: "law", ty: "\"access\" | \"retention\" (ber)", required: false },
            DtoField { name: "memory", ty: "string (ber/vmin)", required: false },
            DtoField { name: "vdd", ty: "number (ber/energy)", required: false },
            DtoField { name: "scheme", ty: "string (vmin)", required: false },
            DtoField { name: "fit_target", ty: "number (vmin)", required: false },
            DtoField { name: "frequency_hz", ty: "number (vmin/energy)", required: false },
            DtoField { name: "grid", ty: "\"paper\" | \"exact\" (vmin)", required: false },
            DtoField { name: "model", ty: "string (energy)", required: false },
        ],
    },
    DtoSpec {
        name: "OptimizeRequest",
        fields: &[
            DtoField { name: "objective", ty: "{energy, delay, area}", required: false },
            DtoField { name: "constraints.frequency_hz", ty: "number", required: true },
            DtoField { name: "constraints.fit_target", ty: "number", required: false },
            DtoField { name: "constraints.min_words", ty: "integer", required: false },
            DtoField { name: "space.banks", ty: "integer[]", required: false },
            DtoField { name: "space.words", ty: "integer[]", required: false },
            DtoField { name: "space.cells", ty: "string[]", required: false },
            DtoField { name: "space.schemes", ty: "string[]", required: false },
            DtoField { name: "space.vdd", ty: "{lo, hi, grid}", required: false },
            DtoField { name: "seed", ty: "integer", required: false },
            DtoField { name: "restarts", ty: "integer (1..=64)", required: false },
        ],
    },
    DtoSpec {
        name: "OptimizeResponse",
        fields: &[
            DtoField { name: "schema", ty: "\"ntc.optimize.v1\"", required: true },
            DtoField { name: "request_hash", ty: "string (hex fnv-64)", required: true },
            DtoField { name: "feasible", ty: "boolean", required: true },
            DtoField { name: "best", ty: "object | null", required: true },
            DtoField { name: "convergence", ty: "object", required: true },
        ],
    },
];

/// Builds the `GET /v1/api` response body.
pub fn api_schema() -> JsonValue {
    let endpoints = ENDPOINTS
        .iter()
        .map(|e| {
            JsonValue::Obj(vec![
                ("method".into(), JsonValue::Str(e.method.into())),
                ("path".into(), JsonValue::Str(e.path.into())),
                (
                    "legacy".into(),
                    e.legacy.map_or(JsonValue::Null, |l| JsonValue::Str(l.into())),
                ),
                (
                    "request".into(),
                    e.request.map_or(JsonValue::Null, |r| JsonValue::Str(r.into())),
                ),
                ("response".into(), JsonValue::Str(e.response.into())),
                ("description".into(), JsonValue::Str(e.description.into())),
            ])
        })
        .collect();
    let dtos = DTOS
        .iter()
        .map(|d| {
            (
                d.name.to_string(),
                JsonValue::Arr(
                    d.fields
                        .iter()
                        .map(|f| {
                            JsonValue::Obj(vec![
                                ("name".into(), JsonValue::Str(f.name.into())),
                                ("type".into(), JsonValue::Str(f.ty.into())),
                                ("required".into(), JsonValue::Bool(f.required)),
                            ])
                        })
                        .collect(),
                ),
            )
        })
        .collect();
    JsonValue::Obj(vec![
        ("version".into(), JsonValue::Str("v1".into())),
        ("endpoints".into(), JsonValue::Arr(endpoints)),
        ("dtos".into(), JsonValue::Obj(dtos)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::json::parse;

    #[test]
    fn error_body_round_trips() {
        let e = ErrorBody::new("invalid_param", "vdd: must be positive");
        let back = ErrorBody::from_json(&e.to_json()).unwrap();
        assert_eq!(e, back);
        assert_eq!(
            e.to_json(),
            r#"{"error":{"kind":"invalid_param","message":"vdd: must be positive"}}"#
        );
    }

    #[test]
    fn run_request_round_trips() {
        let r = RunRequest {
            id: "table2".parse().unwrap(),
            scale: Scale::Quick,
            seed: Some(7),
        };
        let back = RunRequest::from_json_value(&parse(&r.to_json()).unwrap()).unwrap();
        assert_eq!(r, back);
        // Wire defaults: scale quick, no seed.
        let d = RunRequest::from_json_value(&parse(r#"{"id":"fig6"}"#).unwrap()).unwrap();
        assert_eq!(d.scale, Scale::Quick);
        assert_eq!(d.seed, None);
    }

    #[test]
    fn run_request_rejects_bad_fields() {
        for (text, kind) in [
            (r#"{"scale":"quick"}"#, "missing_field"),
            (r#"{"id":"fig99"}"#, "unknown_experiment"),
            (r#"{"id":"fig6","scale":"huge"}"#, "invalid_param"),
            (r#"{"id":"fig6","seed":-1}"#, "invalid_param"),
            (r#"{"id":"fig6","seed":1.5}"#, "invalid_param"),
        ] {
            let err = RunRequest::from_json_value(&parse(text).unwrap()).unwrap_err();
            assert_eq!(err.kind(), kind, "{text}");
        }
    }

    #[test]
    fn query_request_round_trips_with_id() {
        let text = r#"{"id":"q-7","kind":"vmin","scheme":"ocean","frequency_hz":290e3}"#;
        let q = QueryRequest::from_json_value(&parse(text).unwrap()).unwrap();
        assert_eq!(q.id.as_deref(), Some("q-7"));
        let back = QueryRequest::from_json_value(&parse(&q.to_json()).unwrap()).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn query_request_rejects_non_string_id() {
        let err = QueryRequest::from_json_value(
            &parse(r#"{"id":7,"kind":"vmin","scheme":"ocean"}"#).unwrap(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "invalid_param");
    }

    #[test]
    fn optimize_request_defaults_to_the_paper_space() {
        let req =
            OptimizeRequest::from_json(r#"{"constraints":{"frequency_hz":290e3}}"#).unwrap();
        assert_eq!(req.space, {
            let mut s = DesignSpaceSpec::paper();
            s.canonicalize();
            s
        });
        assert_eq!(req.seed, 2014);
        assert_eq!(req.restarts, 8);
        assert_eq!(req.constraints.fit_target, 1e-15);
        assert_eq!(req.objective, ObjectiveWeights::default());
    }

    #[test]
    fn optimize_request_hash_is_axis_order_invariant() {
        let a = OptimizeRequest::from_json(
            r#"{"constraints":{"frequency_hz":290e3},
                "space":{"banks":[32,1,4,2,16,8],"cells":["custom_6t","cell_based_aoi","commercial_6t"],
                         "schemes":["ocean","no_mitigation","secded"],"words":[8192,512,2048,1024,4096]}}"#,
        )
        .unwrap();
        let b = OptimizeRequest::from_json(
            r#"{"constraints":{"frequency_hz":290e3},
                "space":{"banks":[1,2,4,8,16,32],"cells":["cell_based_aoi","commercial_6t","custom_6t"],
                         "schemes":["no_mitigation","secded","ocean"],"words":[512,1024,2048,4096,8192]}}"#,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.request_hash_hex(), b.request_hash_hex());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn optimize_request_validates() {
        for (text, needle) in [
            (r#"{}"#, "constraints"),
            (r#"{"constraints":{"frequency_hz":0}}"#, "positive"),
            (r#"{"constraints":{"frequency_hz":290e3,"fit_target":2}}"#, "(0, 1)"),
            (
                r#"{"constraints":{"frequency_hz":290e3},"space":{"banks":[3]}}"#,
                "powers of two",
            ),
            (
                r#"{"constraints":{"frequency_hz":290e3},"space":{"words":[]}}"#,
                "at least one",
            ),
            (
                r#"{"constraints":{"frequency_hz":290e3},"space":{"cells":["cell_based_latch_65"]}}"#,
                "65 nm",
            ),
            (
                r#"{"constraints":{"frequency_hz":290e3},"space":{"vdd":{"lo":0.9,"hi":0.3}}}"#,
                "lo <= hi",
            ),
            (
                r#"{"constraints":{"frequency_hz":290e3},"objective":{"energy":0,"delay":0,"area":0}}"#,
                "at least one weight",
            ),
            (r#"{"constraints":{"frequency_hz":290e3},"restarts":0}"#, "1..=64"),
        ] {
            let err = OptimizeRequest::from_json(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn optimize_response_round_trips() {
        let resp = OptimizeResponse {
            request_hash: "00ff00ff00ff00ff".into(),
            feasible: true,
            best: Some(BestDesign {
                cell: CellStyle::CellBasedAoi,
                scheme: Scheme::Ocean,
                banks: 1,
                words: 2048,
                vdd: 0.33,
                energy_per_access_pj: 4.5,
                cycle_time_ns: 80.0,
                area_mm2: 0.115,
                f_max_hz: 1.2e6,
                objective: 4.5,
            }),
            convergence: OptimizeConvergence {
                restarts: 8,
                sweeps: 24,
                evaluations: 900,
                best_per_restart: vec![4.5; 8],
            },
        };
        let back = OptimizeResponse::from_json(&resp.to_json()).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn endpoint_table_is_consistent() {
        // Legacy aliases are the path minus the /v1 prefix, and every
        // request/response DTO naming a request body exists in DTOS.
        for e in ENDPOINTS {
            if let Some(legacy) = e.legacy {
                assert_eq!(e.path, format!("/v1{legacy}"), "{}", e.path);
            }
            if let Some(req) = e.request {
                assert!(DTOS.iter().any(|d| d.name == req), "missing DTO {req}");
            }
            assert!(e.path.starts_with("/v1/"), "{}", e.path);
        }
        let schema = api_schema();
        let listed = schema.get("endpoints").unwrap();
        match listed {
            JsonValue::Arr(rows) => assert_eq!(rows.len(), ENDPOINTS.len()),
            _ => panic!("endpoints not an array"),
        }
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}
