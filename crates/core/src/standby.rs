//! Standby (data-retention) analysis — Section II's second argument for
//! voltage-scaled memories.
//!
//! "Applications benefitting from NTC typically have significant standby
//! times. Whereas digital logic can largely be powered off, memories have
//! to retain their content. [Supply voltage scaling] achieves a
//! significant leakage power reduction." This module quantifies that: the
//! minimal standby voltage is set by the retention failure law (Eqs. 2–4)
//! — and, exactly as with access errors, *error mitigation pushes it
//! lower*: a SECDED-scrubbed array can ride out one failed bit per word,
//! an OCEAN-style protected copy four.
//!
//! Failure semantics in standby differ from access: a retention failure
//! is a *static* event (the bit's retention voltage is above the supply),
//! so the budget is per word per standby period, not per transaction.

use crate::fit::Scheme;
use ntc_memcalc::instance::MemoryMacro;
use ntc_sram::words::WordErrorModel;
use std::fmt;

/// One operating point of the standby design space.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StandbyPoint {
    /// Mitigation scheme protecting the sleeping array.
    pub scheme: Scheme,
    /// Minimal safe standby voltage, volts.
    pub vdd: f64,
    /// Standby power at that voltage, watts.
    pub power_w: f64,
}

/// Standby analysis for one memory macro.
///
/// # Example
///
/// ```
/// use ntc::standby::StandbyAnalysis;
/// use ntc::fit::Scheme;
/// use ntc::calculator::MemoryCalculator;
///
/// let a = StandbyAnalysis::new(
///     MemoryCalculator::cell_based_reference().macro_model().clone(),
///     1e-15,
/// );
/// // Mitigation lowers the safe standby voltage.
/// let v_raw = a.min_standby_voltage(Scheme::NoMitigation);
/// let v_ecc = a.min_standby_voltage(Scheme::Secded);
/// assert!(v_ecc < v_raw);
/// ```
#[derive(Debug, Clone)]
pub struct StandbyAnalysis {
    inner: MemoryMacro,
    fit_target: f64,
}

impl StandbyAnalysis {
    /// Creates an analysis with a per-word loss budget for one standby
    /// period.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fit_target < 1`.
    pub fn new(inner: MemoryMacro, fit_target: f64) -> Self {
        assert!(
            fit_target > 0.0 && fit_target < 1.0,
            "FIT target must be in (0, 1), got {fit_target}"
        );
        Self { inner, fit_target }
    }

    /// The wrapped macro.
    pub fn macro_model(&self) -> &MemoryMacro {
        &self.inner
    }

    /// Minimal standby voltage keeping the per-word loss probability
    /// within budget for `scheme`.
    pub fn min_standby_voltage(&self, scheme: Scheme) -> f64 {
        let w = WordErrorModel::new(scheme.word_bits());
        let p = w
            .max_p_bit_for_target(scheme.correctable_bits(), self.fit_target)
            .expect("positive target");
        self.inner.retention_law().vdd_for_p(p)
    }

    /// Standby power at the scheme's minimal voltage.
    pub fn standby_point(&self, scheme: Scheme) -> StandbyPoint {
        let vdd = self.min_standby_voltage(scheme);
        StandbyPoint {
            scheme,
            vdd,
            power_w: self.inner.retention_power(vdd),
        }
    }

    /// All three schemes' standby points, in the paper's scheme order.
    pub fn design_space(&self) -> [StandbyPoint; 3] {
        [
            self.standby_point(Scheme::NoMitigation),
            self.standby_point(Scheme::Secded),
            self.standby_point(Scheme::Ocean),
        ]
    }

    /// Average power of a duty-cycled system: active a fraction
    /// `active_fraction` of the time at `v_active` (active leakage +
    /// `dynamic_w` switching power), asleep the rest at the scheme's
    /// standby point.
    ///
    /// # Panics
    ///
    /// Panics unless `active_fraction` is in `[0, 1]` and `dynamic_w` is
    /// non-negative and finite.
    pub fn duty_cycled_power(
        &self,
        scheme: Scheme,
        v_active: f64,
        dynamic_w: f64,
        active_fraction: f64,
    ) -> f64 {
        assert!(
            (0.0..=1.0).contains(&active_fraction),
            "active fraction must be in [0, 1], got {active_fraction}"
        );
        assert!(
            dynamic_w.is_finite() && dynamic_w >= 0.0,
            "dynamic power must be non-negative"
        );
        let active = dynamic_w + self.inner.leakage_power(v_active);
        let sleep = self.standby_point(scheme).power_w;
        active_fraction * active + (1.0 - active_fraction) * sleep
    }

    /// Standby-power saving of voltage-scaled sleep (at the scheme's
    /// minimal voltage) relative to holding the array at `v_active`
    /// (a ratio > 1 means savings).
    pub fn scaling_gain(&self, scheme: Scheme, v_active: f64) -> f64 {
        self.inner.retention_power(v_active) / self.standby_point(scheme).power_w
    }
}

impl fmt::Display for StandbyAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "standby analysis for {} (loss ≤ {:.1e}/word)",
            self.inner, self.fit_target
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_memcalc::instance::MemoryOrganization;
    use ntc_sram::styles::CellStyle;

    fn analysis() -> StandbyAnalysis {
        StandbyAnalysis::new(
            MemoryMacro::new(
                CellStyle::CellBasedAoi,
                MemoryOrganization::reference_1kx32(),
                ntc_tech::card::n40lp(),
            ),
            1e-15,
        )
    }

    #[test]
    fn mitigation_lowers_standby_voltage_monotonically() {
        let a = analysis();
        let [none, ecc, ocean] = a.design_space();
        assert!(none.vdd > ecc.vdd && ecc.vdd > ocean.vdd);
        assert!(none.power_w > ecc.power_w && ecc.power_w > ocean.power_w);
    }

    #[test]
    fn unprotected_standby_voltage_is_plausible() {
        // Gaussian retention with µ = 0.20, σ = 0.030: an 8-sigma-ish
        // margin for 1e-15/39-bit-word lands in the 0.4–0.5 V region.
        let v = analysis().min_standby_voltage(Scheme::NoMitigation);
        assert!((0.38..0.52).contains(&v), "got {v}");
    }

    #[test]
    fn scaling_gain_is_order_of_magnitude() {
        // The Section II claim: standby scaling buys ~10x static power.
        let a = analysis();
        let g = a.scaling_gain(Scheme::Secded, 1.1);
        assert!(g > 5.0, "gain {g}");
    }

    #[test]
    fn duty_cycle_limits() {
        let a = analysis();
        let sleep_only = a.duty_cycled_power(Scheme::Secded, 0.55, 1e-6, 0.0);
        let active_only = a.duty_cycled_power(Scheme::Secded, 0.55, 1e-6, 1.0);
        assert!((sleep_only - a.standby_point(Scheme::Secded).power_w).abs() < 1e-18);
        assert!(active_only > sleep_only);
        // Mostly-idle duty cycle sits near the sleep floor.
        let idle = a.duty_cycled_power(Scheme::Secded, 0.55, 1e-6, 0.01);
        assert!(idle < 0.1 * active_only);
    }

    #[test]
    #[should_panic(expected = "active fraction")]
    fn rejects_bad_duty_cycle() {
        analysis().duty_cycled_power(Scheme::Secded, 0.55, 1e-6, 1.5);
    }

    #[test]
    fn display_nonempty() {
        assert!(!analysis().to_string().is_empty());
    }
}
