//! A minimal deterministic JSON tree: writer and recursive-descent parser.
//!
//! The build environment has no registry access, and the vendored `serde`
//! is a marker-trait stand-in (see `vendor/serde`), so the artifact layer
//! carries its own byte format. Design constraints, in order:
//!
//! 1. **Determinism.** Objects are ordered vectors, not hash maps — the
//!    writer emits keys in insertion order, every time. Numbers are
//!    printed with Rust's shortest round-trip `Display` for `f64`, which
//!    is a pure function of the bit pattern. Equal values in, equal bytes
//!    out.
//! 2. **Losslessness.** Shortest round-trip formatting parses back to the
//!    bit-identical `f64`. Non-finite values (not representable in JSON
//!    numbers) are encoded as the strings `"NaN"`, `"inf"`, `"-inf"` by
//!    [`JsonValue::num`] and folded back by [`JsonValue::as_num`].
//! 3. **Smallness.** Only what the artifact schema needs: no comments, no
//!    trailing commas, UTF-8 strings with the mandatory escapes.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Encodes an `f64`, mapping non-finite values to marker strings so
    /// every value survives the trip through JSON.
    pub fn num(v: f64) -> JsonValue {
        if v.is_finite() {
            JsonValue::Num(v)
        } else if v.is_nan() {
            JsonValue::Str("NaN".to_string())
        } else if v > 0.0 {
            JsonValue::Str("inf".to_string())
        } else {
            JsonValue::Str("-inf".to_string())
        }
    }

    /// The numeric value, folding the non-finite marker strings back.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Writes the value with two-space indentation at the given depth.
    pub fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => {
                debug_assert!(v.is_finite(), "use JsonValue::num for non-finite values");
                out.push_str(&format!("{v}"));
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let flat = items
                    .iter()
                    .all(|i| matches!(i, JsonValue::Num(_) | JsonValue::Str(_) | JsonValue::Null | JsonValue::Bool(_)))
                    || items.iter().all(|i| matches!(i, JsonValue::Arr(a) if a.len() <= 4));
                if flat {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write_compact(out);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        item.write_pretty(out, depth + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                }
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Writes the value with no whitespace.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => out.push_str(&format!("{v}")),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        f.write_str(&s)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse or schema error, with the byte offset where parsing stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input (0 for schema errors).
    pub offset: usize,
}

impl JsonError {
    /// A schema-level error (structure parsed, content unexpected).
    pub fn schema(what: &str) -> Self {
        Self { message: format!("schema: {what}"), offset: 0 }
    }

    /// A schema-level error with an owned message.
    pub fn schema_owned(message: String) -> Self {
        Self { message: format!("schema: {message}"), offset: 0 }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing content", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> JsonError {
    JsonError { message: message.to_string(), offset }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err("unexpected character", *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err("invalid literal", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    if *pos == start {
        return Err(err("expected a value", start));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| err("malformed number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| err("invalid UTF-8", *pos));
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err("bad \\u escape", *pos))?;
                        // The writer only emits \u for control characters
                        // (< 0x20); surrogate pairs are never produced.
                        let c = char::from_u32(hex).ok_or_else(|| err("bad \\u escape", *pos))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(err("expected , or ]", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(err("expected , or }", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &JsonValue) -> JsonValue {
        let mut s = String::new();
        v.write_pretty(&mut s, 0);
        parse(&s).expect("round trip parses")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::Num(0.0),
            JsonValue::Num(-0.55),
            JsonValue::Num(1e-15),
            JsonValue::Num(1.0000000000000002),
            JsonValue::Str("he said \"µW\"\n".to_string()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn shortest_round_trip_is_bit_exact() {
        for bits in [0x3FE5555555555555u64, 0x3FF0000000000001, 0x0010000000000000] {
            let v = f64::from_bits(bits);
            let JsonValue::Num(back) = round_trip(&JsonValue::Num(v)) else {
                panic!("number expected");
            };
            assert_eq!(back.to_bits(), bits);
        }
    }

    #[test]
    fn non_finite_goes_through_markers() {
        assert_eq!(JsonValue::num(f64::INFINITY).as_num(), Some(f64::INFINITY));
        assert_eq!(JsonValue::num(f64::NEG_INFINITY).as_num(), Some(f64::NEG_INFINITY));
        assert!(JsonValue::num(f64::NAN).as_num().unwrap().is_nan());
        assert_eq!(JsonValue::num(1.5), JsonValue::Num(1.5));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = JsonValue::Obj(vec![
            ("a".to_string(), JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.5)])),
            (
                "b".to_string(),
                JsonValue::Obj(vec![("c".to_string(), JsonValue::Str("x".to_string()))]),
            ),
            ("empty_arr".to_string(), JsonValue::Arr(vec![])),
            ("empty_obj".to_string(), JsonValue::Obj(vec![])),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn key_order_is_preserved() {
        let v = parse("{\"z\": 1, \"a\": 2}").unwrap();
        let JsonValue::Obj(fields) = &v else { panic!() };
        assert_eq!(fields[0].0, "z");
        assert_eq!(fields[1].0, "a");
        assert_eq!(v.get("z"), Some(&JsonValue::Num(1.0)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn writer_is_deterministic() {
        let v = JsonValue::Obj(vec![(
            "points".to_string(),
            JsonValue::Arr(vec![
                JsonValue::Arr(vec![JsonValue::Num(0.4), JsonValue::Num(1e-3)]),
                JsonValue::Arr(vec![JsonValue::Num(0.5), JsonValue::Num(2e-6)]),
            ]),
        )]);
        let mut a = String::new();
        let mut b = String::new();
        v.write_pretty(&mut a, 0);
        v.write_pretty(&mut b, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("nulL").is_err());
        let e = parse("[1, x]").unwrap_err();
        assert!(e.offset > 0);
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn compact_writer_parses_back() {
        let v = JsonValue::Obj(vec![
            ("a".to_string(), JsonValue::Num(1.5)),
            ("b".to_string(), JsonValue::Str("x\"y".to_string())),
        ]);
        let mut s = String::new();
        v.write_compact(&mut s);
        assert_eq!(parse(&s).unwrap(), v);
    }
}
