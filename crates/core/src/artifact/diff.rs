//! Structural + numeric comparison of artifacts against a committed
//! baseline.
//!
//! `repro diff <baseline-dir>` re-runs the registry and compares every
//! table cell, series point and scalar of each artifact against the
//! JSON a previous `repro run --out` wrote. Artifacts are pure
//! functions of `(id, seed, scale)`, so on the same platform the
//! comparison is byte-exact; across platforms only libm-backed
//! transcendentals (`powf`, `ln`, `exp`) may differ in the last ulp,
//! which is why value comparisons take a [`Tolerance`] (defaulting to
//! a relative 1e-6) instead of demanding bit equality.
//!
//! The comparison is *keyed*, not positional, at the item level: tables
//! pair by name, series by label, scalars by label. Reordering items is
//! reported as structure drift only if a key disappears; a changed
//! number is reported with both values and the relative error so the
//! offending quantity can be read straight out of CI logs.

use super::{Artifact, Cell, Item};
use std::fmt;

/// Absolute + relative tolerance for pairing floating-point values:
/// `a` matches `b` iff `|a − b| ≤ atol + rtol·max(|a|, |b|)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative term, scaled by the larger magnitude.
    pub rtol: f64,
    /// Absolute floor, for values near zero.
    pub atol: f64,
}

impl Default for Tolerance {
    /// Tight enough to catch any model change, loose enough to absorb
    /// last-ulp libm differences between the platform that wrote the
    /// baseline and the one checking it.
    fn default() -> Self {
        Self { rtol: 1e-6, atol: 0.0 }
    }
}

impl Tolerance {
    /// A purely relative tolerance.
    pub fn rel(rtol: f64) -> Self {
        Self { rtol, atol: 0.0 }
    }

    /// Whether `a` and `b` agree within this tolerance. NaN never
    /// matches anything (a NaN appearing in an artifact is itself a
    /// regression); equal infinities match.
    pub fn matches(&self, a: f64, b: f64) -> bool {
        if a == b {
            return true; // covers equal infinities and exact zeros
        }
        if !a.is_finite() || !b.is_finite() {
            return false; // NaN or a lone infinity: never within tolerance
        }
        (a - b).abs() <= self.atol + self.rtol * a.abs().max(b.abs())
    }
}

/// What kind of drift a [`DiffEntry`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffKind {
    /// Shape changed: item missing/added, columns renamed, point counts
    /// differ, text cells changed — anything not expressible as a
    /// numeric delta.
    Structure,
    /// A number moved outside the tolerance.
    Value,
}

/// One detected difference between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Structure or value drift.
    pub kind: DiffKind,
    /// Where: `"<artifact>/<item>/<cell>"`, e.g.
    /// `fig5/series[mc cross-check]/point[3].y`.
    pub path: String,
    /// Baseline value, when the difference is numeric.
    pub baseline: Option<f64>,
    /// Current value, when the difference is numeric.
    pub current: Option<f64>,
    /// Human-readable description of the drift.
    pub detail: String,
}

impl DiffEntry {
    fn structure(path: String, detail: String) -> Self {
        Self { kind: DiffKind::Structure, path, baseline: None, current: None, detail }
    }

    fn value(path: String, baseline: f64, current: f64) -> Self {
        let rel = if baseline != 0.0 {
            ((current - baseline) / baseline).abs()
        } else {
            f64::INFINITY
        };
        Self {
            kind: DiffKind::Value,
            path,
            baseline: Some(baseline),
            current: Some(current),
            detail: format!("baseline {baseline} -> current {current} (rel err {rel:.3e})"),
        }
    }
}

impl fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            DiffKind::Structure => "structure",
            DiffKind::Value => "value",
        };
        write!(f, "[{kind}] {}: {}", self.path, self.detail)
    }
}

/// The full comparison result for one artifact pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArtifactDiff {
    /// Every detected difference, in artifact item order.
    pub entries: Vec<DiffEntry>,
}

impl ArtifactDiff {
    /// True when baseline and current agree everywhere.
    pub fn is_clean(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Compares `current` against `baseline` with the given tolerance.
///
/// Items pair by key (table name / series label / scalar label); keys
/// present on one side only are structure drift. Within paired items,
/// every number is compared under `tol` and every string exactly.
pub fn diff_artifacts(baseline: &Artifact, current: &Artifact, tol: Tolerance) -> ArtifactDiff {
    let mut d = ArtifactDiff::default();
    let id = &baseline.id;
    if baseline.id != current.id {
        d.entries.push(DiffEntry::structure(
            id.clone(),
            format!("artifact id changed: {} -> {}", baseline.id, current.id),
        ));
    }
    if baseline.title != current.title {
        d.entries.push(DiffEntry::structure(
            id.clone(),
            format!("title changed: {:?} -> {:?}", baseline.title, current.title),
        ));
    }

    for b_item in &baseline.items {
        match b_item {
            Item::Table(bt) => match current.table(&bt.name) {
                None => d.entries.push(DiffEntry::structure(
                    format!("{id}/table[{}]", bt.name),
                    "table missing from current run".into(),
                )),
                Some(ct) => diff_table(&mut d, id, bt, ct, tol),
            },
            Item::Series(bs) => {
                match current.series().find(|s| s.label == bs.label) {
                    None => d.entries.push(DiffEntry::structure(
                        format!("{id}/series[{}]", bs.label),
                        "series missing from current run".into(),
                    )),
                    Some(cs) => diff_series(&mut d, id, bs, cs, tol),
                }
            }
            Item::Scalar(bsc) => {
                match current.scalars().find(|s| s.label == bsc.label) {
                    None => d.entries.push(DiffEntry::structure(
                        format!("{id}/scalar[{}]", bsc.label),
                        "scalar missing from current run".into(),
                    )),
                    Some(csc) => {
                        let path = format!("{id}/scalar[{}]", bsc.label);
                        if bsc.unit != csc.unit {
                            d.entries.push(DiffEntry::structure(
                                path.clone(),
                                format!("unit changed: {:?} -> {:?}", bsc.unit, csc.unit),
                            ));
                        }
                        if bsc.paper != csc.paper {
                            d.entries.push(DiffEntry::structure(
                                path.clone(),
                                "paper anchor definition changed".into(),
                            ));
                        }
                        if !tol.matches(bsc.value, csc.value) {
                            d.entries.push(DiffEntry::value(path, bsc.value, csc.value));
                        }
                    }
                }
            }
        }
    }

    // Keys that appeared only in the current run.
    for item in &current.items {
        let (kind, key, found) = match item {
            Item::Table(t) => ("table", &t.name, baseline.table(&t.name).is_some()),
            Item::Series(s) => (
                "series",
                &s.label,
                baseline.series().any(|b| b.label == s.label),
            ),
            Item::Scalar(s) => (
                "scalar",
                &s.label,
                baseline.scalars().any(|b| b.label == s.label),
            ),
        };
        if !found {
            d.entries.push(DiffEntry::structure(
                format!("{id}/{kind}[{key}]"),
                format!("{kind} not present in baseline"),
            ));
        }
    }
    d
}

fn diff_table(
    d: &mut ArtifactDiff,
    id: &str,
    b: &super::Table,
    c: &super::Table,
    tol: Tolerance,
) {
    let path = format!("{id}/table[{}]", b.name);
    if b.columns != c.columns {
        d.entries.push(DiffEntry::structure(path, "columns changed".into()));
        return;
    }
    if b.rows().len() != c.rows().len() {
        d.entries.push(DiffEntry::structure(
            path,
            format!("row count changed: {} -> {}", b.rows().len(), c.rows().len()),
        ));
        return;
    }
    for (ri, (br, cr)) in b.rows().iter().zip(c.rows()).enumerate() {
        for (ci, (bc, cc)) in br.iter().zip(cr).enumerate() {
            let cell_path = || {
                format!(
                    "{id}/table[{}]/row[{ri}].{}",
                    b.name, b.columns[ci].name
                )
            };
            match (bc, cc) {
                (Cell::Text(bt), Cell::Text(ct)) => {
                    if bt != ct {
                        d.entries.push(DiffEntry::structure(
                            cell_path(),
                            format!("text changed: {bt:?} -> {ct:?}"),
                        ));
                    }
                }
                (Cell::Num(bn), Cell::Num(cn)) => {
                    if !tol.matches(*bn, *cn) {
                        d.entries.push(DiffEntry::value(cell_path(), *bn, *cn));
                    }
                }
                _ => d.entries.push(DiffEntry::structure(
                    cell_path(),
                    "cell kind changed (text vs number)".into(),
                )),
            }
        }
    }
}

fn diff_series(
    d: &mut ArtifactDiff,
    id: &str,
    b: &super::Series,
    c: &super::Series,
    tol: Tolerance,
) {
    let path = format!("{id}/series[{}]", b.label);
    let axes_b = (&b.x_name, &b.x_unit, &b.y_name, &b.y_unit);
    let axes_c = (&c.x_name, &c.x_unit, &c.y_name, &c.y_unit);
    if axes_b != axes_c {
        d.entries.push(DiffEntry::structure(path, "axes changed".into()));
        return;
    }
    if b.points.len() != c.points.len() {
        d.entries.push(DiffEntry::structure(
            path,
            format!("point count changed: {} -> {}", b.points.len(), c.points.len()),
        ));
        return;
    }
    for (i, (&(bx, by), &(cx, cy))) in b.points.iter().zip(&c.points).enumerate() {
        if !tol.matches(bx, cx) {
            d.entries.push(DiffEntry::value(
                format!("{id}/series[{}]/point[{i}].x", b.label),
                bx,
                cx,
            ));
        }
        if !tol.matches(by, cy) {
            d.entries.push(DiffEntry::value(
                format!("{id}/series[{}]/point[{i}].y", b.label),
                by,
                cy,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Column, PaperRef, Series, Table};
    use super::*;

    fn sample() -> Artifact {
        Artifact::new("fig_t", "diff sample")
            .with_table(
                Table::new("rows", vec![Column::bare("key"), Column::new("vdd", "V")])
                    .with_row(vec![Cell::Text("a".into()), Cell::Num(0.33)])
                    .with_row(vec![Cell::Text("b".into()), Cell::Num(0.44)]),
            )
            .with_series(Series::new(
                "ber",
                ("VDD", "V"),
                ("BER", ""),
                vec![(0.3, 1e-3), (0.4, 1e-7)],
            ))
            .with_anchor("vmin", "V", 0.33, PaperRef::abs(0.33, 0.01))
            .with_scalar("free", "", 1.25)
    }

    #[test]
    fn identical_artifacts_diff_clean() {
        let d = diff_artifacts(&sample(), &sample(), Tolerance::default());
        assert!(d.is_clean(), "{:?}", d.entries);
    }

    #[test]
    fn tolerance_absorbs_tiny_drift_but_not_regressions() {
        let mut cur = sample();
        // Nudge the scalar by 1 part in 1e9: inside the default 1e-6.
        if let Item::Scalar(s) = &mut cur.items[3] {
            s.value *= 1.0 + 1e-9;
        }
        assert!(diff_artifacts(&sample(), &cur, Tolerance::default()).is_clean());
        // A 1% move is a regression.
        if let Item::Scalar(s) = &mut cur.items[3] {
            s.value *= 1.01;
        }
        let d = diff_artifacts(&sample(), &cur, Tolerance::default());
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.entries[0].kind, DiffKind::Value);
        assert!(d.entries[0].path.contains("scalar[free]"));
        assert!(d.entries[0].to_string().contains("rel err"));
        // ...unless the caller asked for a loose tolerance.
        assert!(diff_artifacts(&sample(), &cur, Tolerance::rel(0.05)).is_clean());
    }

    #[test]
    fn series_point_drift_is_located() {
        let mut cur = sample();
        if let Item::Series(s) = &mut cur.items[1] {
            s.points[1].1 = 2e-7;
        }
        let d = diff_artifacts(&sample(), &cur, Tolerance::default());
        assert_eq!(d.entries.len(), 1);
        assert!(d.entries[0].path.ends_with("point[1].y"));
        assert_eq!(d.entries[0].baseline, Some(1e-7));
        assert_eq!(d.entries[0].current, Some(2e-7));
    }

    #[test]
    fn table_cell_drift_is_located_by_row_and_column() {
        let mut cur = sample();
        if let Item::Table(t) = &mut cur.items[0] {
            let mut rows: Vec<Vec<Cell>> = t.rows().to_vec();
            rows[1][1] = Cell::Num(0.45);
            *t = Table::new("rows", t.columns.clone());
            for r in rows {
                t.push_row(r);
            }
        }
        let d = diff_artifacts(&sample(), &cur, Tolerance::default());
        assert_eq!(d.entries.len(), 1);
        assert!(d.entries[0].path.contains("row[1].vdd"));
    }

    #[test]
    fn structural_drift_is_reported() {
        // Missing scalar.
        let mut cur = sample();
        cur.items.remove(3);
        let d = diff_artifacts(&sample(), &cur, Tolerance::default());
        assert!(d.entries.iter().any(|e| {
            e.kind == DiffKind::Structure && e.path.contains("scalar[free]")
        }));
        // Extra series.
        let cur = sample().with_series(Series::new("new", ("x", ""), ("y", ""), vec![]));
        let d = diff_artifacts(&sample(), &cur, Tolerance::default());
        assert!(d.entries.iter().any(|e| e.path.contains("series[new]")
            && e.detail.contains("not present in baseline")));
        // Changed anchor definition.
        let mut cur = sample();
        if let Item::Scalar(s) = &mut cur.items[2] {
            s.paper = Some(PaperRef::abs(0.33, 0.05));
        }
        let d = diff_artifacts(&sample(), &cur, Tolerance::default());
        assert!(d.entries.iter().any(|e| e.detail.contains("anchor definition")));
        // Point count change.
        let mut cur = sample();
        if let Item::Series(s) = &mut cur.items[1] {
            s.points.pop();
        }
        let d = diff_artifacts(&sample(), &cur, Tolerance::default());
        assert!(d.entries.iter().any(|e| e.detail.contains("point count")));
    }

    #[test]
    fn nan_in_current_run_is_a_regression() {
        let mut cur = sample();
        if let Item::Scalar(s) = &mut cur.items[3] {
            s.value = f64::NAN;
        }
        let d = diff_artifacts(&sample(), &cur, Tolerance::default());
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.entries[0].kind, DiffKind::Value);
    }

    #[test]
    fn tolerance_matches_edge_cases() {
        let t = Tolerance::default();
        assert!(t.matches(0.0, 0.0));
        assert!(t.matches(f64::INFINITY, f64::INFINITY));
        assert!(!t.matches(f64::INFINITY, 1.0));
        assert!(!t.matches(f64::NAN, f64::NAN), "NaN never matches");
        let abs = Tolerance { rtol: 0.0, atol: 1e-12 };
        assert!(abs.matches(0.0, 1e-13));
        assert!(!abs.matches(0.0, 1e-11));
    }
}
