//! The full-system mitigation study (Figures 8 and 9, plus the headline
//! savings numbers of the abstract).
//!
//! Each experiment runs the 1K-point fixed-point FFT on the simulated
//! platform at the operating voltage the FIT solver assigns to a
//! mitigation policy, injects access errors per the memory style's
//! measured failure law, verifies the numerical result against the golden
//! model, and reports the per-module power breakdown (core, instruction
//! memory, scratchpad, protected memory — the bars of Figures 8/9).

use crate::fit::{FitSolver, Scheme, VoltageGrid};
use ntc_ocean::detect::DetectOnlyMemory;
use ntc_ocean::runtime::{Granularity, OceanConfig, OceanError, OceanRuntime};
use ntc_sim::asm::assemble;
use ntc_sim::fft::{fft_fixed, fft_program, random_input, twiddle_table};
use ntc_sim::fir;
use ntc_sim::memory::{FaultInjector, ProtectedMemory, RawMemory, SecdedMemory};
use ntc_sim::platform::{Platform, PlatformConfig, Protection};
use ntc_sram::failure::AccessLaw;
use ntc_sram::styles::CellStyle;
use ntc_stats::exec::par_map_slice;
use std::fmt;

/// A mitigation policy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MitigationPolicy {
    /// Unprotected scratchpad.
    NoMitigation,
    /// (39,32) SECDED scratchpad.
    Secded,
    /// OCEAN: detect-only scratchpad + protected checkpoint buffer.
    Ocean,
}

impl MitigationPolicy {
    /// All policies in the paper's order.
    pub const ALL: [MitigationPolicy; 3] = [
        MitigationPolicy::NoMitigation,
        MitigationPolicy::Secded,
        MitigationPolicy::Ocean,
    ];

    /// The FIT-solver scheme this policy corresponds to.
    pub fn scheme(&self) -> Scheme {
        match self {
            MitigationPolicy::NoMitigation => Scheme::NoMitigation,
            MitigationPolicy::Secded => Scheme::Secded,
            MitigationPolicy::Ocean => Scheme::Ocean,
        }
    }
}

impl fmt::Display for MitigationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.scheme())
    }
}

/// Dotted-lowercase policy name for `ntc-obs` span names.
fn policy_slug(policy: MitigationPolicy) -> &'static str {
    match policy {
        MitigationPolicy::NoMitigation => "no_mitigation",
        MitigationPolicy::Secded => "secded",
        MitigationPolicy::Ocean => "ocean",
    }
}

/// Power drawn by one platform module at the operating point.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModulePower {
    /// Module name (`core`, `im`, `sp`, `pm`).
    pub name: String,
    /// Dynamic power, watts.
    pub dynamic_w: f64,
    /// Leakage power, watts.
    pub leakage_w: f64,
}

impl ModulePower {
    /// Total power of the module.
    pub fn total_w(&self) -> f64 {
        self.dynamic_w + self.leakage_w
    }
}

/// Outcome of one mitigation experiment.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExperimentResult {
    /// The policy that ran.
    pub policy: MitigationPolicy,
    /// Operating voltage, volts.
    pub vdd: f64,
    /// Clock frequency, hertz.
    pub frequency_hz: f64,
    /// Whether the run completed (no unrecoverable trap).
    pub completed: bool,
    /// Words of the FFT output that match the golden model exactly.
    pub correct_words: usize,
    /// Total FFT output words.
    pub total_words: usize,
    /// Cycles including mitigation overheads.
    pub cycles: u64,
    /// Bit errors injected by the fault model.
    pub injected_bits: u64,
    /// Errors repaired (ECC corrections or OCEAN recoveries).
    pub repaired: u64,
    /// Per-module power breakdown.
    pub modules: Vec<ModulePower>,
}

impl ExperimentResult {
    /// Total platform power, watts.
    pub fn total_power_w(&self) -> f64 {
        self.modules.iter().map(ModulePower::total_w).sum()
    }

    /// Total dynamic power, watts.
    pub fn dynamic_power_w(&self) -> f64 {
        self.modules.iter().map(|m| m.dynamic_w).sum()
    }

    /// Whether every output word matched the golden model.
    pub fn is_exact(&self) -> bool {
        self.completed && self.correct_words == self.total_words
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} @ {:.2} V: {:>9.3} µW ({} of {} words exact, {} repairs)",
            self.policy.to_string(),
            self.vdd,
            self.total_power_w() * 1e6,
            self.correct_words,
            self.total_words,
            self.repaired
        )
    }
}

/// The streaming workload an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Workload {
    /// Radix-2 FFT of the given size (power of two, 8..=1024).
    Fft {
        /// Transform length.
        n: usize,
    },
    /// Block FIR filter.
    Fir {
        /// Number of samples.
        n: usize,
        /// Number of taps.
        taps: usize,
        /// Samples per phase block.
        block: usize,
    },
}

impl Workload {
    /// Assembly source + initial memory image + golden output
    /// (`(base_word, expected_words)`).
    fn build(&self, seed: u64) -> (String, Vec<u32>, usize, Vec<u32>) {
        match *self {
            Workload::Fft { n } => {
                let input = random_input(n, seed);
                let tw = twiddle_table(n);
                let mut golden = input.clone();
                fft_fixed(&mut golden, &tw);
                let image: Vec<u32> = input.iter().chain(tw.iter()).copied().collect();
                (fft_program(n), image, 0, golden)
            }
            Workload::Fir { n, taps, block } => {
                let input = fir::random_signal(n, seed);
                let coeffs = fir::moving_average_taps(taps);
                let golden: Vec<u32> = fir::fir_fixed(&input, &coeffs)
                    .into_iter()
                    .map(|v| v as u32)
                    .collect();
                let image: Vec<u32> = input
                    .iter()
                    .chain(coeffs.iter())
                    .map(|&v| v as u32)
                    .collect();
                (fir::fir_program(n, taps, block), image, n + taps, golden)
            }
        }
    }

    /// Scratchpad words the workload's layout needs.
    fn scratchpad_words(&self) -> usize {
        match *self {
            Workload::Fft { n } => ntc_sim::fft::scratchpad_words(n),
            Workload::Fir { n, taps, .. } => fir::scratchpad_words(n, taps),
        }
    }
}

/// Configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Policy under test.
    pub policy: MitigationPolicy,
    /// Operating voltage, volts.
    pub vdd: f64,
    /// Clock frequency, hertz.
    pub frequency_hz: f64,
    /// The workload to run.
    pub workload: Workload,
    /// Memory style whose failure law drives injection.
    pub style: CellStyle,
    /// Random seed (input signal and fault process).
    pub seed: u64,
}

impl ExperimentConfig {
    /// A 1K-point run of `policy` at `vdd`/`frequency_hz` on the
    /// cell-based memory (the Figure 8 regime).
    pub fn cell_based(policy: MitigationPolicy, vdd: f64, frequency_hz: f64) -> Self {
        Self {
            policy,
            vdd,
            frequency_hz,
            workload: Workload::Fft { n: 1024 },
            style: CellStyle::CellBasedAoi,
            seed: 2014,
        }
    }

    /// The commercial-memory regime of Figure 9.
    pub fn commercial(policy: MitigationPolicy, vdd: f64, frequency_hz: f64) -> Self {
        Self {
            style: CellStyle::Commercial6T,
            ..Self::cell_based(policy, vdd, frequency_hz)
        }
    }
}

/// Runs one mitigation experiment.
///
/// # Panics
///
/// Panics on invalid workload parameters (propagated from the kernel
/// generators).
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    let (source, image, golden_base, golden) = cfg.workload.build(cfg.seed);
    let program = assemble(&source).expect("generated kernel assembles");
    let n = golden.len();
    let law = cfg.style.access_law();
    let injector_seed = cfg.seed ^ 0x5EED_F00D;
    let region_words = cfg.workload.scratchpad_words();
    let sp_words = region_words.next_power_of_two().max(2048.min(region_words * 2));

    let protection = match cfg.policy {
        MitigationPolicy::NoMitigation => Protection::None,
        MitigationPolicy::Secded => Protection::Secded,
        MitigationPolicy::Ocean => Protection::DetectOnly,
    };
    let mut pconfig = PlatformConfig::mparm_like(cfg.vdd, cfg.frequency_hz, protection)
        .with_memory_style(cfg.style);
    if cfg.policy == MitigationPolicy::Ocean {
        pconfig = pconfig.with_protected_buffer(region_words as u32);
    }

    match cfg.policy {
        MitigationPolicy::NoMitigation => {
            let mut sp = RawMemory::new(sp_words)
                .with_injector(FaultInjector::from_law(&law, cfg.vdd, injector_seed));
            for (i, &w) in image.iter().enumerate() {
                sp.store(i, w);
            }
            let mut platform = Platform::new(&pconfig, program, sp, None);
            let completed = platform.run(u64::MAX).is_ok();
            let correct = (0..n)
                .filter(|&i| platform.scratchpad().load(golden_base + i) == golden[i])
                .count();
            let injected = platform.scratchpad().injected_bits();
            finish(cfg, platform.cycles(), completed, correct, n, injected, 0, collect(
                &platform, cfg,
            ))
        }
        MitigationPolicy::Secded => {
            let mut sp = SecdedMemory::new(sp_words)
                .with_injector(FaultInjector::from_law(&law, cfg.vdd, injector_seed));
            for (i, &w) in image.iter().enumerate() {
                sp.store(i, w);
            }
            let mut platform = Platform::new(&pconfig, program, sp, None);
            let completed = platform.run(u64::MAX).is_ok();
            let correct = (0..n)
                .filter(|&i| platform.scratchpad().load(golden_base + i) == Ok(golden[i]))
                .count();
            let stats = platform.scratchpad().stats();
            let injected = platform.scratchpad().injected_bits();
            finish(
                cfg,
                platform.cycles(),
                completed,
                correct,
                n,
                injected,
                stats.corrected_bits,
                collect(&platform, cfg),
            )
        }
        MitigationPolicy::Ocean => {
            let sp = DetectOnlyMemory::new(sp_words)
                .with_injector(FaultInjector::from_law(&law, cfg.vdd, injector_seed));
            let pm = ProtectedMemory::new(region_words);
            let mut platform = Platform::new(&pconfig, program, sp, Some(pm));
            let mut initial = image.clone();
            initial.resize(region_words, 0);
            for (i, &w) in initial.iter().enumerate() {
                platform.scratchpad_mut().store(i, w);
            }
            let ocean_cfg = OceanConfig::new(0, region_words)
                .with_granularity(Granularity::WriteThrough);
            let mut runtime = OceanRuntime::new(ocean_cfg);
            let run = runtime.run(&mut platform, &initial, u64::MAX);
            let completed = !matches!(
                run,
                Err(OceanError::ProtectedBufferFailure { .. })
                    | Err(OceanError::RollbackStorm { .. })
                    | Err(OceanError::Trap(_))
                    | Err(OceanError::UnprotectedFault { .. })
            );
            // Verify against the golden copy maintained in the protected
            // buffer (the authoritative output under OCEAN).
            let correct = (0..n)
                .filter(|&i| {
                    platform
                        .protected()
                        .expect("buffer attached")
                        .load(golden_base + i)
                        .map(|v| v == golden[i])
                        .unwrap_or(false)
                })
                .count();
            let stats = runtime.stats();
            finish(
                cfg,
                platform.cycles(),
                completed,
                correct,
                n,
                0,
                stats.word_recoveries,
                collect(&platform, cfg),
            )
        }
    }
}

/// Snapshots the ledger into power figures at the configured frequency.
fn collect<M: ntc_sim::memory::DataPort>(
    platform: &Platform<M>,
    cfg: &ExperimentConfig,
) -> Vec<ModulePower> {
    let elapsed = platform.cycles() as f64 / cfg.frequency_hz;
    platform
        .ledger()
        .iter()
        .map(|(name, e)| ModulePower {
            name: name.to_string(),
            dynamic_w: e.dynamic_j / elapsed,
            leakage_w: e.leakage_j / elapsed,
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn finish(
    cfg: &ExperimentConfig,
    cycles: u64,
    completed: bool,
    correct_words: usize,
    total_words: usize,
    injected_bits: u64,
    repaired: u64,
    modules: Vec<ModulePower>,
) -> ExperimentResult {
    ExperimentResult {
        policy: cfg.policy,
        vdd: cfg.vdd,
        frequency_hz: cfg.frequency_hz,
        completed,
        correct_words,
        total_words,
        cycles,
        injected_bits,
        repaired,
        modules,
    }
}

/// The row for `policy` in a set of experiment results, looked up by
/// policy identity rather than position — reorderings of the result set
/// cannot silently redirect a savings computation to the wrong row.
pub fn result_for(
    rows: &[ExperimentResult],
    policy: MitigationPolicy,
) -> Option<&ExperimentResult> {
    rows.iter().find(|r| r.policy == policy)
}

/// Fractional total-power saving of `new` relative to `base`
/// (`1 − P_new / P_base`).
pub fn power_saving(base: &ExperimentResult, new: &ExperimentResult) -> f64 {
    1.0 - new.total_power_w() / base.total_power_w()
}

/// The Figure 8 experiment: 290 kHz on the cell-based memory at the
/// Table 2 voltages (0.55 / 0.44 / 0.33 V).
///
/// The three mitigation policies run concurrently via the parallel
/// engine; [`run_experiment`] is a pure function of its config (all
/// randomness is seeded inside), so the rows are identical to a serial
/// map and come back in policy order.
pub fn figure8() -> Vec<ExperimentResult> {
    figure8_seeded(2014)
}

/// [`figure8`] with an explicit input/fault seed.
pub fn figure8_seeded(seed: u64) -> Vec<ExperimentResult> {
    let solver =
        FitSolver::new(AccessLaw::cell_based_40nm(), 1e-15).with_grid(VoltageGrid::PaperGrid);
    par_map_slice(&MitigationPolicy::ALL, |&policy| {
        let _span = ntc_obs::span(format!("experiments.fig8.{}", policy_slug(policy)));
        let vdd = solver.min_voltage(policy.scheme());
        run_experiment(&ExperimentConfig {
            seed,
            ..ExperimentConfig::cell_based(policy, vdd, 290e3)
        })
    })
}

/// The Figure 9 experiment: 11 MHz on the commercial memory at
/// 0.88 / 0.77 / 0.66 V. Policies run concurrently, as in [`figure8`].
pub fn figure9() -> Vec<ExperimentResult> {
    figure9_seeded(2014)
}

/// [`figure9`] with an explicit input/fault seed.
pub fn figure9_seeded(seed: u64) -> Vec<ExperimentResult> {
    let solver =
        FitSolver::new(AccessLaw::commercial_40nm(), 1e-15).with_grid(VoltageGrid::PaperGrid);
    par_map_slice(&MitigationPolicy::ALL, |&policy| {
        let _span = ntc_obs::span(format!("experiments.fig9.{}", policy_slug(policy)));
        let vdd = solver.min_voltage(policy.scheme());
        run_experiment(&ExperimentConfig {
            seed,
            ..ExperimentConfig::commercial(policy, vdd, 11e6)
        })
    })
}

/// The abstract's headline ratios, measured on this reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Headline {
    /// Power saving of OCEAN vs. no mitigation at 290 kHz (paper: ≤ 70 %).
    pub ocean_vs_none_290khz: f64,
    /// Power saving of OCEAN vs. ECC at 290 kHz (paper: ≤ 48 %).
    pub ocean_vs_ecc_290khz: f64,
    /// Power saving of OCEAN vs. no mitigation at 11 MHz (paper: 34 %).
    pub ocean_vs_none_11mhz: f64,
    /// Power saving of OCEAN vs. ECC at 11 MHz (paper: 26 %).
    pub ocean_vs_ecc_11mhz: f64,
    /// Dynamic-power ratio between error-free-limit operation (0.55 V) and
    /// mitigated operation (0.33 V) — the conclusion's "3.3x lower
    /// dynamic power beyond the voltage limit for error free operation".
    pub dynamic_power_gain: f64,
}

impl Headline {
    /// Computes the headline ratios from already-measured Figure 8/9 rows.
    ///
    /// Rows are located by [`MitigationPolicy`], not by position, so any
    /// ordering of the inputs yields the same ratios.
    ///
    /// # Panics
    ///
    /// Panics if either slice is missing one of the three policies.
    pub fn from_rows(f8: &[ExperimentResult], f9: &[ExperimentResult]) -> Headline {
        let pick = |rows: &[ExperimentResult], policy| -> ExperimentResult {
            result_for(rows, policy)
                .unwrap_or_else(|| panic!("missing {policy:?} row"))
                .clone()
        };
        let (none8, ecc8, ocean8) = (
            pick(f8, MitigationPolicy::NoMitigation),
            pick(f8, MitigationPolicy::Secded),
            pick(f8, MitigationPolicy::Ocean),
        );
        let (none9, ecc9, ocean9) = (
            pick(f9, MitigationPolicy::NoMitigation),
            pick(f9, MitigationPolicy::Secded),
            pick(f9, MitigationPolicy::Ocean),
        );
        Headline {
            ocean_vs_none_290khz: power_saving(&none8, &ocean8),
            ocean_vs_ecc_290khz: power_saving(&ecc8, &ocean8),
            ocean_vs_none_11mhz: power_saving(&none9, &ocean9),
            ocean_vs_ecc_11mhz: power_saving(&ecc9, &ocean9),
            dynamic_power_gain: none8.dynamic_power_w() / ocean8.dynamic_power_w(),
        }
    }
}

/// Computes the headline ratios from the Figure 8/9 experiments.
pub fn headline() -> Headline {
    Headline::from_rows(&figure8(), &figure9())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: MitigationPolicy, vdd: f64) -> ExperimentConfig {
        ExperimentConfig {
            workload: Workload::Fft { n: 128 },
            ..ExperimentConfig::cell_based(policy, vdd, 290e3)
        }
    }

    fn small_fir(policy: MitigationPolicy, vdd: f64) -> ExperimentConfig {
        ExperimentConfig {
            workload: Workload::Fir { n: 128, taps: 8, block: 32 },
            ..ExperimentConfig::cell_based(policy, vdd, 290e3)
        }
    }

    #[test]
    fn no_mitigation_is_exact_at_error_free_voltage() {
        let r = run_experiment(&small(MitigationPolicy::NoMitigation, 0.55));
        assert!(r.completed);
        assert!(r.is_exact(), "{} of {} words", r.correct_words, r.total_words);
        assert_eq!(r.injected_bits, 0, "no errors at the knee");
    }

    #[test]
    fn no_mitigation_corrupts_below_the_knee() {
        // 0.33 V: the OCEAN operating point, hopeless without mitigation.
        let r = run_experiment(&small(MitigationPolicy::NoMitigation, 0.33));
        // Errors happen and nothing repairs them: silent corruption (or a
        // crash from corrupted addresses).
        assert!(r.injected_bits > 0);
        assert!(!r.is_exact(), "unprotected run must corrupt at 0.33 V");
    }

    #[test]
    fn secded_is_exact_at_its_solved_voltage() {
        let r = run_experiment(&small(MitigationPolicy::Secded, 0.44));
        assert!(r.completed);
        assert!(r.is_exact());
    }

    #[test]
    fn ocean_is_exact_at_its_solved_voltage_with_recoveries() {
        let r = run_experiment(&small(MitigationPolicy::Ocean, 0.33));
        assert!(r.completed);
        assert!(r.is_exact(), "{} of {}", r.correct_words, r.total_words);
        assert!(r.repaired > 0, "0.33 V must exercise the recovery path");
    }

    #[test]
    fn power_breakdown_has_all_modules() {
        let r = run_experiment(&small(MitigationPolicy::Ocean, 0.33));
        let names: Vec<&str> = r.modules.iter().map(|m| m.name.as_str()).collect();
        for want in ["core", "im", "sp", "pm"] {
            assert!(names.contains(&want), "missing module {want}");
        }
        assert!(r.total_power_w() > 0.0);
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn lower_voltage_lower_power_under_protection() {
        let hi = run_experiment(&small(MitigationPolicy::Secded, 0.55));
        let lo = run_experiment(&small(MitigationPolicy::Secded, 0.44));
        assert!(lo.total_power_w() < hi.total_power_w());
    }

    #[test]
    fn figure8_shape_matches_paper() {
        let rows = figure8();
        assert_eq!(rows.len(), 3);
        // Everyone completes and is numerically exact at their voltage.
        for r in &rows {
            assert!(r.is_exact(), "{}: {} of {}", r.policy, r.correct_words, r.total_words);
        }
        let p_none = rows[0].total_power_w();
        let p_ecc = rows[1].total_power_w();
        let p_ocean = rows[2].total_power_w();
        // The ordering the paper reports: mitigation saves power, OCEAN
        // saves the most.
        assert!(p_ecc < p_none, "ECC must beat no mitigation");
        assert!(p_ocean < p_ecc, "OCEAN must beat ECC");
        // Shape targets: ~70 % and ~48 % savings (generous bands).
        let s_none = 1.0 - p_ocean / p_none;
        let s_ecc = 1.0 - p_ocean / p_ecc;
        assert!((0.45..0.85).contains(&s_none), "OCEAN vs none: {s_none:.2}");
        assert!((0.20..0.65).contains(&s_ecc), "OCEAN vs ECC: {s_ecc:.2}");
    }

    #[test]
    fn figure9_shape_matches_paper() {
        let rows = figure9();
        for r in &rows {
            assert!(r.is_exact(), "{}: {} of {}", r.policy, r.correct_words, r.total_words);
        }
        let p_none = rows[0].total_power_w();
        let p_ecc = rows[1].total_power_w();
        let p_ocean = rows[2].total_power_w();
        assert!(p_ocean < p_ecc && p_ecc < p_none);
        let s_none = 1.0 - p_ocean / p_none;
        let s_ecc = 1.0 - p_ocean / p_ecc;
        // Paper: 34 % and 26 %.
        assert!((0.15..0.60).contains(&s_none), "OCEAN vs none: {s_none:.2}");
        assert!((0.10..0.50).contains(&s_ecc), "OCEAN vs ECC: {s_ecc:.2}");
        // And the 11 MHz case burns an order of magnitude more power than
        // the 290 kHz case.
        let f8 = figure8();
        assert!(p_none > 5.0 * f8[0].total_power_w());
    }

    #[test]
    fn fir_workload_exact_under_all_policies() {
        // The paper: "the analysis is applicable to other streaming
        // applications as well" — verified at system level.
        for (policy, vdd) in [
            (MitigationPolicy::NoMitigation, 0.55),
            (MitigationPolicy::Secded, 0.44),
            (MitigationPolicy::Ocean, 0.33),
        ] {
            let r = run_experiment(&small_fir(policy, vdd));
            assert!(r.is_exact(), "{policy} at {vdd} V: {}/{}", r.correct_words, r.total_words);
        }
    }

    #[test]
    fn fir_corrupts_without_mitigation_at_ntv() {
        let r = run_experiment(&small_fir(MitigationPolicy::NoMitigation, 0.33));
        assert!(!r.is_exact(), "unprotected FIR must corrupt at 0.33 V");
    }
}
