//! The parallelism argument of Section V.
//!
//! "For the highest frequency the gains are very limited because we cannot
//! reduce the voltage … This motivates the use of parallelism to allow
//! reducing the required frequencies and to exploit the quadratic voltage
//! gains at a quasi-linear parallelization cost (applications like FFT
//! support this)."
//!
//! [`ParallelPlan`] makes that quantitative: splitting a throughput
//! requirement over `n` cores lets each run at `f/n`, which lowers the
//! required supply through the platform timing model; dynamic energy per
//! operation falls quadratically with that voltage while area/leakage grow
//! ~linearly with `n`. The sweet spot is where leakage growth catches up
//! with the quadratic gain.

use crate::fit::{FitSolver, Scheme};
use ntc_sim::platform::{Platform, PlatformConfig, Protection};
use ntc_sim::memory::RawMemory;
use ntc_sim::asm::assemble;
use ntc_sim::fft::{fft_program, random_input, scratchpad_words, twiddle_table};
use std::fmt;

/// One candidate degree of parallelism.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParallelPoint {
    /// Number of cores.
    pub cores: u32,
    /// Clock each core runs at, hertz.
    pub per_core_hz: f64,
    /// Operating voltage satisfying both the FIT budget and per-core
    /// timing.
    pub vdd: f64,
    /// Total power of all cores at that point, watts.
    pub power_w: f64,
    /// Energy per (aggregate) workload unit relative to the single-core
    /// plan (1.0 = same).
    pub relative_energy: f64,
}

impl fmt::Display for ParallelPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores @ {:.3} MHz, {:.2} V: {:.3} µW ({:.2}x energy)",
            self.cores,
            self.per_core_hz / 1e6,
            self.vdd,
            self.power_w * 1e6,
            self.relative_energy
        )
    }
}

/// Explores degrees of parallelism for a fixed aggregate throughput.
///
/// # Example
///
/// ```no_run
/// use ntc::parallel::ParallelPlan;
/// use ntc::fit::Scheme;
///
/// let plan = ParallelPlan::new(1.96e6, Scheme::Ocean);
/// let points = plan.explore(&[1, 2, 4]);
/// // Two cores at half frequency each reach a lower voltage than one.
/// assert!(points[1].vdd < points[0].vdd);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelPlan {
    aggregate_hz: f64,
    scheme: Scheme,
    solver: FitSolver,
}

impl ParallelPlan {
    /// Plans for an aggregate throughput requirement under `scheme`
    /// (cell-based memory, FIT 1e-15, paper grid off — exact voltages, so
    /// the voltage benefit of each doubling is visible).
    ///
    /// # Panics
    ///
    /// Panics if `aggregate_hz` is not finite and positive.
    pub fn new(aggregate_hz: f64, scheme: Scheme) -> Self {
        assert!(
            aggregate_hz.is_finite() && aggregate_hz > 0.0,
            "throughput must be positive"
        );
        Self {
            aggregate_hz,
            scheme,
            solver: FitSolver::new(
                ntc_sram::failure::AccessLaw::cell_based_40nm(),
                1e-15,
            ),
        }
    }

    /// The operating point for one degree of parallelism: each of `cores`
    /// runs at `aggregate/cores`, at the max(FIT, timing) voltage; power
    /// is measured by actually running the FFT workload on one core's
    /// platform and multiplying (quasi-linear parallelization cost: the
    /// paper's assumption, and exact for data-parallel FFT batches).
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn point(&self, cores: u32) -> ParallelPoint {
        assert!(cores > 0, "need at least one core");
        let per_core_hz = self.aggregate_hz / cores as f64;
        let solved = self
            .solver
            .solve(self.scheme, per_core_hz, crate::fit::paper_platform_f_max);
        let vdd = solved.operating;
        // Measure one core's power on the real workload.
        let n = 128;
        let program = assemble(&fft_program(n)).expect("assembles");
        let cfg = PlatformConfig::mparm_like(vdd, per_core_hz, Protection::None);
        let mut sp = RawMemory::new(scratchpad_words(n).next_power_of_two());
        for (i, &w) in random_input(n, 7)
            .iter()
            .chain(twiddle_table(n).iter())
            .enumerate()
        {
            sp.store(i, w);
        }
        let mut platform = Platform::new(&cfg, program, sp, None);
        platform.run(u64::MAX).expect("error-free run");
        let elapsed = platform.cycles() as f64 / per_core_hz;
        let per_core_power = platform.ledger().total_j() / elapsed;
        ParallelPoint {
            cores,
            per_core_hz,
            vdd,
            power_w: per_core_power * cores as f64,
            relative_energy: 0.0, // filled by explore()
        }
    }

    /// Explores a set of core counts, normalizing energy to the first.
    ///
    /// # Panics
    ///
    /// Panics if `core_counts` is empty or contains zero.
    pub fn explore(&self, core_counts: &[u32]) -> Vec<ParallelPoint> {
        assert!(!core_counts.is_empty(), "need at least one candidate");
        let mut points: Vec<ParallelPoint> =
            core_counts.iter().map(|&c| self.point(c)).collect();
        // At fixed aggregate throughput, energy per work unit ∝ total power.
        let base = points[0].power_w;
        for p in &mut points {
            p.relative_energy = p.power_w / base;
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_lowers_voltage_until_the_error_floor() {
        let plan = ParallelPlan::new(1.96e6, Scheme::Ocean);
        let pts = plan.explore(&[1, 2, 4, 8]);
        // Voltage falls with each doubling until the FIT floor (0.33 V).
        assert!(pts[0].vdd > pts[1].vdd, "{} vs {}", pts[0].vdd, pts[1].vdd);
        assert!(pts[1].vdd >= pts[2].vdd);
        let floor = plan.solver.error_constrained_voltage(Scheme::Ocean);
        assert!(pts[3].vdd >= floor - 1e-9);
        assert!((pts[3].vdd - floor).abs() < 0.05, "deep parallelism hits the floor");
    }

    #[test]
    fn two_cores_save_energy_at_high_throughput() {
        // The paper's motivating case: at 1.96 MHz the single-core OCEAN
        // point is performance-limited (0.44 V); two cores at 0.98 MHz
        // each run lower and save net energy despite double leakage.
        let plan = ParallelPlan::new(1.96e6, Scheme::Ocean);
        let pts = plan.explore(&[1, 2]);
        assert!(
            pts[1].relative_energy < 1.0,
            "2 cores should save energy: {:.2}x",
            pts[1].relative_energy
        );
    }

    #[test]
    fn diminishing_returns_once_voltage_floors() {
        let plan = ParallelPlan::new(290e3, Scheme::Ocean);
        // Already at the error floor single-core: extra cores only add
        // leakage.
        let pts = plan.explore(&[1, 2]);
        assert!(
            pts[1].relative_energy > 1.0,
            "parallelizing a floored design must cost energy: {:.2}x",
            pts[1].relative_energy
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        ParallelPlan::new(1e6, Scheme::Secded).point(0);
    }

    #[test]
    fn display_nonempty() {
        let p = ParallelPlan::new(1.96e6, Scheme::Secded).point(1);
        assert!(!p.to_string().is_empty());
    }
}
