//! The experiment registry: every reproduction in this workspace as a
//! uniform, enumerable [`Experiment`] producing a structured
//! [`Artifact`].
//!
//! Before this module each figure/table lived in its own binary with its
//! own `println!` formatting, and the paper's anchor numbers were
//! scattered across binaries, benches and tests. Here each reproduction
//! is a zero-sized type implementing [`Experiment`]; [`registry`]
//! enumerates them all, and the artifacts they return carry the paper
//! anchors ([`PaperRef`]) in exactly one place — `repro check`, the
//! paper-number tests and the docs all read the same values.
//!
//! # Determinism
//!
//! [`RunCtx`] fixes the seed, and every experiment routes randomness
//! through counter-based seeded sources (see `ntc_stats::exec`), so an
//! artifact is a pure function of `(experiment id, seed, scale)` — the
//! JSON rendering is byte-identical across runs and thread counts.
//!
//! # Typed ids
//!
//! Experiments are addressed by the exhaustive [`ExperimentId`] enum,
//! not raw strings: [`find_id`] is infallible, and external strings
//! (CLI arguments, HTTP request bodies) enter through
//! [`ExperimentId::from_str`], whose error enumerates every valid id.
//!
//! ```
//! use ntc::repro::{find_id, ExperimentId, RunCtx};
//!
//! let ctx = RunCtx::builder().quick().build();
//! let table2 = find_id(ExperimentId::Table2).run(&ctx);
//! assert!(table2.passed(), "every Table 2 cell is in band");
//! assert_eq!("table2".parse::<ExperimentId>(), Ok(ExperimentId::Table2));
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

use crate::error::NtcError;

use crate::artifact::{Artifact, Cell, Column, PaperRef, Series, Table};
use crate::experiments::{
    figure8_seeded, figure9_seeded, power_saving, result_for, ExperimentResult, Headline,
    MitigationPolicy,
};
use crate::fit::{paper_platform_model, FitSolver, Scheme, VoltageGrid};
use crate::monitor::{simulate_lifetime, AgingModel, VoltageController};
use ntc_memcalc::cache::CachedSoc;
use ntc_sram::failure::{AccessLaw, RetentionLaw};

/// How much Monte-Carlo work an experiment run may spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scale {
    /// Full paper-fidelity sample counts — what `repro run` uses.
    Paper,
    /// Reduced sample counts for debug-build test suites. Only
    /// Monte-Carlo *measurement* sizes shrink; every solver, model
    /// evaluation and anchor stays at full fidelity.
    Quick,
}

impl Scale {
    /// Lowercase name, as recorded in provenance sidecars.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }
}

/// Shared context for one batch of experiment runs: the seed, the
/// Monte-Carlo scale, the memoized platform timing model from the
/// energy-model cache, and once-per-context memos of the Figure 8/9
/// platform runs (shared by `fig8`, `fig9` and `headline`).
pub struct RunCtx {
    seed: u64,
    scale: Scale,
    platform: CachedSoc,
    fig8: OnceLock<Vec<ExperimentResult>>,
    fig9: OnceLock<Vec<ExperimentResult>>,
}

/// Builder for [`RunCtx`] with documented defaults.
///
/// | field  | default | meaning |
/// |--------|---------|---------|
/// | `seed` | `2014` (the paper's year) | root of every counter-based random stream |
/// | `scale`| [`Scale::Paper`] | full-fidelity Monte-Carlo sample counts |
///
/// Worker-thread count is not a per-context knob: the parallel engine
/// resolves it once per process from `NTC_THREADS` or the available
/// parallelism (see `ntc_stats::exec::threads`), and it never affects
/// results — only wall-clock time.
///
/// ```
/// use ntc::repro::{RunCtx, Scale};
///
/// let ctx = RunCtx::builder().seed(7).scale(Scale::Quick).build();
/// assert_eq!(ctx.seed(), 7);
/// assert_eq!(ctx.scale(), Scale::Quick);
/// ```
#[derive(Debug, Clone, Copy)]
#[must_use = "call .build() to obtain a RunCtx"]
pub struct RunCtxBuilder {
    seed: u64,
    scale: Scale,
}

impl RunCtxBuilder {
    /// Replaces the input/fault seed (default 2014).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the Monte-Carlo scale (default [`Scale::Paper`]).
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Shorthand for `.scale(Scale::Quick)`.
    pub fn quick(self) -> Self {
        self.scale(Scale::Quick)
    }

    /// Builds the context (constructs the memoized platform model).
    pub fn build(self) -> RunCtx {
        RunCtx {
            seed: self.seed,
            scale: self.scale,
            platform: paper_platform_model(),
            fig8: OnceLock::new(),
            fig9: OnceLock::new(),
        }
    }
}

impl Default for RunCtxBuilder {
    fn default() -> Self {
        RunCtxBuilder { seed: 2014, scale: Scale::Paper }
    }
}

impl RunCtx {
    /// A builder with the documented defaults (seed 2014, paper scale).
    pub fn builder() -> RunCtxBuilder {
        RunCtxBuilder::default()
    }

    /// Full-fidelity context with the paper's seed (2014).
    pub fn paper() -> Self {
        Self::builder().build()
    }

    /// Reduced-Monte-Carlo context for fast (debug-build) test runs.
    pub fn quick() -> Self {
        Self::builder().quick().build()
    }

    /// A context at an explicit scale.
    pub fn with_scale(scale: Scale) -> Self {
        Self::builder().scale(scale).build()
    }

    /// Replaces the input/fault seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The input/fault seed experiments derive their streams from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The Monte-Carlo scale of this context.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Worker threads the parallel engine resolved for this process.
    pub fn threads(&self) -> usize {
        ntc_stats::exec::threads()
    }

    /// The memoized platform timing/energy model.
    pub fn platform(&self) -> &CachedSoc {
        &self.platform
    }

    /// The platform `f_max` closure solvers take (memoized via
    /// [`RunCtx::platform`]).
    pub fn f_max(&self) -> impl Fn(f64) -> f64 + Copy + Sync + '_ {
        move |vdd| self.platform.f_max(vdd)
    }

    /// Scales a full-fidelity Monte-Carlo sample count to this context's
    /// scale. [`Scale::Paper`] returns `full`; [`Scale::Quick`] divides
    /// by 20 but never drops below 1000 samples.
    pub fn mc(&self, full: u64) -> u64 {
        match self.scale {
            Scale::Paper => full,
            Scale::Quick => (full / 20).max(1000),
        }
    }

    /// The Figure 8 platform rows, measured once per context.
    pub fn figure8_rows(&self) -> &[ExperimentResult] {
        self.fig8.get_or_init(|| figure8_seeded(self.seed))
    }

    /// The Figure 9 platform rows, measured once per context.
    pub fn figure9_rows(&self) -> &[ExperimentResult] {
        self.fig9.get_or_init(|| figure9_seeded(self.seed))
    }
}

impl Default for RunCtx {
    fn default() -> Self {
        Self::paper()
    }
}

/// One registered reproduction of a paper figure, table or claim.
pub trait Experiment: Sync {
    /// Typed identifier; its [`ExperimentId::as_str`] form (`fig8`,
    /// `table2`, `ablation_phases`, …) is what artifacts and CLIs show.
    fn id(&self) -> ExperimentId;
    /// One-line description for `repro list`.
    fn description(&self) -> &'static str;
    /// Where in the paper the reproduced quantity lives (`"Fig. 4"`,
    /// `"Table 2"`, …); ablations cite the section their model
    /// extends. Shown by `repro list --verbose`.
    fn paper_ref(&self) -> &'static str;
    /// Runs the reproduction and returns its structured artifact.
    fn run(&self, ctx: &RunCtx) -> Artifact;
}

/// Declares the exhaustive experiment id enum next to the only
/// id → implementation match, so adding an experiment is one line here
/// and the compiler walks every consumer through the change.
macro_rules! experiment_registry {
    ($(($variant:ident, $name:literal, $ty:ident)),* $(,)?) => {
        /// Typed identifier of every registered experiment.
        ///
        /// The enum is exhaustive over the registry: a value of this
        /// type always resolves via [`find_id`], and matching on it
        /// forces consumers to handle new experiments at compile time.
        /// String forms (CLI arguments, JSON requests) convert through
        /// [`FromStr`]/[`fmt::Display`] using the same stable names
        /// artifacts carry (`fig8`, `table2`, `ablation_phases`, …).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub enum ExperimentId {
            $(
                #[doc = concat!("`", $name, "`")]
                $variant,
            )*
        }

        impl ExperimentId {
            /// Every experiment id, in paper (registry) order.
            pub const ALL: [ExperimentId; experiment_registry!(@count $($variant)*)] =
                [$(ExperimentId::$variant),*];

            /// The stable string form (also the artifact id).
            pub fn as_str(self) -> &'static str {
                match self {
                    $(ExperimentId::$variant => $name),*
                }
            }
        }

        /// Looks up the implementation of a typed id (infallible — the
        /// enum is exhaustive over the registry).
        pub fn find_id(id: ExperimentId) -> Box<dyn Experiment> {
            match id {
                $(ExperimentId::$variant => Box::new($ty)),*
            }
        }

        impl FromStr for ExperimentId {
            type Err = NtcError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                match s {
                    $($name => Ok(ExperimentId::$variant),)*
                    _ => Err(NtcError::UnknownExperiment { id: s.to_string() }),
                }
            }
        }
    };
    (@count $($x:ident)*) => { 0usize $(+ { let _ = stringify!($x); 1 })* };
}

experiment_registry![
    (Fig1, "fig1", Fig1),
    (Fig3, "fig3", Fig3),
    (Fig4, "fig4", Fig4),
    (Fig5, "fig5", Fig5),
    (Fig6, "fig6", Fig6),
    (Fig7, "fig7", Fig7),
    (Fig8, "fig8", Fig8),
    (Fig9, "fig9", Fig9),
    (Fig10, "fig10", Fig10),
    (Table1, "table1", Table1),
    (Table2, "table2", Table2),
    (Headline, "headline", HeadlineClaims),
    (Profile, "profile", Profile),
    (AblationInterleave, "ablation_interleave", AblationInterleave),
    (AblationPhases, "ablation_phases", AblationPhases),
    (AblationCorrelation, "ablation_correlation", AblationCorrelation),
    (AblationGuardband, "ablation_guardband", AblationGuardband),
    (AblationBanking, "ablation_banking", AblationBanking),
    (AblationDetection, "ablation_detection", AblationDetection),
    (AblationBufferCode, "ablation_buffer_code", AblationBufferCode),
    (AblationTailMc, "ablation_tail_mc", AblationTailMc),
    (AblationOptimize, "ablation_optimize", AblationOptimize),
];

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Every reproduction in the workspace, in paper order.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    ExperimentId::ALL.iter().map(|&id| find_id(id)).collect()
}

/// Looks an experiment up by its string id.
///
/// Deprecation shim for pre-`ExperimentId` callers: external strings
/// still resolve, but the `Option` hides *why* a lookup failed. New
/// code parses an [`ExperimentId`] (whose error lists the valid ids)
/// and calls the infallible [`find_id`].
#[deprecated(since = "0.1.0", note = "parse an `ExperimentId` and call `find_id` instead")]
pub fn find(id: &str) -> Option<Box<dyn Experiment>> {
    id.parse::<ExperimentId>().ok().map(find_id)
}

/// The string ids of every registered experiment, in registry order.
pub fn experiment_ids() -> Vec<&'static str> {
    ExperimentId::ALL.iter().map(|id| id.as_str()).collect()
}

/// Runs one experiment under a `repro.<id>` span.
///
/// The span (like every `ntc-obs` hook) is inert unless the
/// observability layer is enabled, and the artifact never depends on it
/// either way — artifacts stay pure functions of `(id, seed, scale)`.
pub fn run_one(e: &dyn Experiment, ctx: &RunCtx) -> Artifact {
    let _span = ntc_obs::span(format!("repro.{}", e.id()));
    e.run(ctx)
}

/// Runs every registered experiment under one context, in registry
/// order.
pub fn run_all(ctx: &RunCtx) -> Vec<Artifact> {
    registry().iter().map(|e| run_one(e.as_ref(), ctx)).collect()
}

// ---------------------------------------------------------------------
// Figure 1 — energy per cycle vs supply, COTS vs cell-based platform.
// ---------------------------------------------------------------------

/// Figure 1: energy/cycle vs V_DD for the 40 nm signal processor.
struct Fig1;

impl Experiment for Fig1 {
    fn id(&self) -> ExperimentId {
        ExperimentId::Fig1
    }
    fn paper_ref(&self) -> &'static str {
        "Fig. 1"
    }
    fn description(&self) -> &'static str {
        "Energy per cycle vs supply: commercial memory floor vs cell-based single supply"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        use ntc_memcalc::soc::SocEnergyModel;
        use ntc_stats::sweep::voltage_grid;

        let cots = SocEnergyModel::exg_processor_40nm();
        let cell = SocEnergyModel::exg_processor_cell_based_40nm();

        let mut table = Table::new(
            "energy_per_cycle",
            vec![
                Column::new("vdd", "V"),
                Column::new("logic_dyn", "pJ"),
                Column::new("mem_dyn", "pJ"),
                Column::new("leakage", "pJ"),
                Column::new("total_cots", "pJ"),
                Column::new("total_cell", "pJ"),
            ],
        );
        for vdd in voltage_grid(0.40, 1.10, 50) {
            let p = cots.operating_point(vdd);
            let c = cell.operating_point(vdd);
            table.push_row(vec![
                Cell::Num(vdd),
                Cell::Num(p.components[0].dynamic_j * 1e12),
                Cell::Num(p.components[1].dynamic_j * 1e12),
                Cell::Num(p.leakage_j() * 1e12),
                Cell::Num(p.total_j() * 1e12),
                Cell::Num(c.total_j() * 1e12),
            ]);
        }

        let cots_opt = cots.optimal_voltage(0.4, 1.1, 141);
        let cell_opt = cell.optimal_voltage(0.4, 1.1, 141);
        let pt = cots.operating_point(0.55);
        let mid = cots.operating_point(0.5);
        // The commercial macro's dynamic energy is flat below its supply
        // floor: equal at 0.69 V and 0.45 V.
        let floor_ratio = cots.operating_point(0.69).components[1].dynamic_j
            / cots.operating_point(0.45).components[1].dynamic_j;

        Artifact::new("fig1", "Figure 1 — energy/cycle vs VDD (40nm LP signal processor)")
            .with_table(table)
            .with_scalar("COTS-memory optimum voltage", "V", cots_opt)
            .with_scalar("cell-based optimum voltage", "V", cell_opt)
            .with_anchor(
                "memory floor flatness (dyn 0.69V / 0.45V)",
                "ratio",
                floor_ratio,
                PaperRef::exact(1.0),
            )
            .with_anchor(
                "leakage / dynamic at 0.5 V",
                "ratio",
                mid.leakage_j() / mid.dynamic_j(),
                PaperRef::at_least(1.0, 1.0),
            )
            .with_anchor(
                "optimum shift from removing the floor",
                "V",
                cots_opt - cell_opt,
                PaperRef::at_least(0.0, 0.0),
            )
            .with_scalar("leakage share at 0.55 V", "%", 100.0 * pt.leakage_j() / pt.total_j())
    }
}

// ---------------------------------------------------------------------
// Figure 3 — minimal retention voltage vs memory location.
// ---------------------------------------------------------------------

/// Figure 3: failure maps of one commercial and one cell-based die.
struct Fig3;

impl Experiment for Fig3 {
    fn id(&self) -> ExperimentId {
        ExperimentId::Fig3
    }
    fn paper_ref(&self) -> &'static str {
        "Fig. 3"
    }
    fn description(&self) -> &'static str {
        "Minimal retention voltage vs location: failure maps at stepped supplies"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        use ntc_sram::diemap::{DieMap, DieMapConfig};
        use ntc_stats::rng::Source;

        let mut artifact =
            Artifact::new("fig3", "Figure 3 — minimal retention voltage vs location (1k x 32b)");
        let mut table = Table::new(
            "retention_maps",
            vec![
                Column::bare("memory"),
                Column::new("vdd", "V"),
                Column::new("failing_bits", "bits"),
            ],
        );
        for (name, law, seed) in [
            ("commercial", RetentionLaw::commercial_40nm(), 11u64),
            ("cell-based", RetentionLaw::cell_based_40nm(), 12u64),
        ] {
            let cfg = DieMapConfig::new(128, 256, law);
            let die = DieMap::synthesize(&cfg, &mut Source::seeded(seed));
            let v_worst = die.min_retention_supply();
            artifact = artifact
                .with_scalar(&format!("{name} worst-bit retention"), "V", v_worst)
                .with_anchor(
                    &format!("{name} failing bits at the worst-bit supply"),
                    "bits",
                    die.failing_bits(v_worst).len() as f64,
                    PaperRef::exact(0.0),
                );
            for step in 0..=3 {
                let vdd = v_worst - 0.012 * f64::from(step);
                table.push_row(vec![
                    Cell::Text(name.to_string()),
                    Cell::Num(vdd),
                    Cell::Num(die.failing_bits(vdd).len() as f64),
                ]);
            }
        }
        artifact.with_table(table)
    }
}

// ---------------------------------------------------------------------
// Figure 4 — retention BER vs supply with the Eq. 4 fit recovered.
// ---------------------------------------------------------------------

/// Figure 4: cumulative retention BER over nine dies + probit re-fit.
struct Fig4;

impl Experiment for Fig4 {
    fn id(&self) -> ExperimentId {
        ExperimentId::Fig4
    }
    fn paper_ref(&self) -> &'static str {
        "Fig. 4 / Eq. 4"
    }
    fn description(&self) -> &'static str {
        "Retention BER vs supply over 9 dies, with the Eq. 4 Gaussian fit recovered"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        use ntc_sram::diemap::{DieMap, DieMapConfig};
        use ntc_stats::fit::probit_line_fit;
        use ntc_stats::sweep::voltage_grid;

        let mut artifact =
            Artifact::new("fig4", "Figure 4 — retention BER vs VDD (9 dies, both memories)");
        for (name, law, seed) in [
            ("commercial", RetentionLaw::commercial_40nm(), 40u64),
            ("cell-based", RetentionLaw::cell_based_40nm(), 41u64),
        ] {
            let cfg = DieMapConfig::new(128, 256, law);
            let dies = DieMap::synthesize_population(&cfg, 9, seed);
            let grid = voltage_grid(
                (law.mean() - 2.0 * law.sigma()).max(0.05),
                law.mean() + 4.5 * law.sigma(),
                10,
            );
            let mut measured = Vec::new();
            let mut model = Vec::new();
            let mut vs = Vec::new();
            let mut ps = Vec::new();
            for &vdd in &grid {
                let ber = DieMap::population_ber(&dies, vdd);
                measured.push((vdd, ber));
                model.push((vdd, law.p_bit(vdd)));
                if ber > 0.0 && ber < 1.0 {
                    vs.push(vdd);
                    ps.push(ber);
                }
            }
            artifact = artifact
                .with_series(Series::new(
                    &format!("{name} measured BER"),
                    ("vdd", "V"),
                    ("ber", "1"),
                    measured,
                ))
                .with_series(Series::new(
                    &format!("{name} Eq.4 model"),
                    ("vdd", "V"),
                    ("ber", "1"),
                    model,
                ));
            if let Ok(line) = probit_line_fit(&vs, &ps) {
                // p = Φ(√2·(slope·V + b)) ⇒ mean = −b/slope, σ = −1/(√2·slope)
                let sigma = -1.0 / (std::f64::consts::SQRT_2 * line.slope);
                let mean = -line.intercept / line.slope;
                // Fit diagnostics are observability, not results: the
                // residuals are evaluated in probability space (the same
                // space the anchors live in) and published as gauges only.
                if ntc_obs::enabled() {
                    let predicted: Vec<f64> = vs
                        .iter()
                        .map(|&v| ntc_stats::math::phi(std::f64::consts::SQRT_2 * line.predict(v)))
                        .collect();
                    if let Ok(q) = ntc_stats::fit::FitQuality::against(&predicted, &ps) {
                        q.publish(&format!("diag.fig4.{name}.fit"));
                    }
                }
                artifact = artifact
                    .with_anchor(
                        &format!("{name} recovered retention mean"),
                        "V",
                        mean,
                        PaperRef::abs(law.mean(), 0.02),
                    )
                    .with_scalar(&format!("{name} recovered retention sigma"), "V", sigma)
                    .with_anchor(
                        &format!("{name} probit fit R^2"),
                        "1",
                        line.r_squared,
                        PaperRef::at_least(1.0, 0.9),
                    );
            }
        }
        artifact
    }
}

// ---------------------------------------------------------------------
// Figure 5 — access error probability vs supply (Eq. 5).
// ---------------------------------------------------------------------

/// Figure 5: Monte-Carlo access error rate against the Eq. 5 power law.
struct Fig5;

impl Experiment for Fig5 {
    fn id(&self) -> ExperimentId {
        ExperimentId::Fig5
    }
    fn paper_ref(&self) -> &'static str {
        "Fig. 5 / Eq. 5"
    }
    fn description(&self) -> &'static str {
        "Access error probability vs supply: Monte-Carlo measurement vs the Eq. 5 law"
    }
    fn run(&self, ctx: &RunCtx) -> Artifact {
        use ntc_sim::memory::FaultInjector;
        use ntc_stats::fit::fit_power_law;
        use ntc_stats::sweep::voltage_grid;

        fn measure(law: &AccessLaw, vdd: f64, accesses: u64, seed: u64) -> f64 {
            let mut inj = FaultInjector::from_law(law, vdd, seed);
            let mut flipped = 0u64;
            for _ in 0..accesses {
                flipped += u64::from(inj.mask(32).count_ones());
            }
            flipped as f64 / (accesses * 32) as f64
        }

        let commercial = AccessLaw::commercial_40nm();
        let cell = AccessLaw::cell_based_40nm();
        let mut artifact = Artifact::new("fig5", "Figure 5 — access error probability vs VDD")
            .with_anchor(
                "Eq.5 commercial amplitude A",
                "1",
                commercial.amplitude(),
                PaperRef::exact(6.0),
            )
            .with_anchor(
                "Eq.5 commercial exponent k",
                "1",
                commercial.exponent(),
                PaperRef::exact(6.14),
            )
            .with_anchor("Eq.5 commercial knee V0", "V", commercial.v0(), PaperRef::exact(0.85))
            .with_anchor("cell-based knee V0", "V", cell.v0(), PaperRef::exact(0.55));

        // Cross-check the cell-based law against the sharded Monte-Carlo
        // engine: `mc_ber_sweep` routes every voltage point through
        // `exec::mc_counter`, so the counters are a pure function of
        // (trials, seed) — bit-identical at any thread count — and common
        // random numbers keep the estimated curve exactly monotone. Under
        // `--trace` each point appears as 64 `exec.mc.shard` spans.
        let mc_grid = voltage_grid(0.30, 0.54, 12);
        let sweep = cell.mc_ber_sweep(&mc_grid, ctx.mc(200_000), 11);
        // Convergence diagnostics for the lowest-voltage (highest-rate)
        // point: `mc_ber_shards` returns the per-shard counters whose
        // in-order merge is bit-identical to the sweep's own estimate,
        // so the published standard error / CI describe the estimator
        // above — not a re-measurement with different randomness.
        if ntc_obs::enabled() {
            ntc_stats::diag::Convergence::from_counters(&cell.mc_ber_shards(
                mc_grid[0],
                ctx.mc(200_000),
                11,
            ))
            .publish("diag.fig5.mc");
        }
        artifact = artifact.with_series(Series::new(
            "cell-based sharded MC",
            ("vdd", "V"),
            ("p_bit", "1"),
            mc_grid
                .iter()
                .zip(&sweep)
                .map(|(&v, c)| (v, c.hits() as f64 / c.trials() as f64))
                .collect(),
        ));

        let accesses = ctx.mc(300_000);
        for (name, law, range) in
            [("commercial", commercial, (0.55, 0.84)), ("cell-based", cell, (0.30, 0.54))]
        {
            let grid = voltage_grid(range.0, range.1, 20);
            let mut measured = Vec::new();
            let mut model = Vec::new();
            let mut vs = Vec::new();
            let mut ps = Vec::new();
            for &vdd in &grid {
                let p = measure(&law, vdd, accesses, 7 + (vdd * 1000.0) as u64);
                measured.push((vdd, p));
                model.push((vdd, law.p_bit(vdd)));
                if p > 0.0 {
                    vs.push(vdd);
                    ps.push(p);
                }
            }
            artifact = artifact
                .with_series(Series::new(
                    &format!("{name} measured"),
                    ("vdd", "V"),
                    ("p_bit", "1"),
                    measured,
                ))
                .with_series(Series::new(
                    &format!("{name} Eq.5 model"),
                    ("vdd", "V"),
                    ("p_bit", "1"),
                    model,
                ));
            if let Ok(fit) = fit_power_law(&vs, &ps, (range.1 + 0.005, range.1 + 0.12)) {
                if ntc_obs::enabled() {
                    let predicted: Vec<f64> = vs.iter().map(|&v| fit.predict(v)).collect();
                    if let Ok(q) = ntc_stats::fit::FitQuality::against(&predicted, &ps) {
                        q.publish(&format!("diag.fig5.{name}.fit"));
                    }
                }
                artifact = artifact
                    .with_scalar(&format!("{name} re-fit amplitude"), "1", fit.amplitude)
                    .with_scalar(&format!("{name} re-fit exponent"), "1", fit.exponent);
                // Only the commercial law's onset is steep enough for the
                // re-fitted knee to be stable at reduced sample counts;
                // the shallow cell-based knee stays informational.
                artifact = if name == "commercial" {
                    artifact.with_anchor(
                        &format!("{name} re-fit knee V0"),
                        "V",
                        fit.v0,
                        PaperRef::abs(law.v0(), 0.04),
                    )
                } else {
                    artifact.with_scalar(&format!("{name} re-fit knee V0"), "V", fit.v0)
                };
            }
        }
        artifact
    }
}

// ---------------------------------------------------------------------
// Figure 6 — the evaluated architecture.
// ---------------------------------------------------------------------

/// Figure 6: the simulated platform configuration.
struct Fig6;

impl Experiment for Fig6 {
    fn id(&self) -> ExperimentId {
        ExperimentId::Fig6
    }
    fn paper_ref(&self) -> &'static str {
        "Fig. 6"
    }
    fn description(&self) -> &'static str {
        "The simulated platform: core, IM, SP, DMA and the OCEAN protected buffer"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        use ntc_sim::dma::Dma;
        use ntc_sim::platform::{PlatformConfig, Protection};

        let cfg = PlatformConfig::mparm_like(0.44, 290e3, Protection::Secded)
            .with_protected_buffer(1536);
        let table = Table::new(
            "modules",
            vec![
                Column::bare("module"),
                Column::new("size", "KiB"),
                Column::new("access_energy_1v1", "pJ"),
            ],
        )
        .with_row(vec![
            Cell::Text("IM".into()),
            Cell::Num(cfg.im.organization().kib()),
            Cell::Num(cfg.im.access_energy(1.1) * 1e12),
        ])
        .with_row(vec![
            Cell::Text("SP".into()),
            Cell::Num(cfg.sp.organization().kib()),
            Cell::Num(cfg.sp.access_energy(1.1) * 1e12),
        ]);
        let pm_bits =
            cfg.pm.as_ref().map_or(0.0, |pm| f64::from(pm.organization().bits_per_word()));
        Artifact::new("fig6", "Figure 6 — simulated platform configuration")
            .with_table(table)
            .with_scalar("core energy", "pJ/cycle", cfg.core_e_ref * 1e12)
            .with_scalar("core leakage", "uW", cfg.core_leak_ref * 1e6)
            .with_scalar("reference voltage", "V", cfg.vref)
            .with_scalar("operating voltage", "V", cfg.vdd)
            .with_scalar("frequency", "Hz", cfg.frequency_hz)
            .with_scalar(
                "DMA 32-word transfer",
                "cycles",
                Dma::figure6_default().transfer_cycles(32) as f64,
            )
            .with_anchor(
                "protected-buffer word width (quad BCH)",
                "bits",
                pm_bits,
                PaperRef::exact(57.0),
            )
    }
}

// ---------------------------------------------------------------------
// Figure 7 — OCEAN operation trace.
// ---------------------------------------------------------------------

/// Figure 7: live OCEAN run on a two-phase workload at 0.33 V.
struct Fig7;

impl Experiment for Fig7 {
    fn id(&self) -> ExperimentId {
        ExperimentId::Fig7
    }
    fn paper_ref(&self) -> &'static str {
        "Fig. 7"
    }
    fn description(&self) -> &'static str {
        "OCEAN operation: phases, checkpoints, detections and recoveries at 0.33 V"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        use ntc_ocean::detect::DetectOnlyMemory;
        use ntc_ocean::runtime::{Granularity, OceanConfig, OceanRuntime};
        use ntc_sim::asm::assemble;
        use ntc_sim::memory::{FaultInjector, ProtectedMemory};
        use ntc_sim::platform::{Platform, PlatformConfig, Protection};

        let program = assemble(
            "   li r1, 0
                li r2, 0
                li r3, 64
            fill:
                mul r4, r1, r1
                sw  r4, 0(r2)
                addi r1, r1, 1
                addi r2, r2, 4
                bne r1, r3, fill
                ecall 1
                li r1, 0
                li r2, 0
                li r4, 0
            sum:
                lw r5, 0(r2)
                add r4, r4, r5
                addi r1, r1, 1
                addi r2, r2, 4
                bne r1, r3, sum
                sw r4, 0(r2)
                ecall 1
                halt",
        )
        .expect("assembles");

        let cfg = PlatformConfig::mparm_like(0.33, 290e3, Protection::DetectOnly)
            .with_protected_buffer(128);
        let sp = DetectOnlyMemory::new(128).with_injector(FaultInjector::with_p(8e-4, 7));
        let mut platform = Platform::new(&cfg, program, sp, Some(ProtectedMemory::new(128)));
        let mut runtime =
            OceanRuntime::new(OceanConfig::new(0, 80).with_granularity(Granularity::WriteThrough));
        let outcome = runtime.run(&mut platform, &[0; 80], 10_000_000).expect("completes");

        let stats = outcome.stats;
        let got = f64::from(platform.protected().unwrap().load(64).unwrap());
        let want = f64::from((0u32..64).map(|i| i * i).sum::<u32>());
        Artifact::new("fig7", "Figure 7 — OCEAN operation on a two-phase workload at 0.33 V")
            .with_anchor(
                "phases crossed",
                "phases",
                stats.phases as f64,
                PaperRef::at_least(2.0, 2.0),
            )
            .with_scalar("words shadowed to PM", "words", stats.words_shadowed as f64)
            .with_scalar("word recoveries from PM", "words", stats.word_recoveries as f64)
            .with_scalar("full rollbacks", "rollbacks", stats.rollbacks as f64)
            .with_scalar(
                "detected scratchpad errors",
                "errors",
                platform.scratchpad().detected() as f64,
            )
            .with_scalar("DMA stall cycles", "cycles", runtime.dma_stats().stall_cycles as f64)
            .with_anchor("final sum error vs golden", "1", got - want, PaperRef::exact(0.0))
    }
}

// ---------------------------------------------------------------------
// Figures 8/9 — the full-system mitigation study.
// ---------------------------------------------------------------------

/// Renders a Figure 8/9 policy row set into a table keyed by policy.
fn mitigation_table(name: &str, rows: &[ExperimentResult]) -> Table {
    let mut table = Table::new(
        name,
        vec![
            Column::bare("policy"),
            Column::new("vdd", "V"),
            Column::new("dynamic", "uW"),
            Column::new("leakage", "uW"),
            Column::new("total", "uW"),
            Column::bare("exact"),
            Column::new("repairs", "1"),
        ],
    );
    for r in rows {
        table.push_row(vec![
            Cell::Text(r.policy.to_string()),
            Cell::Num(r.vdd),
            Cell::Num(r.dynamic_power_w() * 1e6),
            Cell::Num((r.total_power_w() - r.dynamic_power_w()) * 1e6),
            Cell::Num(r.total_power_w() * 1e6),
            Cell::Text(if r.is_exact() { "yes" } else { "NO" }.into()),
            Cell::Num(r.repaired as f64),
        ]);
    }
    table
}

/// Per-module power breakdown of a policy row set.
fn module_table(rows: &[ExperimentResult]) -> Table {
    let mut table = Table::new(
        "module_power",
        vec![
            Column::bare("policy"),
            Column::bare("module"),
            Column::new("dynamic", "uW"),
            Column::new("leakage", "uW"),
        ],
    );
    for r in rows {
        for m in &r.modules {
            table.push_row(vec![
                Cell::Text(r.policy.to_string()),
                Cell::Text(m.name.clone()),
                Cell::Num(m.dynamic_w * 1e6),
                Cell::Num(m.leakage_w * 1e6),
            ]);
        }
    }
    table
}

/// OCEAN's savings against the two baselines, by policy lookup.
fn ocean_savings(rows: &[ExperimentResult]) -> (f64, f64) {
    let none = result_for(rows, MitigationPolicy::NoMitigation).expect("no-mitigation row");
    let ecc = result_for(rows, MitigationPolicy::Secded).expect("SECDED row");
    let ocean = result_for(rows, MitigationPolicy::Ocean).expect("OCEAN row");
    (power_saving(none, ocean), power_saving(ecc, ocean))
}

/// Figure 8: power at 290 kHz on the cell-based memory.
struct Fig8;

impl Experiment for Fig8 {
    fn id(&self) -> ExperimentId {
        ExperimentId::Fig8
    }
    fn paper_ref(&self) -> &'static str {
        "Fig. 8"
    }
    fn description(&self) -> &'static str {
        "Power at 290 kHz (cell-based memory) under the three mitigation policies"
    }
    fn run(&self, ctx: &RunCtx) -> Artifact {
        let rows = ctx.figure8_rows();
        let (s_none, s_ecc) = ocean_savings(rows);
        Artifact::new("fig8", "Figure 8 — power at 290 kHz, 1K-point FFT, cell-based memory")
            .with_table(mitigation_table("power_290khz", rows))
            .with_table(module_table(rows))
            .with_anchor(
                "OCEAN vs no-mitigation saving",
                "%",
                s_none * 100.0,
                PaperRef::range(70.0, 45.0, 85.0),
            )
            .with_anchor(
                "OCEAN vs ECC saving",
                "%",
                s_ecc * 100.0,
                PaperRef::range(48.0, 20.0, 65.0),
            )
    }
}

/// Figure 9: power at 11 MHz on the commercial memory.
struct Fig9;

impl Experiment for Fig9 {
    fn id(&self) -> ExperimentId {
        ExperimentId::Fig9
    }
    fn paper_ref(&self) -> &'static str {
        "Fig. 9"
    }
    fn description(&self) -> &'static str {
        "Power at 11 MHz (commercial memory, 0.88/0.77/0.66 V) under the three policies"
    }
    fn run(&self, ctx: &RunCtx) -> Artifact {
        let rows = ctx.figure9_rows();
        let (s_none, s_ecc) = ocean_savings(rows);
        let mut artifact =
            Artifact::new("fig9", "Figure 9 — power at 11 MHz, 1K-point FFT, commercial memory")
                .with_table(mitigation_table("power_11mhz", rows));
        for (policy, paper_v) in [
            (MitigationPolicy::NoMitigation, 0.88),
            (MitigationPolicy::Secded, 0.77),
            (MitigationPolicy::Ocean, 0.66),
        ] {
            let r = result_for(rows, policy).expect("policy row");
            artifact = artifact.with_anchor(
                &format!("{policy} operating voltage"),
                "V",
                r.vdd,
                PaperRef::exact(paper_v),
            );
        }
        let none9 = result_for(rows, MitigationPolicy::NoMitigation).expect("row");
        let none8 = result_for(ctx.figure8_rows(), MitigationPolicy::NoMitigation).expect("row");
        artifact
            .with_anchor(
                "OCEAN vs no-mitigation saving",
                "%",
                s_none * 100.0,
                PaperRef::range(34.0, 15.0, 60.0),
            )
            .with_anchor(
                "OCEAN vs ECC saving",
                "%",
                s_ecc * 100.0,
                PaperRef::range(26.0, 10.0, 50.0),
            )
            .with_scalar(
                "power ratio 11 MHz / 290 kHz (no mitigation)",
                "x",
                none9.total_power_w() / none8.total_power_w(),
            )
    }
}

// ---------------------------------------------------------------------
// Figure 10 — finFET outlook.
// ---------------------------------------------------------------------

/// Figure 10: inverter delay spread on the 14 nm / 10 nm nodes.
struct Fig10;

impl Experiment for Fig10 {
    fn id(&self) -> ExperimentId {
        ExperimentId::Fig10
    }
    fn paper_ref(&self) -> &'static str {
        "Fig. 10"
    }
    fn description(&self) -> &'static str {
        "FinFET outlook: inverter delay mean and spread vs supply, 14 nm vs 10 nm"
    }
    fn run(&self, ctx: &RunCtx) -> Artifact {
        use ntc_stats::rng::Source;
        use ntc_stats::sweep::voltage_grid;
        use ntc_tech::card;
        use ntc_tech::inverter::Inverter;

        let inv14 = Inverter::fo4(&card::n14finfet());
        let inv10 = Inverter::fo4(&card::n10gaa());
        let samples = ctx.mc(4000) as u32;
        let mut src = Source::seeded(10);
        let mut mean14 = Vec::new();
        let mut mean10 = Vec::new();
        let mut spread14 = Vec::new();
        for vdd in voltage_grid(0.25, 0.80, 50) {
            let p14 = inv14.monte_carlo(vdd, samples, &mut src);
            let p10 = inv10.monte_carlo(vdd, samples, &mut src);
            mean14.push((vdd, p14.mean * 1e12));
            mean10.push((vdd, p10.mean * 1e12));
            spread14.push((vdd, 100.0 * p14.sigma / p14.mean));
        }
        let planar = Inverter::fo4(&card::n40lp());
        Artifact::new("fig10", "Figure 10 — inverter delay in finFETs")
            .with_series(Series::new("14nm mean delay", ("vdd", "V"), ("delay", "ps"), mean14))
            .with_series(Series::new("10nm mean delay", ("vdd", "V"), ("delay", "ps"), mean10))
            .with_series(Series::new("14nm sigma/mean", ("vdd", "V"), ("spread", "%"), spread14))
            .with_anchor(
                "14nm -> 10nm speedup at 0.6 V",
                "x",
                inv14.delay(0.6) / inv10.delay(0.6),
                PaperRef::range(2.0, 1.6, 3.4),
            )
            .with_anchor(
                "10nm vs 40nm spread at matched threshold depth",
                "1",
                inv10.relative_sigma(0.38) / planar.relative_sigma(0.54),
                PaperRef::at_most(1.0, 1.0),
            )
    }
}

// ---------------------------------------------------------------------
// Table 1 — the four memory implementations.
// ---------------------------------------------------------------------

/// Renders Table 1 rows (published or computed) as an artifact table.
fn table1_table(name: &str, rows: &[ntc_memcalc::designs::Table1Row]) -> Table {
    let mut table = Table::new(
        name,
        vec![
            Column::bare("design"),
            Column::new("dyn_energy", "pJ"),
            Column::new("at", "V"),
            Column::new("leakage", "uW"),
            Column::new("area", "mm2"),
            Column::new("retention", "V"),
            Column::new("performance", "MHz"),
        ],
    );
    for row in rows {
        table.push_row(vec![
            Cell::Text(row.design.clone()),
            Cell::Num(row.dyn_energy_pj.0),
            Cell::Num(row.dyn_energy_pj.1),
            row.leakage_uw.map_or(Cell::Text("-".into()), |(p, _)| Cell::Num(p)),
            Cell::Num(row.area_mm2),
            row.retention_v.map_or(Cell::Text("-".into()), Cell::Num),
            Cell::Num(row.performance_mhz.0),
        ]);
    }
    table
}

/// Table 1: published vs computed figures of the four implementations.
struct Table1;

impl Experiment for Table1 {
    fn id(&self) -> ExperimentId {
        ExperimentId::Table1
    }
    fn paper_ref(&self) -> &'static str {
        "Table 1"
    }
    fn description(&self) -> &'static str {
        "The four memory implementations at 1k x 32b: published vs calculator output"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        use ntc_memcalc::designs::{computed_rows, published_rows};

        let published = published_rows();
        let computed = computed_rows();
        let mut artifact = Artifact::new(
            "table1",
            "Table 1 — 1k x 32b memory comparison (40nm, TT, 1.1 V, 25 C)",
        )
        .with_table(table1_table("published", &published))
        .with_table(table1_table("computed", &computed));
        for (p, c) in published.iter().zip(&computed) {
            artifact = artifact
                .with_anchor(
                    &format!("{} dynamic energy", p.design),
                    "pJ",
                    c.dyn_energy_pj.0,
                    PaperRef::rel(p.dyn_energy_pj.0, 0.10),
                )
                .with_anchor(
                    &format!("{} performance", p.design),
                    "MHz",
                    c.performance_mhz.0,
                    PaperRef::rel(p.performance_mhz.0, 0.10),
                );
        }
        let bits = 32 * 1024;
        artifact
            .with_anchor(
                "65nm cell-based macro retention",
                "V",
                RetentionLaw::cell_based_65nm().macro_retention_voltage(bits),
                PaperRef::abs(0.25, 0.01),
            )
            .with_anchor(
                "40nm cell-based macro retention",
                "V",
                RetentionLaw::cell_based_40nm().macro_retention_voltage(bits),
                PaperRef::abs(0.32, 0.01),
            )
    }
}

// ---------------------------------------------------------------------
// Table 2 — minimum voltage per mitigation scheme.
// ---------------------------------------------------------------------

/// Table 2: the FIT-limited minimum voltages, plus the bound arithmetic.
struct Table2;

impl Experiment for Table2 {
    fn id(&self) -> ExperimentId {
        ExperimentId::Table2
    }
    fn paper_ref(&self) -> &'static str {
        "Table 2"
    }
    fn description(&self) -> &'static str {
        "Minimum supply per mitigation scheme for FIT <= 1e-15, both frequencies"
    }
    fn run(&self, ctx: &RunCtx) -> Artifact {
        let solver =
            FitSolver::new(AccessLaw::cell_based_40nm(), 1e-15).with_grid(VoltageGrid::PaperGrid);
        let mut table = Table::new(
            "min_voltage",
            vec![
                Column::bare("frequency"),
                Column::new("no_mitigation", "V"),
                Column::new("ecc", "V"),
                Column::new("ocean", "V"),
            ],
        );
        let mut artifact = Artifact::new(
            "table2",
            "Table 2 — minimum voltage for FIT <= 1e-15 (cell-based memory)",
        );
        let paper = [[0.55, 0.44, 0.33], [0.55, 0.44, 0.44]];
        for ((label, f), paper_row) in
            [("290 kHz", 290e3), ("1.96 MHz", 1.96e6)].into_iter().zip(paper)
        {
            let row = solver.table_row(f, ctx.f_max());
            table.push_row(vec![
                Cell::Text(label.into()),
                Cell::Num(row[0].operating),
                Cell::Num(row[1].operating),
                Cell::Num(row[2].operating),
            ]);
            for (s, (v, p)) in ["no mitigation", "ECC", "OCEAN"]
                .iter()
                .zip(row.iter().map(|r| r.operating).zip(paper_row))
            {
                artifact =
                    artifact.with_anchor(&format!("{s} at {label}"), "V", v, PaperRef::exact(p));
            }
        }
        let plain = FitSolver::new(AccessLaw::cell_based_40nm(), 1e-15);
        artifact
            .with_table(table)
            .with_anchor(
                "SECDED max tolerable bit error rate",
                "1",
                plain.max_p_bit(Scheme::Secded),
                PaperRef::rel(4.79e-7, 0.02),
            )
            .with_anchor(
                "OCEAN max tolerable bit error rate",
                "1",
                plain.max_p_bit(Scheme::Ocean),
                PaperRef::rel(7.05e-5, 0.02),
            )
    }
}

// ---------------------------------------------------------------------
// Headline — the abstract's claims.
// ---------------------------------------------------------------------

/// The abstract's headline savings/ratios, measured on this reproduction.
struct HeadlineClaims;

impl Experiment for HeadlineClaims {
    fn id(&self) -> ExperimentId {
        ExperimentId::Headline
    }
    fn paper_ref(&self) -> &'static str {
        "Abstract"
    }
    fn description(&self) -> &'static str {
        "The abstract's headline ratios: 2x vs ECC, 3x vs none, 3.3x dynamic power"
    }
    fn run(&self, ctx: &RunCtx) -> Artifact {
        let h = Headline::from_rows(ctx.figure8_rows(), ctx.figure9_rows());
        Artifact::new("headline", "Headline claims vs this reproduction")
            .with_scalar("OCEAN vs none saving at 290 kHz", "%", h.ocean_vs_none_290khz * 100.0)
            .with_scalar("OCEAN vs ECC saving at 290 kHz", "%", h.ocean_vs_ecc_290khz * 100.0)
            .with_scalar("OCEAN vs none saving at 11 MHz", "%", h.ocean_vs_none_11mhz * 100.0)
            .with_scalar("OCEAN vs ECC saving at 11 MHz", "%", h.ocean_vs_ecc_11mhz * 100.0)
            .with_anchor(
                "energy ratio no-mitigation / OCEAN",
                "x",
                1.0 / (1.0 - h.ocean_vs_none_290khz),
                PaperRef::range(3.0, 2.0, 3.5),
            )
            .with_anchor(
                "energy ratio ECC / OCEAN",
                "x",
                1.0 / (1.0 - h.ocean_vs_ecc_290khz),
                PaperRef::range(2.0, 1.3, 2.5),
            )
            .with_anchor(
                "dynamic power gain beyond the error-free limit",
                "x",
                h.dynamic_power_gain,
                PaperRef::range(3.3, 2.0, 4.0),
            )
    }
}

// ---------------------------------------------------------------------
// Workload profile — instruction mix and OCEAN phase plan.
// ---------------------------------------------------------------------

/// The streaming-kernel profiles and the planned OCEAN phase counts.
struct Profile;

impl Experiment for Profile {
    fn id(&self) -> ExperimentId {
        ExperimentId::Profile
    }
    fn paper_ref(&self) -> &'static str {
        "§II (workload)"
    }
    fn description(&self) -> &'static str {
        "FFT/FIR instruction mix, memory traffic and the OCEAN phase plan"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        use ntc_ocean::planning::planned_phase_count;
        use ntc_sim::asm::assemble;
        use ntc_sim::fft::{fft_program, random_input, scratchpad_words, twiddle_table};
        use ntc_sim::fir;
        use ntc_sim::memory::RawMemory;
        use ntc_sim::profile::profile;

        let mut table = Table::new(
            "workloads",
            vec![
                Column::bare("workload"),
                Column::new("cycles", "1"),
                Column::new("instructions", "1"),
                Column::new("loads", "1"),
                Column::new("stores", "1"),
            ],
        );

        // --- FFT ---
        let n = 1024;
        let program = assemble(&fft_program(n)).expect("kernel assembles");
        let mut mem = RawMemory::new(scratchpad_words(n).next_power_of_two());
        for (i, &w) in random_input(n, 1).iter().chain(twiddle_table(n).iter()).enumerate() {
            mem.store(i, w);
        }
        let p = profile(&program, &mut mem, u64::MAX).expect("error-free run");
        table.push_row(vec![
            Cell::Text(format!("{n}-point FFT")),
            Cell::Num(p.cycles as f64),
            Cell::Num(p.instructions as f64),
            Cell::Num(p.loads as f64),
            Cell::Num(p.stores as f64),
        ]);
        let law = AccessLaw::cell_based_40nm();
        let mut plan = Vec::new();
        for vdd in [0.50, 0.44, 0.40, 0.36, 0.33] {
            let phases = planned_phase_count(&p, scratchpad_words(n) as u32, &law, vdd, 512)
                .expect("plan solvable");
            plan.push((vdd, f64::from(phases)));
        }
        let shallowest = plan.first().expect("plan nonempty").1;
        let deepest = plan.last().expect("plan nonempty").1;

        // --- FIR ---
        let (sn, taps, block) = (256, 16, 32);
        let program = assemble(&fir::fir_program(sn, taps, block)).expect("kernel assembles");
        let mut mem = RawMemory::new(fir::scratchpad_words(sn, taps).next_power_of_two());
        for (i, &x) in
            fir::random_signal(sn, 2).iter().chain(fir::moving_average_taps(taps).iter()).enumerate()
        {
            mem.store(i, x as u32);
        }
        let q = profile(&program, &mut mem, u64::MAX).expect("error-free run");
        table.push_row(vec![
            Cell::Text(format!("{sn}-sample {taps}-tap FIR (block {block})")),
            Cell::Num(q.cycles as f64),
            Cell::Num(q.instructions as f64),
            Cell::Num(q.loads as f64),
            Cell::Num(q.stores as f64),
        ]);

        Artifact::new("profile", "Workload profile — instruction mix and OCEAN phase plan")
            .with_table(table)
            .with_series(Series::new("FFT planned phases", ("vdd", "V"), ("phases", "1"), plan))
            .with_anchor(
                "FFT planned phases at 0.33 V",
                "1",
                deepest,
                PaperRef::at_least(1.0, 1.0),
            )
            .with_anchor(
                "phase plan deepens with scaling",
                "1",
                deepest - shallowest,
                PaperRef::at_least(0.0, 0.0),
            )
    }
}

// ---------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------

/// Bisects a word-failure model `fail(p) <= 1e-15` and maps the
/// admissible bit-error probability to a supply on the cell-based law.
fn bisect_min_voltage(fail: impl Fn(f64) -> f64) -> f64 {
    let law = AccessLaw::cell_based_40nm();
    let (mut lo, mut hi) = (0.0f64, 0.1f64);
    for _ in 0..120 {
        let mid = 0.5 * (lo + hi);
        if fail(mid) <= 1e-15 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    law.vdd_for_p(lo.max(1e-300))
}

/// Ablation: protected-buffer interleaving depth.
struct AblationInterleave;

impl Experiment for AblationInterleave {
    fn id(&self) -> ExperimentId {
        ExperimentId::AblationInterleave
    }
    fn paper_ref(&self) -> &'static str {
        "§III-B (beyond paper)"
    }
    fn description(&self) -> &'static str {
        "Interleave depth of the protected buffer: only 4-way reaches 0.33 V"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        use ntc_ecc::interleave::InterleavedCode;
        use ntc_sram::words::WordErrorModel;

        let law = AccessLaw::cell_based_40nm();
        let min_voltage_for_lanes = |lanes: u32| -> f64 {
            let code = InterleavedCode::new(32, lanes).unwrap();
            let w = WordErrorModel::new(39);
            let p = w.max_p_bit_for_target(code.correctable_random_errors(), 1e-15).unwrap();
            law.vdd_for_p(p)
        };
        let mut table = Table::new(
            "min_voltage_by_depth",
            vec![Column::new("lanes", "1"), Column::new("min_voltage", "V")],
        );
        let mut volts = Vec::new();
        for lanes in [1u32, 2, 4] {
            let v = min_voltage_for_lanes(lanes);
            table.push_row(vec![Cell::Num(f64::from(lanes)), Cell::Num(v)]);
            volts.push(v);
        }
        Artifact::new("ablation_interleave", "Ablation — protected-buffer interleaving depth")
            .with_table(table)
            .with_anchor("4-way minimum voltage", "V", volts[2], PaperRef::abs(0.33, 0.01))
            .with_anchor(
                "voltage gained by 4-way over 1-way",
                "V",
                volts[0] - volts[2],
                PaperRef::at_least(0.0, 0.0),
            )
    }
}

/// Ablation: OCEAN phase-count optimum vs error rate.
struct AblationPhases;

impl Experiment for AblationPhases {
    fn id(&self) -> ExperimentId {
        ExperimentId::AblationPhases
    }
    fn paper_ref(&self) -> &'static str {
        "§III-C (beyond paper)"
    }
    fn description(&self) -> &'static str {
        "OCEAN phase-count optimum: the convex energy curve across error rates"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        use ntc_ocean::PhaseCostModel;

        let mut table = Table::new(
            "optimum_by_error_rate",
            vec![
                Column::new("p_word", "1"),
                Column::new("optimal_phases", "1"),
                Column::new("energy", "J"),
            ],
        );
        let mut opts = Vec::new();
        for p in [1e-8, 1e-6, 1e-4, 1e-3] {
            let m = PhaseCostModel::new(300_000, 28_000, 1536, p).unwrap();
            let opt = m.optimal_phase_count(256);
            table.push_row(vec![Cell::Num(p), Cell::Num(f64::from(opt)), Cell::Num(m.energy(opt))]);
            opts.push(f64::from(opt));
        }
        Artifact::new("ablation_phases", "Ablation — OCEAN phase count vs error rate")
            .with_table(table)
            .with_anchor(
                "optimum growth from p=1e-8 to p=1e-3",
                "phases",
                opts[3] - opts[0],
                PaperRef::at_least(0.0, 0.0),
            )
            .with_anchor(
                "optimal phases at p=1e-4",
                "phases",
                opts[2],
                PaperRef::at_least(2.0, 2.0),
            )
    }
}

/// Ablation: spatial/intra-word correlation of failures.
struct AblationCorrelation;

impl Experiment for AblationCorrelation {
    fn id(&self) -> ExperimentId {
        ExperimentId::AblationCorrelation
    }
    fn paper_ref(&self) -> &'static str {
        "§III-A (beyond paper)"
    }
    fn description(&self) -> &'static str {
        "Correlated failures: clustering raises the worst die and SECDED's voltage"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        use ntc_sram::diemap::{DieMap, DieMapConfig};
        use ntc_sram::words::{CorrelatedWordModel, WordErrorModel};

        let worst_supply = |systematic: f64, seed: u64| -> f64 {
            let cfg = DieMapConfig::new(64, 128, RetentionLaw::cell_based_40nm())
                .with_systematic_fraction(systematic);
            DieMap::synthesize_population(&cfg, 9, seed)
                .iter()
                .map(DieMap::min_retention_supply)
                .fold(f64::MIN, f64::max)
        };
        let mut die_table = Table::new(
            "worst_die_supply",
            vec![Column::new("systematic_fraction", "1"), Column::new("worst_supply", "V")],
        );
        for frac in [0.0, 0.3, 0.6] {
            die_table.push_row(vec![Cell::Num(frac), Cell::Num(worst_supply(frac, 77))]);
        }

        let min_v = |rho: Option<f64>| -> f64 {
            bisect_min_voltage(|p| match rho {
                None => WordErrorModel::new(39).p_word_failure(2, p),
                Some(r) => CorrelatedWordModel::new(39, r).unwrap().p_word_failure(2, p),
            })
        };
        let v_iid = min_v(None);
        let mut word_table = Table::new(
            "secded_min_voltage",
            vec![Column::new("rho", "1"), Column::new("min_voltage", "V")],
        );
        word_table.push_row(vec![Cell::Num(0.0), Cell::Num(v_iid)]);
        for rho in [0.001, 0.01, 0.05] {
            word_table.push_row(vec![Cell::Num(rho), Cell::Num(min_v(Some(rho)))]);
        }
        Artifact::new("ablation_correlation", "Ablation — correlated retention/access failures")
            .with_table(die_table)
            .with_table(word_table)
            .with_anchor(
                "correlation penalty on SECDED voltage (rho=0.05 vs iid)",
                "V",
                min_v(Some(0.05)) - v_iid,
                PaperRef::at_least(0.0, 0.0),
            )
    }
}

/// Ablation: run-time monitoring guardband vs static margin.
struct AblationGuardband;

impl Experiment for AblationGuardband {
    fn id(&self) -> ExperimentId {
        ExperimentId::AblationGuardband
    }
    fn paper_ref(&self) -> &'static str {
        "§II (beyond paper)"
    }
    fn description(&self) -> &'static str {
        "Monitoring vs static end-of-life margin: average supply and energy saved"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        let aging = AgingModel::new(AccessLaw::cell_based_40nm(), 0.05, 10.0);
        let mut ctl = VoltageController::new(0.45, (1e-7, 1e-4), 0.005, (0.33, 1.1));
        let trace = simulate_lifetime(&aging, &mut ctl, 200, 2_000_000, 5);
        let monitored = trace.iter().map(|p| p.vdd).sum::<f64>() / trace.len() as f64;
        let static_v = 0.45 + aging.static_guardband_v();
        let supply_series = trace.iter().map(|p| (p.years, p.vdd)).collect::<Vec<_>>();
        Artifact::new("ablation_guardband", "Ablation — monitoring guardband vs static margin")
            .with_series(Series::new(
                "monitored supply over lifetime",
                ("age", "years"),
                ("vdd", "V"),
                supply_series,
            ))
            .with_scalar("monitored average supply", "V", monitored)
            .with_scalar("static end-of-life supply", "V", static_v)
            .with_anchor(
                "dynamic energy saved by monitoring",
                "%",
                (1.0 - (monitored / static_v).powi(2)) * 100.0,
                PaperRef::at_least(0.0, 1.0),
            )
    }
}

/// Ablation: hierarchical banking of the memory macro.
struct AblationBanking;

impl Experiment for AblationBanking {
    fn id(&self) -> ExperimentId {
        ExperimentId::AblationBanking
    }
    fn paper_ref(&self) -> &'static str {
        "§III-B (beyond paper)"
    }
    fn description(&self) -> &'static str {
        "Banking the macro: access energy falls with subdivision until overheads win"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        use ntc_memcalc::instance::{MemoryMacro, MemoryOrganization};
        use ntc_sram::styles::CellStyle;
        use ntc_tech::card;

        let macro_with = |banks: u32| {
            MemoryMacro::new(
                CellStyle::CellBasedAoi,
                MemoryOrganization::new(2048, 32).unwrap(),
                card::n40lp(),
            )
            .with_banks(banks)
        };
        let mut table = Table::new(
            "banking",
            vec![
                Column::new("banks", "1"),
                Column::new("access_energy", "pJ"),
                Column::new("leakage", "uW"),
                Column::new("area", "mm2"),
            ],
        );
        let mut first_e = 0.0;
        let mut last_e = 0.0;
        let mut best = (1u32, f64::INFINITY);
        for banks in [1u32, 2, 4, 8, 16, 32] {
            let m = macro_with(banks);
            let e = m.access_energy(0.55);
            let l = m.leakage_power(0.55);
            table.push_row(vec![
                Cell::Num(f64::from(banks)),
                Cell::Num(e * 1e12),
                Cell::Num(l * 1e6),
                Cell::Num(m.area_mm2()),
            ]);
            if banks == 1 {
                first_e = e;
            }
            last_e = e;
            // Total energy per access at a duty where leakage matters:
            let total = e + l / 290e3;
            if total < best.1 {
                best = (banks, total);
            }
        }
        Artifact::new("ablation_banking", "Ablation — hierarchical banking of the macro")
            .with_table(table)
            .with_anchor(
                "access energy drop from 1 to 32 banks",
                "pJ",
                (first_e - last_e) * 1e12,
                PaperRef::at_least(0.0, 0.0),
            )
            .with_scalar("optimum banks at 290 kHz duty", "banks", f64::from(best.0))
    }
}

/// Ablation: detection strength of the scratchpad code.
struct AblationDetection;

impl Experiment for AblationDetection {
    fn id(&self) -> ExperimentId {
        ExperimentId::AblationDetection
    }
    fn paper_ref(&self) -> &'static str {
        "§III-C (beyond paper)"
    }
    fn description(&self) -> &'static str {
        "Parity vs distance-4 detect-only: exact alias counts and silent-error rates"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        use ntc_ecc::secded::Secded;

        let secded = Secded::new(32).unwrap();
        // Count weight-4 patterns with zero syndrome on the (39,32) code
        // (exact enumeration of C(39,4) = 82 251 patterns).
        let n = secded.codeword_bits();
        let zero = secded.encode(0);
        let mut aliases = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    for d in (c + 1)..n {
                        let pattern =
                            zero ^ (1u128 << a) ^ (1u128 << b) ^ (1u128 << c) ^ (1u128 << d);
                        if secded.syndrome(pattern) == 0 {
                            aliases += 1;
                        }
                    }
                }
            }
        }
        // Silent-corruption probabilities at the OCEAN operating point.
        let p = AccessLaw::cell_based_40nm().p_bit(0.33);
        let parity_silent = (33.0 * 32.0 / 2.0) * p * p;
        let secded_silent = aliases as f64 * p.powi(4);
        Artifact::new("ablation_detection", "Ablation — detection strength of the scratchpad code")
            .with_anchor(
                "parity silent double-error patterns",
                "patterns",
                528.0,
                PaperRef::exact(528.0),
            )
            .with_scalar("SECDED-detect silent quad patterns", "patterns", aliases as f64)
            .with_scalar("parity silent-corruption rate at 0.33 V", "1/access", parity_silent)
            .with_scalar("detect-only silent-corruption rate at 0.33 V", "1/access", secded_silent)
            .with_anchor(
                "detect-only / parity silent-corruption ratio",
                "1",
                secded_silent / parity_silent,
                PaperRef::at_most(1e-4, 1e-4),
            )
    }
}

/// Ablation: protected-buffer code construction.
struct AblationBufferCode;

impl Experiment for AblationBufferCode {
    fn id(&self) -> ExperimentId {
        ExperimentId::AblationBufferCode
    }
    fn paper_ref(&self) -> &'static str {
        "§III-B (beyond paper)"
    }
    fn description(&self) -> &'static str {
        "Interleaved SECDED vs DEC-TED BCH buffers, and the (57,32) quad BCH"
    }
    fn run(&self, _ctx: &RunCtx) -> Artifact {
        use ntc_sram::words::WordErrorModel;

        // Exact word-failure probability of the 4-way interleaved SECDED
        // under iid errors: any lane takes >= 2 of its 13 bits.
        let interleaved_word_failure = |p: f64| -> f64 {
            let lane_ok = (0..=1)
                .map(|k| {
                    let c = if k == 0 { 1.0 } else { 13.0 };
                    c * p.powi(k) * (1.0 - p).powi(13 - k)
                })
                .sum::<f64>();
            1.0 - lane_ok.powi(4)
        };
        // Exact word-failure of the (45,32) DEC-TED BCH: >= 3 of 45 bits.
        let bch_word_failure = |p: f64| -> f64 {
            let le2 = (0..=2)
                .map(|k| {
                    let c = match k {
                        0 => 1.0,
                        1 => 45.0,
                        _ => 990.0,
                    };
                    c * p.powi(k) * (1.0 - p).powi(45 - k)
                })
                .sum::<f64>();
            1.0 - le2
        };
        let v_inter = bisect_min_voltage(interleaved_word_failure);
        let v_bch = bisect_min_voltage(bch_word_failure);

        // The physical protected buffer: the (57,32) t = 4 BCH.
        let quad = ntc_ecc::bch::BchQuad::new();
        let w = WordErrorModel::new(quad.codeword_bits());
        let p_quad = w.max_p_bit_for_target(4, 1e-15).unwrap();
        let v_quad = AccessLaw::cell_based_40nm().vdd_for_p(p_quad);
        let grid_point = (v_quad / 0.11_f64).round() * 0.11;

        Artifact::new("ablation_buffer_code", "Ablation — protected-buffer code construction")
            .with_scalar("4-way interleaved SECDED min voltage (iid)", "V", v_inter)
            .with_scalar("(45,32) DEC-TED BCH min voltage (iid)", "V", v_bch)
            .with_anchor(
                "algebraic-code advantage under iid errors",
                "V",
                v_inter - v_bch,
                PaperRef::at_least(0.0, 0.0),
            )
            .with_anchor(
                "quad BCH codeword bits",
                "bits",
                f64::from(quad.codeword_bits()),
                PaperRef::exact(57.0),
            )
            .with_anchor(
                "quad BCH exact FIT-limited voltage",
                "V",
                v_quad,
                PaperRef::abs(0.342, 0.005),
            )
            .with_anchor(
                "quad BCH voltage on the paper grid",
                "V",
                grid_point,
                PaperRef::exact(0.33),
            )
    }
}

/// Ablation: importance-sampled deep-tail Monte-Carlo vs the closed forms.
struct AblationTailMc;

/// Direct binomial upper tail `P(K >= k_min)` for `K ~ Binomial(n, p)`,
/// summed term by term from the iterative pmf recurrence. Working on the
/// tail side (instead of `1 − P(K <= k_min − 1)`) keeps the value exact
/// at the 1e-15 scale, where the complement form loses everything to
/// cancellation.
fn binomial_upper_tail(n: u32, p: f64, k_min: u32) -> f64 {
    let mut pmf = (1.0 - p).powi(n as i32);
    let mut tail = 0.0;
    for j in 0..=n {
        if j >= k_min {
            tail += pmf;
        }
        if j < n {
            pmf *= (n - j) as f64 / (j + 1) as f64 * p / (1.0 - p);
        }
    }
    tail
}

impl Experiment for AblationTailMc {
    fn id(&self) -> ExperimentId {
        ExperimentId::AblationTailMc
    }
    fn paper_ref(&self) -> &'static str {
        "§II, Eqs. 4–5 (beyond paper)"
    }
    fn description(&self) -> &'static str {
        "Importance-sampled 1e-12..1e-15 failure tails cross-check the closed forms"
    }
    fn run(&self, ctx: &RunCtx) -> Artifact {
        use ntc_stats::diag::TiltedConvergence;
        use ntc_stats::math::phi;
        use ntc_stats::mc::tilted::{binomial_tail_shards, gauss_tail_shards};

        // The paper's FIT arithmetic extrapolates Eq. 4/5 into the
        // 1e-12..1e-15 regime where plain Monte-Carlo would need >1e14
        // samples per point. The exponentially tilted estimator samples
        // that regime directly; its agreement with the closed forms is
        // the cross-check this experiment anchors, and the effective
        // sample size certifies the weights never degenerated.
        let trials = ctx.mc(400_000);
        let seed = ctx.seed();
        let law = RetentionLaw::cell_based_40nm();

        let mut artifact = Artifact::new(
            "ablation_tail_mc",
            "Ablation — importance-sampled deep-tail Monte-Carlo",
        )
        .with_scalar("trials per tail point", "samples", trials as f64);

        // Eq. 4 retention tails: p(V) = Φ((µ − V)/σ) at supplies where
        // the standardized threshold sits 7σ and 8σ out.
        for (label, vdd) in [("retention p_bit at 0.41 V", 0.41), ("retention p_bit at 0.44 V", 0.44)] {
            let t = (vdd - law.mean()) / law.sigma();
            let shards = gauss_tail_shards(trials, seed, t);
            let conv = TiltedConvergence::from_shards(&shards);
            if ntc_obs::enabled() {
                conv.publish(&format!("diag.tail_mc.t{t:.0}"));
            }
            let closed = phi(-t);
            artifact = artifact
                .with_scalar(label, "1", conv.estimate)
                .with_scalar(&format!("{label} closed form (Eq. 4)"), "1", closed)
                .with_anchor(
                    &format!("{label} IS/closed-form ratio"),
                    "1",
                    conv.estimate / closed,
                    PaperRef::abs(1.0, 0.15),
                )
                .with_anchor(
                    &format!("{label} effective sample size"),
                    "samples",
                    conv.effective_samples,
                    PaperRef::at_least(1000.0, 1000.0),
                );
        }

        // Eq. 5 access-failure word tail: a (39,32) SECDED word dies on
        // >= 3 bit errors; at 0.44 V (the Table 2 SECDED minimum) the
        // word-failure probability sits at the paper's 1e-15 FIT bound.
        let p_bit = AccessLaw::cell_based_40nm().p_bit(0.44);
        let shards = binomial_tail_shards(trials, seed, 39, p_bit, 3);
        let conv = TiltedConvergence::from_shards(&shards);
        if ntc_obs::enabled() {
            conv.publish("diag.tail_mc.secded");
        }
        let closed = binomial_upper_tail(39, p_bit, 3);
        artifact
            .with_scalar("SECDED word failure at 0.44 V", "1", conv.estimate)
            .with_scalar("SECDED word failure closed form (Eq. 5)", "1", closed)
            .with_anchor(
                "SECDED word tail IS/closed-form ratio",
                "1",
                conv.estimate / closed,
                PaperRef::abs(1.0, 0.15),
            )
            .with_anchor(
                "SECDED word tail effective sample size",
                "samples",
                conv.effective_samples,
                PaperRef::at_least(1000.0, 1000.0),
            )
            .with_anchor(
                "deepest direct IS estimate",
                "1",
                conv.estimate,
                PaperRef::at_most(1e-15, 1e-12),
            )
    }
}

/// Ablation: the design-space autotuner rediscovers Table 2.
struct AblationOptimize;

impl Experiment for AblationOptimize {
    fn id(&self) -> ExperimentId {
        ExperimentId::AblationOptimize
    }
    fn paper_ref(&self) -> &'static str {
        "Table 2 (beyond paper)"
    }
    fn description(&self) -> &'static str {
        "Autotuner over banks x words x cells x schemes x VDD rediscovers the Table 2 points"
    }
    fn run(&self, ctx: &RunCtx) -> Artifact {
        use crate::api::{scheme_str, OptimizeRequest};
        use crate::optimize::optimize;
        use ntc_sram::styles::CellStyle;

        let mut table = Table::new(
            "optimized",
            vec![
                Column::bare("frequency"),
                Column::bare("scheme"),
                Column::new("vdd", "V"),
                Column::new("banks", "1"),
                Column::new("words", "1"),
                Column::new("energy_per_access", "pJ"),
            ],
        );
        let mut artifact = Artifact::new(
            "ablation_optimize",
            "Ablation — constrained autotuner vs the Table 2 grid search",
        );
        // The published operating points: rows are 290 kHz / 1.96 MHz,
        // columns are no-mitigation / SECDED / OCEAN.
        let paper = [[0.55, 0.44, 0.33], [0.55, 0.44, 0.44]];
        for ((label, f), paper_row) in
            [("290 kHz", 290e3), ("1.96 MHz", 1.96e6)].into_iter().zip(paper)
        {
            // Per-scheme runs: constrained to one mitigation scheme on
            // the paper's cell-based macro, the optimizer's VDD must
            // land on the Table 2 column.
            for (scheme, want) in
                [Scheme::NoMitigation, Scheme::Secded, Scheme::Ocean].into_iter().zip(paper_row)
            {
                let mut req = OptimizeRequest::paper(f);
                req.seed = ctx.seed();
                req.space.cells = vec![CellStyle::CellBasedAoi];
                req.space.schemes = vec![scheme];
                req.canonicalize();
                let resp = optimize(&req);
                let best = resp.best.expect("paper design space is feasible");
                table.push_row(vec![
                    Cell::Text(label.into()),
                    Cell::Text(scheme_str(scheme).into()),
                    Cell::Num(best.vdd),
                    Cell::Num(f64::from(best.banks)),
                    Cell::Num(f64::from(best.words)),
                    Cell::Num(best.energy_per_access_pj),
                ]);
                artifact = artifact.with_anchor(
                    &format!("rediscovered {} supply at {label}", scheme_str(scheme)),
                    "V",
                    best.vdd,
                    PaperRef::exact(want),
                );
            }
            // Full-space run: with every axis free the energy objective
            // must pick OCEAN at the lowest feasible supply — Table 2's
            // punchline — and keep the capacity floor tight.
            let mut req = OptimizeRequest::paper(f);
            req.seed = ctx.seed();
            req.canonicalize();
            let resp = optimize(&req);
            let again = optimize(&req);
            let best = resp.best.clone().expect("paper design space is feasible");
            table.push_row(vec![
                Cell::Text(label.into()),
                Cell::Text(format!("best: {}", scheme_str(best.scheme))),
                Cell::Num(best.vdd),
                Cell::Num(f64::from(best.banks)),
                Cell::Num(f64::from(best.words)),
                Cell::Num(best.energy_per_access_pj),
            ]);
            artifact = artifact
                .with_anchor(
                    &format!("full-space winner supply at {label}"),
                    "V",
                    best.vdd,
                    PaperRef::exact(paper_row[2]),
                )
                .with_anchor(
                    &format!("full-space winner capacity at {label}"),
                    "words",
                    f64::from(best.words),
                    PaperRef::exact(2048.0),
                )
                .with_anchor(
                    &format!("byte-identical rerun at {label}"),
                    "1",
                    f64::from(u8::from(resp.to_json() == again.to_json())),
                    PaperRef::exact(1.0),
                )
                .with_scalar(
                    &format!("full-space banks at {label}"),
                    "banks",
                    f64::from(best.banks),
                );
            if f == 290e3 {
                artifact = artifact
                    .with_series(Series::new(
                        "convergence",
                        ("restart", "1"),
                        ("objective", "pJ-weighted"),
                        resp.convergence
                            .best_per_restart
                            .iter()
                            .enumerate()
                            .map(|(i, &v)| (i as f64, v))
                            .collect(),
                    ))
                    .with_scalar(
                        "objective evaluations (290 kHz full space)",
                        "evals",
                        resp.convergence.evaluations as f64,
                    );
            }
        }
        artifact.with_table(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let ids = experiment_ids();
        assert!(ids.len() >= 17, "{} experiments", ids.len());
        let set: HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len(), "duplicate experiment id");
        assert_eq!(ids.len(), ExperimentId::ALL.len());
    }

    #[test]
    fn typed_ids_round_trip_and_resolve() {
        for id in ExperimentId::ALL {
            assert_eq!(id.as_str().parse::<ExperimentId>(), Ok(id));
            assert_eq!(id.to_string(), id.as_str());
            assert_eq!(find_id(id).id(), id, "registry entry agrees with its id");
        }
    }

    #[test]
    fn unknown_id_error_names_the_registry() {
        let err = "fig2".parse::<ExperimentId>().unwrap_err();
        assert_eq!(err.kind(), "unknown_experiment");
        assert!(err.to_string().contains("table2"), "{err}");
    }

    #[test]
    #[allow(deprecated)]
    fn string_find_shim_still_resolves() {
        assert_eq!(find("fig8").expect("shim resolves").id(), ExperimentId::Fig8);
        assert!(find("not-an-experiment").is_none());
    }

    #[test]
    fn builder_defaults_match_paper_context() {
        let ctx = RunCtx::builder().build();
        assert_eq!(ctx.seed(), 2014);
        assert_eq!(ctx.scale(), Scale::Paper);
        let quick = RunCtx::builder().quick().seed(99).build();
        assert_eq!(quick.scale(), Scale::Quick);
        assert_eq!(quick.seed(), 99);
    }

    #[test]
    fn quick_scale_shrinks_only_monte_carlo() {
        let ctx = RunCtx::quick();
        assert_eq!(ctx.mc(300_000), 15_000);
        assert_eq!(ctx.mc(4000), 1000, "floor at 1000 samples");
        assert_eq!(RunCtx::paper().mc(300_000), 300_000);
    }

    #[test]
    fn table2_artifact_is_all_in_band() {
        let ctx = RunCtx::quick();
        let a = find_id(ExperimentId::Table2).run(&ctx);
        assert!(a.passed(), "failures: {:?}", a.failures());
        assert_eq!(
            a.table("min_voltage").unwrap().num("frequency", "290 kHz", "ocean"),
            Some(0.33)
        );
    }
}
