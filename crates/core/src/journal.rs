//! Store-backed worker heartbeats: integrity-hashed JSON-lines event
//! journals, and the fleet-status aggregation behind `repro status`.
//!
//! Every sweep worker (a `repro run --store` process, whole-sweep or
//! `--shards LO..HI`) keeps an in-memory event log and periodically
//! publishes it — whole file, atomically, via the store's tmp+rename
//! protocol — as `events/<worker-id>.jsonl`. Readers on any machine
//! sharing the store directory can then answer the operational
//! questions a running fleet raises: how far along is each worker, how
//! fast is it going, when did it last flush a checkpoint, and is it
//! still alive at all.
//!
//! # Line format
//!
//! Each line is `<fnv64-hex16> <compact-json>`: sixteen lowercase hex
//! digits of the FNV-64 hash of the JSON bytes, one space, the event
//! object. [`verify_line`] recomputes the hash, so a flipped bit or a
//! torn tail rejects the damaged line (and only it) — the same
//! no-wrong-answers posture as the `ShardCheckpoint` envelope and the
//! artifact header. A journal is telemetry, so a bad line is *dropped
//! and counted*, never trusted.
//!
//! # Event schema
//!
//! Every event carries `ev` (its kind), `seq` (per-worker sequence
//! number) and `t_ms` (wall-clock Unix milliseconds — journals are read
//! across processes, so monotonic clocks won't do):
//!
//! | `ev`          | extra fields                                        |
//! |---------------|-----------------------------------------------------|
//! | `meta`        | `worker`, `pid`, `lo`, `hi`, `flush_ms`, `version`  |
//! | `claim`       | `lo`, `hi`                                          |
//! | `shard_start` | `scope`, `shard`                                    |
//! | `ckpt_flush`  | `scope`, `shard`, `bytes`                           |
//! | `shard_done`  | `scope`, `shard`, `trials`, `samples_per_sec`       |
//! | `heartbeat`   | the [`ntc_obs::ProgressSnapshot`] fields + `eta_secs` (`-1` = unknown) |
//! | `done`        | `shards_done`, `trials_done`                        |
//!
//! # Heartbeat / stall protocol
//!
//! Shard events are appended to the in-memory buffer only — nothing on
//! the compute hot path touches the disk. A [`Heartbeat`] ticker thread
//! appends a `heartbeat` snapshot of the process-wide
//! [`ntc_obs::progress`] tracker and flushes the journal every
//! `flush_ms` (default [`DEFAULT_FLUSH_MS`], overridable with
//! `NTC_HEARTBEAT_MS`). Each journal records its own cadence in `meta`,
//! so the reader needs no out-of-band configuration: a worker whose
//! newest event is older than [`STALL_FACTOR`] × its own `flush_ms` is
//! reported **stalled** — enough slack that scheduler jitter doesn't
//! cry wolf, and still within a couple of seconds at the default
//! cadence. A worker that published `done` is finished, not stalled,
//! no matter how old the journal grows.
//!
//! Determinism: journals live under `events/`, a sibling of the
//! artifact and checkpoint trees; artifact bytes are never derived from
//! them, so a sweep with journaling on is byte-identical to one with it
//! off.

use crate::store::Store;
use ntc_obs::ProgressSnapshot;
use ntc_stats::ckpt::{fnv64, CheckpointSink, CollectiveKey, ShardCheckpoint};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Default journal flush / heartbeat cadence, milliseconds.
pub const DEFAULT_FLUSH_MS: u64 = 1000;

/// A worker is stalled when its newest event is older than this many of
/// its own flush intervals.
pub const STALL_FACTOR: u64 = 3;

/// Wall-clock Unix time in milliseconds (journals are compared across
/// processes and machines, so the epoch clock is the right one).
#[must_use]
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Prefixes `json` with the 16-hex-digit FNV-64 hash of its bytes.
#[must_use]
pub fn encode_line(json: &str) -> String {
    format!("{:016x} {json}", fnv64(json.as_bytes()))
}

/// Verifies one journal line, returning the JSON payload only when the
/// recorded hash matches the bytes — a flipped bit or truncated tail is
/// `None`.
#[must_use]
pub fn verify_line(line: &str) -> Option<&str> {
    let (hash, json) = line.split_at_checked(16)?;
    let json = json.strip_prefix(' ')?;
    // Lowercase hex only — exactly what `encode_line` emits, so a case
    // flip in the prefix is damage like any other.
    if !hash.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)) {
        return None;
    }
    let hash = u64::from_str_radix(hash, 16).ok()?;
    if fnv64(json.as_bytes()) == hash {
        Some(json)
    } else {
        None
    }
}

/// Minimal JSON string escaping for the hand-rolled event writers.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

struct Buf {
    lines: Vec<String>,
    seq: u64,
}

/// One worker's event journal: an append-only in-memory buffer, flushed
/// wholesale (atomically) to `events/<worker-id>.jsonl` in the store.
pub struct Journal {
    store: Store,
    worker: String,
    flush_ms: u64,
    buf: Mutex<Buf>,
}

impl Journal {
    /// Opens a journal for the worker owning shards `[lo, hi)`, writes
    /// the `meta` + `claim` events and publishes them immediately, so
    /// `repro status` sees the worker as soon as it has claimed.
    pub fn new(store: &Store, lo: u32, hi: u32, flush_ms: u64) -> Arc<Journal> {
        let pid = std::process::id();
        let worker = format!("w{lo}-{hi}-p{pid}");
        let j = Journal {
            store: store.clone(),
            worker,
            flush_ms: flush_ms.max(1),
            buf: Mutex::new(Buf { lines: Vec::new(), seq: 0 }),
        };
        j.push(&format!(
            r#""ev":"meta","worker":"{}","pid":{pid},"lo":{lo},"hi":{hi},"flush_ms":{},"version":"{}""#,
            esc(&j.worker),
            j.flush_ms,
            esc(&crate::store::store_version()),
        ));
        j.push(&format!(r#""ev":"claim","lo":{lo},"hi":{hi}"#));
        j.flush();
        Arc::new(j)
    }

    /// This worker's journal id (`w<lo>-<hi>-p<pid>`).
    #[must_use]
    pub fn worker_id(&self) -> &str {
        &self.worker
    }

    /// The flush cadence this journal advertises in its `meta` event.
    #[must_use]
    pub fn flush_ms(&self) -> u64 {
        self.flush_ms
    }

    fn push(&self, fields: &str) {
        let mut b = self.buf.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let json = format!(r#"{{{fields},"seq":{},"t_ms":{}}}"#, b.seq, now_ms());
        b.seq += 1;
        b.lines.push(encode_line(&json));
    }

    /// Publishes the full journal atomically. Best-effort by contract —
    /// telemetry must never fail a sweep — so errors only return
    /// `false`.
    pub fn flush(&self) -> bool {
        let bytes = {
            let b = self.buf.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut out = String::with_capacity(b.lines.iter().map(|l| l.len() + 1).sum());
            for line in &b.lines {
                out.push_str(line);
                out.push('\n');
            }
            out
        };
        self.store.put_journal(&self.worker, bytes.as_bytes()).is_ok()
    }

    /// Records that a shard's compute is starting (buffer only).
    pub fn shard_start(&self, scope: &str, shard: u32) {
        self.push(&format!(r#""ev":"shard_start","scope":"{}","shard":{shard}"#, esc(scope)));
    }

    /// Records one checkpoint flushed to the store (buffer only).
    pub fn ckpt_flush(&self, scope: &str, shard: u32, bytes: usize) {
        self.push(&format!(
            r#""ev":"ckpt_flush","scope":"{}","shard":{shard},"bytes":{bytes}"#,
            esc(scope)
        ));
    }

    /// Records one computed shard with its observed throughput (buffer
    /// only). `samples_per_sec <= 0` means "unknown" (e.g. a recompute
    /// of a corrupt checkpoint whose start was never seen).
    pub fn shard_done(&self, scope: &str, shard: u32, trials: u64, samples_per_sec: f64) {
        self.push(&format!(
            r#""ev":"shard_done","scope":"{}","shard":{shard},"trials":{trials},"samples_per_sec":{:.3}"#,
            esc(scope),
            samples_per_sec.max(0.0),
        ));
    }

    fn push_snapshot(&self, ev: &str) {
        let s = ntc_obs::progress::snapshot();
        self.push(&format!(
            r#""ev":"{ev}","shards_done":{},"shards_total":{},"trials_done":{},"trials_total":{},"restored":{},"computed":{},"samples_per_sec":{:.3},"eta_secs":{:.3}"#,
            s.shards_done,
            s.shards_total,
            s.trials_done,
            s.trials_total,
            s.restored,
            s.computed,
            s.samples_per_sec,
            s.eta_secs().unwrap_or(-1.0),
        ));
    }

    /// Appends a `heartbeat` snapshot of the process-wide progress
    /// tracker and flushes the journal.
    pub fn heartbeat(&self) {
        self.push_snapshot("heartbeat");
        self.flush();
    }

    /// Appends the terminal `done` event — a full progress snapshot, so
    /// a worker that finished between heartbeats (or faster than one
    /// interval) still reports exact totals — and flushes. A journal
    /// ending in `done` is never reported stalled.
    pub fn done(&self) {
        self.push_snapshot("done");
        self.flush();
    }
}

/// The heartbeat ticker: appends + flushes a `heartbeat` every
/// `journal.flush_ms()` until stopped.
pub struct Heartbeat {
    stop: mpsc::Sender<()>,
    handle: std::thread::JoinHandle<()>,
}

impl Heartbeat {
    /// Spawns the ticker thread for `journal`.
    #[must_use]
    pub fn start(journal: Arc<Journal>) -> Heartbeat {
        let (stop, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            while let Err(mpsc::RecvTimeoutError::Timeout) =
                rx.recv_timeout(Duration::from_millis(journal.flush_ms()))
            {
                journal.heartbeat();
            }
        });
        Heartbeat { stop, handle }
    }

    /// Stops the ticker and waits for it to exit. (The final `done`
    /// flush is the journal's, not the ticker's.)
    pub fn stop(self) {
        let _ = self.stop.send(());
        let _ = self.handle.join();
    }
}

/// A [`CheckpointSink`] decorator that journals shard lifecycle events
/// around an inner sink (in practice [`crate::store::StoreSink`]).
/// Journal writes are buffer-appends; the disk flush stays on the
/// heartbeat ticker, off the compute hot path.
pub struct JournalSink<S> {
    inner: S,
    journal: Arc<Journal>,
    starts: Mutex<HashMap<(String, u32), Instant>>,
}

impl<S: CheckpointSink> JournalSink<S> {
    /// Wraps `inner`, journaling into `journal`.
    pub fn new(inner: S, journal: Arc<Journal>) -> JournalSink<S> {
        JournalSink { inner, journal, starts: Mutex::new(HashMap::new()) }
    }
}

impl<S: CheckpointSink> CheckpointSink for JournalSink<S> {
    fn load(&self, key: &CollectiveKey, shard: u32) -> Option<Vec<u8>> {
        let bytes = self.inner.load(key, shard);
        if bytes.is_none() && self.inner.owns_shard(shard) {
            // A miss on an owned shard means the collective is about to
            // compute it.
            self.starts
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert((key.file_stem(), shard), Instant::now());
            self.journal.shard_start(&key.scope, shard);
        }
        bytes
    }

    fn store(&self, key: &CollectiveKey, shard: u32, encoded: &[u8]) {
        self.inner.store(key, shard, encoded);
        self.journal.ckpt_flush(&key.scope, shard, encoded.len());
        let trials = ShardCheckpoint::decode(encoded).map_or(0, |ck| ck.hi - ck.lo);
        let elapsed = self
            .starts
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&(key.file_stem(), shard))
            .map(|t| t.elapsed().as_secs_f64());
        #[allow(clippy::cast_precision_loss)]
        let rate = match elapsed {
            Some(secs) if secs > 0.0 => trials as f64 / secs,
            _ => 0.0,
        };
        self.journal.shard_done(&key.scope, shard, trials, rate);
    }

    fn owns_shard(&self, shard: u32) -> bool {
        self.inner.owns_shard(shard)
    }
}

// ---------------------------------------------------------------------
// Aggregation: journals -> per-worker status -> fleet status.
// ---------------------------------------------------------------------

/// Liveness verdict for one worker, per the stall protocol above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Heartbeats arriving within the stall window.
    Running,
    /// No event within [`STALL_FACTOR`] × the worker's own flush
    /// interval, and no `done` marker — presumed dead or wedged.
    Stalled,
    /// Published its terminal `done` event.
    Done,
}

impl WorkerState {
    /// Lowercase name used in tables and JSON (`running` / `stalled` /
    /// `done`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkerState::Running => "running",
            WorkerState::Stalled => "stalled",
            WorkerState::Done => "done",
        }
    }
}

/// Everything one journal says about its worker.
#[derive(Debug, Clone, Default)]
pub struct WorkerStatus {
    /// Journal id (`w<lo>-<hi>-p<pid>`).
    pub worker: String,
    /// The worker's process id (0 if no intact `meta` event).
    pub pid: u64,
    /// First owned shard (inclusive).
    pub lo: u32,
    /// One past the last owned shard.
    pub hi: u32,
    /// The flush cadence the worker advertised.
    pub flush_ms: u64,
    /// Store version the worker was built at.
    pub version: String,
    /// Progress counters from the newest intact `heartbeat` (falling
    /// back to tallied `shard_done` events before the first heartbeat
    /// lands).
    pub progress: ProgressSnapshot,
    /// Wall-clock ms of the newest intact event of any kind.
    pub last_event_ms: u64,
    /// Wall-clock ms of the newest `ckpt_flush`, if any.
    pub last_ckpt_ms: Option<u64>,
    /// Whether the terminal `done` event was seen.
    pub done: bool,
    /// Intact events parsed.
    pub events: usize,
    /// Lines that failed hash verification or JSON parsing — damage is
    /// dropped and counted, never trusted.
    pub corrupt_lines: usize,
}

impl WorkerStatus {
    /// Liveness at wall-clock time `now_ms`.
    #[must_use]
    pub fn state(&self, now_ms: u64) -> WorkerState {
        if self.done {
            return WorkerState::Done;
        }
        let window = STALL_FACTOR * self.flush_ms.max(1);
        if now_ms.saturating_sub(self.last_event_ms) > window {
            WorkerState::Stalled
        } else {
            WorkerState::Running
        }
    }

    /// Estimated seconds to finish this worker's remaining trials
    /// (`Some(0.0)` once done, `None` while no throughput estimate
    /// exists).
    #[must_use]
    pub fn eta_secs(&self) -> Option<f64> {
        if self.done {
            Some(0.0)
        } else {
            self.progress.eta_secs()
        }
    }

    /// Milliseconds since the newest event, at `now_ms`.
    #[must_use]
    pub fn heartbeat_age_ms(&self, now_ms: u64) -> u64 {
        now_ms.saturating_sub(self.last_event_ms)
    }

    /// Milliseconds since the newest checkpoint flush, at `now_ms`.
    #[must_use]
    pub fn checkpoint_age_ms(&self, now_ms: u64) -> Option<u64> {
        self.last_ckpt_ms.map(|t| now_ms.saturating_sub(t))
    }
}

/// Parses one journal into a [`WorkerStatus`]. Damaged lines are
/// skipped and counted in `corrupt_lines`; an empty or fully-corrupt
/// journal yields a default status under `fallback_id`.
#[must_use]
pub fn parse_worker_status(fallback_id: &str, bytes: &[u8]) -> WorkerStatus {
    let mut st = WorkerStatus {
        worker: fallback_id.to_string(),
        flush_ms: DEFAULT_FLUSH_MS,
        ..WorkerStatus::default()
    };
    // Tallies from shard_done events: the pre-first-heartbeat fallback.
    let (mut sd_shards, mut sd_trials) = (0u64, 0u64);
    let mut saw_heartbeat = false;
    let text = String::from_utf8_lossy(bytes);
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let Some(json) = verify_line(line) else {
            st.corrupt_lines += 1;
            continue;
        };
        let Ok(v) = crate::artifact::json::parse(json) else {
            st.corrupt_lines += 1;
            continue;
        };
        let Some(ev) = v.get("ev").and_then(|e| e.as_str().map(str::to_string)) else {
            st.corrupt_lines += 1;
            continue;
        };
        st.events += 1;
        let num = |key: &str| v.get(key).and_then(crate::artifact::json::JsonValue::as_num);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let int = |key: &str| num(key).map(|n| n.max(0.0) as u64);
        if let Some(t) = int("t_ms") {
            st.last_event_ms = st.last_event_ms.max(t);
        }
        match ev.as_str() {
            "meta" => {
                if let Some(w) = v.get("worker").and_then(|w| w.as_str()) {
                    st.worker = w.to_string();
                }
                st.pid = int("pid").unwrap_or(0);
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                {
                    st.lo = num("lo").map_or(0, |n| n.max(0.0) as u32);
                    st.hi = num("hi").map_or(0, |n| n.max(0.0) as u32);
                }
                st.flush_ms = int("flush_ms").unwrap_or(DEFAULT_FLUSH_MS).max(1);
                if let Some(ver) = v.get("version").and_then(|w| w.as_str()) {
                    st.version = ver.to_string();
                }
            }
            "shard_done" => {
                sd_shards += 1;
                sd_trials += int("trials").unwrap_or(0);
            }
            "ckpt_flush" => {
                st.last_ckpt_ms = st.last_ckpt_ms.max(int("t_ms"));
            }
            "heartbeat" | "done" => {
                saw_heartbeat = true;
                st.done |= ev == "done";
                st.progress = ProgressSnapshot {
                    shards_done: int("shards_done").unwrap_or(0),
                    shards_total: int("shards_total").unwrap_or(0),
                    trials_done: int("trials_done").unwrap_or(0),
                    trials_total: int("trials_total").unwrap_or(0),
                    restored: int("restored").unwrap_or(0),
                    computed: int("computed").unwrap_or(0),
                    samples_per_sec: num("samples_per_sec").unwrap_or(0.0).max(0.0),
                };
            }
            // claim / shard_start / unknown future kinds: liveness only.
            _ => {}
        }
    }
    if !saw_heartbeat {
        st.progress.shards_done = st.progress.shards_done.max(sd_shards);
        st.progress.trials_done = st.progress.trials_done.max(sd_trials);
    }
    st
}

/// The aggregated view `repro status` renders: per-worker statuses plus
/// store-wide claim and checkpoint state.
#[derive(Debug, Clone, Default)]
pub struct FleetStatus {
    /// One entry per journal, sorted by shard range then id.
    pub workers: Vec<WorkerStatus>,
    /// Live claim lock ranges, sorted.
    pub claims: Vec<(u32, u32)>,
    /// Checkpoint files in the store.
    pub checkpoints: usize,
    /// Total checkpoint bytes.
    pub checkpoint_bytes: u64,
}

impl FleetStatus {
    /// Sum of every worker's progress snapshot (the deterministic-merge
    /// semantics of [`ProgressSnapshot::merge`]).
    #[must_use]
    pub fn merged(&self) -> ProgressSnapshot {
        self.workers
            .iter()
            .fold(ProgressSnapshot::default(), |acc, w| acc.merge(&w.progress))
    }

    /// How many workers are stalled at `now_ms`.
    #[must_use]
    pub fn stalled(&self, now_ms: u64) -> usize {
        self.workers.iter().filter(|w| w.state(now_ms) == WorkerState::Stalled).count()
    }
}

/// Reads every journal plus the claim/checkpoint state of `store`.
#[must_use]
pub fn fleet_status(store: &Store) -> FleetStatus {
    let mut workers: Vec<WorkerStatus> = store
        .journals()
        .iter()
        .map(|(id, bytes)| parse_worker_status(id, bytes))
        .collect();
    workers.sort_by(|a, b| (a.lo, a.hi, &a.worker).cmp(&(b.lo, b.hi, &b.worker)));
    let mut claims = store.claims();
    claims.sort_unstable();
    let stat = store.stat();
    FleetStatus {
        workers,
        claims,
        checkpoints: stat.checkpoints,
        checkpoint_bytes: stat.checkpoint_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch(name: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ntc-journal-test-{}-{}-{}",
            name,
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lines_round_trip_and_reject_any_bit_flip() {
        let json = r#"{"ev":"claim","lo":0,"hi":32,"seq":1,"t_ms":1700000000000}"#;
        let line = encode_line(json);
        assert_eq!(verify_line(&line), Some(json));
        // Every single-bit flip anywhere in the line must be rejected
        // (or, for flips inside the hex prefix that change it to
        // another valid prefix, must not verify against the payload).
        let bytes = line.as_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.to_vec();
                m[byte] ^= 1 << bit;
                let Ok(s) = std::str::from_utf8(&m) else { continue };
                assert_ne!(verify_line(s), Some(json), "flip at {byte}:{bit} accepted");
                if let Some(recovered) = verify_line(s) {
                    // A flip can only "verify" by damaging payload and
                    // hash consistently — impossible for a 1-bit flip.
                    panic!("corrupt line verified as {recovered}");
                }
            }
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let line = encode_line(r#"{"ev":"done","shards_done":64,"trials_done":1000,"seq":9,"t_ms":5}"#);
        for cut in 0..line.len() {
            assert_eq!(verify_line(&line[..cut]), None, "truncation at {cut} accepted");
        }
    }

    #[test]
    fn journal_publishes_meta_and_claim_immediately() {
        let store = Store::open(scratch("meta")).unwrap();
        let j = Journal::new(&store, 8, 24, 500);
        let journals = store.journals();
        assert_eq!(journals.len(), 1);
        let st = parse_worker_status(&journals[0].0, &journals[0].1);
        assert_eq!(st.worker, j.worker_id());
        assert_eq!((st.lo, st.hi), (8, 24));
        assert_eq!(st.flush_ms, 500);
        assert_eq!(st.pid, u64::from(std::process::id()));
        assert_eq!(st.corrupt_lines, 0);
        assert_eq!(st.events, 2, "meta + claim");
        assert!(!st.done);
    }

    #[test]
    fn shard_events_and_heartbeat_drive_worker_status() {
        let store = Store::open(scratch("events")).unwrap();
        let j = Journal::new(&store, 0, 64, 1000);
        j.shard_start("fig5", 3);
        j.ckpt_flush("fig5", 3, 128);
        j.shard_done("fig5", 3, 1000, 123.4);
        j.flush();
        let (id, bytes) = &store.journals()[0];
        let st = parse_worker_status(id, bytes);
        // No heartbeat yet: shard_done tallies stand in.
        assert_eq!(st.progress.shards_done, 1);
        assert_eq!(st.progress.trials_done, 1000);
        assert!(st.last_ckpt_ms.is_some());
        assert_eq!(st.state(now_ms()), WorkerState::Running);

        j.done();
        let (id, bytes) = &store.journals()[0];
        let st = parse_worker_status(id, bytes);
        assert!(st.done);
        assert_eq!(st.state(now_ms() + 1_000_000), WorkerState::Done, "done is never stalled");
        assert_eq!(st.eta_secs(), Some(0.0));
    }

    #[test]
    fn silence_beyond_the_stall_window_reads_as_stalled() {
        let st = WorkerStatus {
            flush_ms: 200,
            last_event_ms: 10_000,
            ..WorkerStatus::default()
        };
        assert_eq!(st.state(10_000 + 3 * 200), WorkerState::Running, "at the edge");
        assert_eq!(st.state(10_000 + 3 * 200 + 1), WorkerState::Stalled, "past the edge");
    }

    #[test]
    fn corrupt_lines_are_counted_not_trusted() {
        let store = Store::open(scratch("corrupt")).unwrap();
        let j = Journal::new(&store, 0, 32, 1000);
        j.shard_done("fig4", 0, 500, 10.0);
        j.shard_done("fig4", 1, 500, 10.0);
        j.flush();
        let (id, bytes) = &store.journals()[0];
        // Flip one byte in the middle of the last line.
        let mut damaged = bytes.clone();
        let n = damaged.len();
        damaged[n - 10] ^= 0x40;
        let st = parse_worker_status(id, &damaged);
        assert_eq!(st.corrupt_lines, 1);
        assert_eq!(st.progress.shards_done, 1, "the damaged shard_done is dropped");
        // And truncation mid-line drops exactly the torn tail.
        let cut = &bytes[..bytes.len() - 5];
        let st = parse_worker_status(id, cut);
        assert_eq!(st.corrupt_lines, 1);
        assert_eq!(st.events, 3, "meta + claim + first shard_done survive");
    }

    #[test]
    fn journal_sink_journals_around_the_inner_sink() {
        use ntc_stats::ckpt::MemorySink;
        let store = Store::open(scratch("sink")).unwrap();
        let j = Journal::new(&store, 0, 64, 1000);
        let sink = JournalSink::new(MemorySink::new(), Arc::clone(&j));
        let key = CollectiveKey { scope: "fig5".to_string(), tag: "t", seed: 1, trials: 100, salt: 0 };
        assert!(sink.load(&key, 2).is_none(), "miss on empty inner sink");
        let ck = ShardCheckpoint {
            shard: 2,
            seed: 1,
            lo: 20,
            hi: 30,
            tag: "t".to_string(),
            payload: vec![1, 2, 3],
        };
        sink.store(&key, 2, &ck.encode());
        assert!(sink.load(&key, 2).is_some(), "inner sink now has the shard");
        j.flush();
        let (id, bytes) = &store.journals()[0];
        let st = parse_worker_status(id, bytes);
        assert_eq!(st.progress.shards_done, 1);
        assert_eq!(st.progress.trials_done, 10, "trials decoded from the envelope");
        assert!(st.last_ckpt_ms.is_some(), "ckpt_flush journaled");
    }

    #[test]
    fn fleet_status_merges_disjoint_workers() {
        let store = Store::open(scratch("fleet")).unwrap();
        let a = Journal::new(&store, 0, 32, 1000);
        let b = Journal::new(&store, 32, 64, 1000);
        for s in 0..4 {
            a.shard_done("fig5", s, 250, 100.0);
        }
        b.shard_done("fig5", 40, 250, 50.0);
        a.flush();
        b.flush();
        let fleet = fleet_status(&store);
        assert_eq!(fleet.workers.len(), 2);
        assert_eq!(fleet.workers[0].lo, 0, "sorted by shard range");
        assert_eq!(fleet.workers[1].lo, 32);
        let merged = fleet.merged();
        assert_eq!(merged.shards_done, 5);
        assert_eq!(merged.trials_done, 1250);
        assert_eq!(fleet.stalled(now_ms()), 0);
    }
}
