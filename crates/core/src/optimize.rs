//! Design-space autotuner: the general form of Table 2's grid search.
//!
//! The paper fixes the memory organization and sweeps one axis at a
//! time; this module searches banks × words × cell family × mitigation
//! scheme × VDD jointly, under the same analytic models, minimizing a
//! user-weighted energy/delay/area objective subject to the paper's two
//! hard constraints: the FIT budget (per-bit error probability must fit
//! the scheme's correction capacity) and the platform clock (supply
//! must reach the required frequency on the 40 nm logic timing model —
//! exactly the performance constraint of Table 2).
//!
//! The search itself is [`ntc_stats::opt`]: coordinate descent with
//! seeded restarts over the discrete axes, golden-section refinement on
//! VDD when the request asks for the `exact` grid (on the `paper` grid
//! VDD becomes one more discrete axis over the 110 mV points). The
//! whole evaluation chain is deterministic — analytic models, seeded
//! restarts, ordered restart merge — so [`optimize`] is a pure function
//! of the canonicalized request: the CLI, the server and the registry
//! experiment all produce byte-identical responses for the same
//! request, at any `NTC_THREADS`.
//!
//! Infeasible points (bank count not dividing the word count, error
//! rate above the scheme's budget, clock unreachable, capacity below
//! `min_words`) evaluate to `+∞` rather than erroring, so the optimizer
//! walks around them; a request whose whole space is infeasible comes
//! back with `feasible: false`.

use ntc_memcalc::instance::{MemoryMacro, MemoryOrganization};
use ntc_stats::opt::{self, OptConfig, SearchSpace};
use ntc_tech::card;

use crate::api::{BestDesign, OptimizeConvergence, OptimizeRequest, OptimizeResponse};
use crate::fit::{paper_platform_model, FitSolver, VoltageGrid};

/// The paper's voltage grid pitch, volts.
const GRID_STEP: f64 = 0.11;

/// Golden-section interval tolerance on the `exact` VDD axis.
const VDD_TOL: f64 = 1e-4;

/// Coordinate-sweep safety cap per restart.
const MAX_SWEEPS: u32 = 64;

/// The 110 mV grid points inside `[lo, hi]`, in ascending order.
#[cfg(test)]
fn grid_points(lo: f64, hi: f64) -> Vec<f64> {
    let k_lo = (lo / GRID_STEP - 1e-9).ceil().max(1.0) as i64;
    let k_hi = (hi / GRID_STEP + 1e-9).floor() as i64;
    (k_lo..=k_hi)
        .map(|k| (k as f64 * GRID_STEP * 1000.0).round() / 1000.0)
        .collect()
}

/// Everything the objective closure needs, precomputed once per run.
struct Evaluator<'a> {
    req: &'a OptimizeRequest,
    /// Grid-index window `[k_lo, k_hi]` on the `paper` grid (`None` on
    /// the `exact` grid). VDD always rides the engine's continuous
    /// axis; on the paper grid the objective snaps the coordinate to
    /// the nearest in-window 110 mV multiple, so the engine's exact
    /// line search still sees every grid plateau while the reported
    /// design lands exactly on the grid.
    grid_window: Option<(i64, i64)>,
    /// Minimum feasible supply per `[cell][scheme]`, computed with the
    /// same solve-then-quantize semantics as Table 2 (`+∞` when the
    /// required clock is unreachable). On the `paper` grid the floor is
    /// the *nearest* 110 mV multiple — Table 2's own rounding — so the
    /// optimizer rediscovers the published points rather than the
    /// next-grid-point-up conservative reading.
    vdd_floor: Vec<Vec<f64>>,
}

impl Evaluator<'_> {
    fn new(req: &OptimizeRequest) -> Evaluator<'_> {
        let platform = paper_platform_model();
        let reachable = platform.f_max(1.32) >= req.constraints.frequency_hz;
        let vdd_floor = req
            .space
            .cells
            .iter()
            .map(|&cell| {
                let solver = FitSolver::new(cell.access_law(), req.constraints.fit_target)
                    .with_grid(req.space.vdd.grid);
                req.space
                    .schemes
                    .iter()
                    .map(|&scheme| {
                        if !reachable {
                            return f64::INFINITY;
                        }
                        solver
                            .solve(scheme, req.constraints.frequency_hz, |v| platform.f_max(v))
                            .operating
                    })
                    .collect()
            })
            .collect();
        let grid_window = match req.space.vdd.grid {
            VoltageGrid::PaperGrid => {
                let k_lo = (req.space.vdd.lo / GRID_STEP - 1e-9).ceil().max(1.0) as i64;
                let k_hi = (req.space.vdd.hi / GRID_STEP + 1e-9).floor() as i64;
                Some((k_lo, k_hi))
            }
            _ => None,
        };
        Evaluator { req, grid_window, vdd_floor }
    }

    /// The search-space shape for the engine: discrete axes in the
    /// fixed order cells, schemes, banks, words, plus VDD as the
    /// continuous axis.
    fn space(&self) -> Result<SearchSpace, &'static str> {
        let s = &self.req.space;
        if matches!(self.grid_window, Some((k_lo, k_hi)) if k_lo > k_hi) {
            return Err("no paper-grid voltage in the requested window");
        }
        SearchSpace::new(
            vec![s.cells.len(), s.schemes.len(), s.banks.len(), s.words.len()],
            Some((s.vdd.lo, s.vdd.hi)),
        )
    }

    /// Decodes an engine coordinate into the candidate design's VDD:
    /// the nearest in-window grid point on the paper grid, the raw
    /// coordinate on the exact grid.
    fn vdd_of(&self, x: f64) -> f64 {
        match self.grid_window {
            None => x,
            Some((k_lo, k_hi)) => {
                let k = (x / GRID_STEP).round().clamp(k_lo as f64, k_hi as f64);
                (k * GRID_STEP * 1000.0).round() / 1000.0
            }
        }
    }

    /// Full report for a candidate point; `None` when infeasible.
    fn report(&self, choice: &[usize], x: f64) -> Option<BestDesign> {
        let s = &self.req.space;
        let c = &self.req.constraints;
        let cell = s.cells[choice[0]];
        let scheme = s.schemes[choice[1]];
        let banks = s.banks[choice[2]];
        let words = s.words[choice[3]];
        let vdd = self.vdd_of(x);
        if !(vdd.is_finite() && vdd > 0.0) {
            return None;
        }
        if let Some(min) = c.min_words {
            if words < min {
                return None;
            }
        }
        // `with_banks` requires the bank count to divide the words; a
        // combination that doesn't is simply not a buildable macro.
        if !words.is_multiple_of(banks) {
            return None;
        }
        // Both hard constraints collapse to a supply floor: the FIT
        // budget (cell access law vs scheme correction capacity) and the
        // platform clock, solved and grid-quantized exactly like Table 2.
        if vdd + 1e-9 < self.vdd_floor[choice[0]][choice[1]] {
            return None;
        }
        let org = MemoryOrganization::new(words, scheme.word_bits())
            .expect("axis candidates are validated nonzero");
        let mac = MemoryMacro::new(cell, org, card::n40lp()).with_banks(banks);
        // Energy per access at the constrained duty: dynamic access
        // energy plus the leakage burned per cycle at `frequency_hz` —
        // the same accounting as the banking ablation.
        let energy_pj =
            (mac.access_energy(vdd) + mac.leakage_power(vdd) / c.frequency_hz) / 1e-12;
        let cycle_ns = mac.cycle_time(vdd) / 1e-9;
        let area = mac.area_mm2();
        let w = self.req.objective;
        let objective = w.energy * energy_pj + w.delay * cycle_ns + w.area * area;
        Some(BestDesign {
            cell,
            scheme,
            banks,
            words,
            vdd,
            energy_per_access_pj: energy_pj,
            cycle_time_ns: cycle_ns,
            area_mm2: area,
            f_max_hz: mac.f_max(vdd),
            objective,
        })
    }

    /// The engine objective: weighted scalar, `+∞` when infeasible.
    fn objective(&self, choice: &[usize], x: f64) -> f64 {
        self.report(choice, x).map_or(f64::INFINITY, |r| r.objective)
    }
}

/// Runs the autotuner. Pure function of the canonicalized request —
/// same request, same response bytes, at any thread count.
pub fn optimize(req: &OptimizeRequest) -> OptimizeResponse {
    let mut req = req.clone();
    req.canonicalize();
    let mut span = ntc_obs::span("optimize.run");
    ntc_obs::counter_add("optimize.requests", 1);
    let ev = Evaluator::new(&req);
    let space = match ev.space() {
        Ok(space) => space,
        // Degenerate only when the requested VDD window contains no
        // paper-grid point: nothing to search, nothing feasible.
        Err(_) => {
            return OptimizeResponse {
                request_hash: req.request_hash_hex(),
                feasible: false,
                best: None,
                convergence: OptimizeConvergence {
                    restarts: 0,
                    sweeps: 0,
                    evaluations: 0,
                    best_per_restart: Vec::new(),
                },
            }
        }
    };
    let cfg = OptConfig {
        seed: req.seed,
        restarts: req.restarts,
        tol: VDD_TOL,
        max_sweeps: MAX_SWEEPS,
    };
    let (best, conv) = opt::minimize(&space, &cfg, |choice, x| ev.objective(choice, x));
    span.add_items(conv.evaluations);
    let report = if best.value.is_finite() {
        ev.report(&best.choice, best.x)
    } else {
        None
    };
    if let Some(r) = &report {
        ntc_obs::gauge_set("optimize.best_objective", r.objective);
    }
    OptimizeResponse {
        request_hash: req.request_hash_hex(),
        feasible: report.is_some(),
        best: report,
        convergence: OptimizeConvergence {
            restarts: conv.restarts,
            sweeps: conv.sweeps,
            evaluations: conv.evaluations,
            best_per_restart: conv.best_per_restart,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::DesignSpaceSpec;
    use crate::fit::Scheme;
    use ntc_sram::styles::CellStyle;

    fn paper_req(frequency_hz: f64) -> OptimizeRequest {
        let mut req = OptimizeRequest::paper(frequency_hz);
        req.canonicalize();
        req
    }

    #[test]
    fn paper_grid_points_cover_the_table2_voltages() {
        let pts = grid_points(0.2, 1.2);
        assert_eq!(pts.first(), Some(&0.22));
        assert_eq!(pts.last(), Some(&1.1));
        for v in [0.33, 0.44, 0.55] {
            assert!(pts.contains(&v), "{v} missing from {pts:?}");
        }
    }

    #[test]
    fn rediscovers_table2_at_290khz() {
        // Constrained to one scheme at a time, the optimizer's VDD must
        // land on the Table 2 column for the cell-based 40 nm macro.
        for (scheme, want_vdd) in [
            (Scheme::NoMitigation, 0.55),
            (Scheme::Secded, 0.44),
            (Scheme::Ocean, 0.33),
        ] {
            let mut req = paper_req(290e3);
            req.space.cells = vec![CellStyle::CellBasedAoi];
            req.space.schemes = vec![scheme];
            let resp = optimize(&req);
            let best = resp.best.expect("paper space is feasible");
            assert_eq!(best.vdd, want_vdd, "{scheme:?}");
            assert_eq!(best.scheme, scheme);
        }
    }

    #[test]
    fn rediscovers_table2_at_1_96mhz() {
        // The second Table 2 row: at 1.96 MHz the performance constraint
        // lifts OCEAN's supply from 0.33 to 0.44 V.
        for (scheme, want_vdd) in [
            (Scheme::NoMitigation, 0.55),
            (Scheme::Secded, 0.44),
            (Scheme::Ocean, 0.44),
        ] {
            let mut req = paper_req(1.96e6);
            req.space.cells = vec![CellStyle::CellBasedAoi];
            req.space.schemes = vec![scheme];
            let resp = optimize(&req);
            let best = resp.best.expect("paper space is feasible");
            assert_eq!(best.vdd, want_vdd, "{scheme:?}");
        }
    }

    #[test]
    fn full_space_winner_is_ocean_at_ntc() {
        // Across the whole paper space the energy objective picks the
        // scheme with the lowest supply: OCEAN at 0.33 V (Table 2's
        // punchline — mitigation buys quadratic dynamic-energy savings
        // that dwarf the 39-bit word overhead).
        let resp = optimize(&paper_req(290e3));
        let best = resp.best.expect("feasible");
        assert_eq!(best.scheme, Scheme::Ocean);
        assert_eq!(best.vdd, 0.33);
        assert_eq!(best.words, 2048, "capacity floor is binding under energy");
        assert!(resp.feasible);
        assert_eq!(resp.convergence.restarts, 8);
        assert!(resp.convergence.evaluations > 0);
    }

    #[test]
    fn responses_are_bit_identical_across_reruns() {
        let a = optimize(&paper_req(290e3));
        let b = optimize(&paper_req(290e3));
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn exact_grid_refines_below_the_paper_point() {
        // On the exact grid the optimizer slides VDD down to the true
        // constraint boundary, which the 110 mV grid rounds up from.
        let mut req = paper_req(290e3);
        req.space.vdd.grid = VoltageGrid::Exact;
        req.space.cells = vec![CellStyle::CellBasedAoi];
        req.space.schemes = vec![Scheme::Ocean];
        let resp = optimize(&req);
        let best = resp.best.expect("feasible");
        assert!(best.vdd <= 0.33 + 1e-3, "exact vdd {} above grid point", best.vdd);
        assert!(best.vdd >= req.space.vdd.lo);
    }

    #[test]
    fn infeasible_space_reports_cleanly() {
        // A 10 GHz requirement is unreachable at <= 1.2 V.
        let mut req = paper_req(290e3);
        req.constraints.frequency_hz = 1e10;
        let resp = optimize(&req);
        assert!(!resp.feasible);
        assert!(resp.best.is_none());
        assert!(resp.convergence.evaluations > 0);
    }

    #[test]
    fn empty_vdd_window_is_infeasible_not_a_panic() {
        let mut req = paper_req(290e3);
        req.space.vdd.lo = 0.01;
        req.space.vdd.hi = 0.02;
        let resp = optimize(&req);
        assert!(!resp.feasible);
        assert_eq!(resp.convergence.restarts, 0);
    }

    #[test]
    fn non_dividing_bank_counts_are_skipped_not_fatal() {
        // words=48 is divisible by 16 but not 32; the optimizer must
        // route around the unbuildable combination.
        let mut req = paper_req(290e3);
        req.constraints.min_words = None;
        req.space = DesignSpaceSpec {
            banks: vec![16, 32],
            words: vec![48],
            cells: vec![CellStyle::CellBasedAoi],
            schemes: vec![Scheme::Ocean],
            vdd: req.space.vdd,
        };
        req.canonicalize();
        let resp = optimize(&req);
        let best = resp.best.expect("16-bank point is buildable");
        assert_eq!(best.banks, 16);
    }

    #[test]
    fn delay_weight_pulls_voltage_up() {
        // With delay in the objective, higher supply (faster cycles)
        // must not lose to the energy-minimal NTC point outright.
        let mut req = paper_req(290e3);
        req.objective.energy = 0.0;
        req.objective.delay = 1.0;
        let resp = optimize(&req);
        let best = resp.best.expect("feasible");
        let energy_best = optimize(&paper_req(290e3)).best.unwrap();
        assert!(
            best.vdd > energy_best.vdd,
            "delay-weighted vdd {} should exceed energy-weighted {}",
            best.vdd,
            energy_best.vdd
        );
    }
}
