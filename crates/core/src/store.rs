//! Content-addressed on-disk store for artifacts and shard checkpoints.
//!
//! The determinism contract makes every artifact a pure function of
//! `(experiment id, scale, seed, code version)` and every Monte-Carlo
//! shard a pure function of its [`CollectiveKey`] — so both can be cached
//! on disk and served back byte-for-byte. This module is the disk half of
//! that bargain; `ntc_stats::ckpt` is the compute half.
//!
//! # Layout
//!
//! ```text
//! <root>/
//!   artifacts/    <id>.<scale>.s<seed>.v<version>.json   (header + JSON)
//!   checkpoints/  <scope>/<collective stem>/shard-<NNN>.ckpt
//!   locks/        claim-<LO>-<HI>.lock                   (worker claims)
//!   tmp/          in-flight writes (renamed into place on completion)
//! ```
//!
//! * **Artifacts** are the exact bytes `Artifact::to_json` produced,
//!   prefixed by a one-line header carrying a length and an FNV-64 hash.
//!   A read that fails the hash (bit rot, torn write from a crashed
//!   publisher that somehow bypassed the tmp protocol) is a **miss**,
//!   never a wrong answer, and bumps `store.corrupt`.
//! * **Checkpoints** are encoded `ntc_stats::ckpt::ShardCheckpoint`s —
//!   they carry their own integrity hash, so the store treats them as
//!   opaque bytes.
//! * **Publication is atomic**: writes land in `tmp/` and are
//!   `rename(2)`d into place, so a concurrent reader sees either the
//!   whole file or nothing, and a SIGKILL mid-write leaves only tmp
//!   debris (reclaimed by [`Store::gc`]).
//! * **Claims** partition the 64-shard space between worker processes:
//!   `claim-LO-HI.lock` is created with `create_new` (EEXIST on a
//!   duplicate) and overlap-checked against existing locks, so two
//!   workers cannot both own a shard. The lock is removed on clean exit
//!   ([`Claim`] drop); a killed worker leaves a stale lock for
//!   [`Store::gc`] to sweep.
//!
//! Counters (all under the `store.*` family, live only when `ntc-obs` is
//! enabled): `store.hit` / `store.miss` / `store.corrupt` / `store.put`
//! for artifacts, `store.ckpt.hit` / `store.ckpt.miss` / `store.ckpt.put`
//! for checkpoints.

use crate::error::NtcError;
use crate::repro::Scale;
use ntc_stats::ckpt::{fnv64, CheckpointSink, CollectiveKey};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk format revision; bumped when the header or layout changes.
pub const FORMAT: u32 = 1;

/// The version component of every artifact key: crate version plus the
/// store format revision. Deliberately **not** `git describe` — a dirty
/// working tree must not split the cache between two processes built
/// from the same source.
pub fn store_version() -> String {
    format!("{}-f{}", env!("CARGO_PKG_VERSION"), FORMAT)
}

/// Content address of one artifact: `(id, scale, seed, version)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Experiment id (registry spelling, e.g. `"fig5"`).
    pub id: String,
    /// Scale name (`"paper"` / `"quick"`).
    pub scale: String,
    /// The run seed.
    pub seed: u64,
    /// Code/format version (defaults to [`store_version`]).
    pub version: String,
}

impl ArtifactKey {
    /// Key for `(id, scale, seed)` at the current [`store_version`].
    pub fn new(id: &str, scale: Scale, seed: u64) -> Self {
        ArtifactKey {
            id: id.to_string(),
            scale: scale.name().to_string(),
            seed,
            version: store_version(),
        }
    }

    /// The artifact's file name within `artifacts/`.
    pub fn file_name(&self) -> String {
        format!("{}.{}.s{}.v{}.json", self.id, self.scale, self.seed, self.version)
    }
}

/// A process's exclusive claim on the shard range `[lo, hi)`, backed by a
/// lock file. The lock is removed when the claim is dropped (clean exit);
/// a SIGKILL leaves it behind for [`Store::gc`].
#[derive(Debug)]
pub struct Claim {
    path: PathBuf,
    /// First claimed shard (inclusive).
    pub lo: u32,
    /// One past the last claimed shard.
    pub hi: u32,
}

impl Drop for Claim {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Store contents summary from [`Store::stat`], and the removal report
/// from [`Store::gc`] (where the counts are *removed* entries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStat {
    /// Artifact files (or, from `gc`, artifacts removed).
    pub artifacts: usize,
    /// Total artifact bytes.
    pub artifact_bytes: u64,
    /// Checkpoint files (or, from `gc`, checkpoints removed).
    pub checkpoints: usize,
    /// Total checkpoint bytes.
    pub checkpoint_bytes: u64,
    /// Live claim lock files (or, from `gc`, locks swept).
    pub locks: usize,
    /// Worker event journals (or, from `gc`, fully-corrupt journals
    /// swept).
    pub events: usize,
    /// Leftover tmp files (or, from `gc`, tmp files swept).
    pub tmp: usize,
}

impl StoreStat {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} artifacts ({} B), {} checkpoints ({} B), {} locks, {} journals, {} tmp",
            self.artifacts,
            self.artifact_bytes,
            self.checkpoints,
            self.checkpoint_bytes,
            self.locks,
            self.events,
            self.tmp
        )
    }
}

/// `1.5 KiB`-style rendering of a byte count (binary units, one
/// decimal; exact integer below 1 KiB).
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["KiB", "MiB", "GiB", "TiB", "PiB"];
    if bytes < 1024 {
        return format!("{bytes} B");
    }
    #[allow(clippy::cast_precision_loss)]
    let mut v = bytes as f64 / 1024.0;
    let mut unit = UNITS[0];
    for u in &UNITS[1..] {
        if v < 1024.0 {
            break;
        }
        v /= 1024.0;
        unit = u;
    }
    format!("{v:.1} {unit}")
}

/// Per-kind (`artifacts` / `checkpoints` / `locks` / `events` / `tmp`)
/// count, byte total and file-age extremes, from [`Store::age_summary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindAges {
    /// Which subtree this row describes.
    pub kind: &'static str,
    /// Files under the subtree.
    pub count: usize,
    /// Their byte total.
    pub bytes: u64,
    /// Age in seconds of the most recently modified file, when any.
    pub newest_secs: Option<u64>,
    /// Age in seconds of the least recently modified file, when any.
    pub oldest_secs: Option<u64>,
}

fn io_err(context: &str, e: impl std::fmt::Display) -> NtcError {
    NtcError::Io { context: context.to_string(), message: e.to_string() }
}

/// The content-addressed store, rooted at one directory.
///
/// Cloning is cheap (a path); every method re-reads the filesystem, so
/// multiple processes can share a root concurrently — atomic renames and
/// integrity hashes keep readers consistent without any daemon.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, NtcError> {
        let root = root.into();
        for sub in ["artifacts", "checkpoints", "locks", "events", "tmp"] {
            fs::create_dir_all(root.join(sub))
                .map_err(|e| io_err(&format!("store: create {}", root.join(sub).display()), e))?;
        }
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn artifact_path(&self, key: &ArtifactKey) -> PathBuf {
        self.root.join("artifacts").join(key.file_name())
    }

    fn checkpoint_path(&self, key: &CollectiveKey, shard: u32) -> PathBuf {
        self.root
            .join("checkpoints")
            .join(&key.scope)
            .join(key.file_stem())
            .join(format!("shard-{shard:03}.ckpt"))
    }

    /// Writes `bytes` to `dest` atomically: tmp file in `tmp/`, fsync-free
    /// `rename` into place. The tmp name folds in the pid and a process
    /// counter so concurrent writers never collide.
    fn publish(&self, dest: &Path, bytes: &[u8]) -> Result<(), NtcError> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let stem = dest
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "anon".to_string());
        let tmp = self
            .root
            .join("tmp")
            .join(format!("{stem}.{}.{seq}.part", std::process::id()));
        if let Some(parent) = dest.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| io_err(&format!("store: create {}", parent.display()), e))?;
        }
        {
            let mut f = fs::File::create(&tmp)
                .map_err(|e| io_err(&format!("store: create {}", tmp.display()), e))?;
            f.write_all(bytes)
                .map_err(|e| io_err(&format!("store: write {}", tmp.display()), e))?;
        }
        fs::rename(&tmp, dest).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            io_err(&format!("store: publish {}", dest.display()), e)
        })
    }

    // -- artifacts -----------------------------------------------------

    /// Publishes artifact JSON under `key` (atomic; last writer wins —
    /// harmless, since equal keys imply equal bytes).
    pub fn put_artifact(&self, key: &ArtifactKey, json: &str) -> Result<(), NtcError> {
        let payload = json.as_bytes();
        let mut file = Vec::with_capacity(payload.len() + 64);
        let header = format!("ntc-store {FORMAT} {} {:016x}\n", payload.len(), fnv64(payload));
        file.extend_from_slice(header.as_bytes());
        file.extend_from_slice(payload);
        self.publish(&self.artifact_path(key), &file)?;
        ntc_obs::counter_add("store.put", 1);
        Ok(())
    }

    /// Returns the exact artifact JSON published under `key`, verifying
    /// the header hash. Corruption or absence is a miss (`None`).
    pub fn get_artifact(&self, key: &ArtifactKey) -> Option<String> {
        let path = self.artifact_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                ntc_obs::counter_add("store.miss", 1);
                return None;
            }
        };
        match parse_artifact_file(&bytes) {
            Some(json) => {
                ntc_obs::counter_add("store.hit", 1);
                Some(json)
            }
            None => {
                ntc_obs::counter_add("store.corrupt", 1);
                ntc_obs::counter_add("store.miss", 1);
                None
            }
        }
    }

    /// Whether a valid artifact exists under `key` (no counter traffic).
    pub fn has_artifact(&self, key: &ArtifactKey) -> bool {
        fs::read(self.artifact_path(key))
            .ok()
            .and_then(|b| parse_artifact_file(&b))
            .is_some()
    }

    /// Number of checkpoint files recorded under `scope` (an experiment
    /// id) — what `repro list --verbose` reports as "checkpointed".
    pub fn checkpoint_count(&self, scope: &str) -> usize {
        let dir = self.root.join("checkpoints").join(scope);
        let mut n = 0;
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            let Ok(entries) = fs::read_dir(&d) else { continue };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|x| x == "ckpt") {
                    n += 1;
                }
            }
        }
        n
    }

    // -- checkpoint sink ----------------------------------------------

    /// A [`CheckpointSink`] view of this store, optionally restricted to
    /// computing only shards in `range` (worker mode). Install it with
    /// `ntc_stats::ckpt::install` to make every keyed collective
    /// checkpoint here.
    pub fn sink(&self, range: Option<(u32, u32)>) -> StoreSink {
        StoreSink { store: self.clone(), range }
    }

    // -- worker journals ----------------------------------------------

    /// Publishes a worker's event journal as `events/<worker>.jsonl`
    /// (atomic tmp+rename; last flush wins, and every flush carries the
    /// whole history, so that is always the freshest complete view).
    pub fn put_journal(&self, worker: &str, bytes: &[u8]) -> Result<(), NtcError> {
        self.publish(&self.root.join("events").join(format!("{worker}.jsonl")), bytes)
    }

    /// Every journal in the store as `(worker id, bytes)`, sorted by
    /// worker id for deterministic iteration.
    pub fn journals(&self) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = walk_files(&self.root.join("events"))
            .into_iter()
            .filter_map(|(p, _)| {
                let worker = p.file_stem()?.to_string_lossy().into_owned();
                Some((worker, fs::read(&p).ok()?))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    // -- claims --------------------------------------------------------

    /// Claims the shard range `[lo, hi)` for this process via a lock
    /// file. Fails if any existing claim overlaps the range.
    pub fn claim_shards(&self, lo: u32, hi: u32) -> Result<Claim, NtcError> {
        if lo >= hi {
            return Err(NtcError::invalid_param("shards", format!("empty range {lo}..{hi}")));
        }
        let overlapping: Vec<String> = self
            .claims()
            .into_iter()
            .filter(|&(clo, chi)| clo < hi && lo < chi)
            .map(|(clo, chi)| format!("{clo}..{chi}"))
            .collect();
        if !overlapping.is_empty() {
            return Err(NtcError::invalid_param(
                "shards",
                format!("range {lo}..{hi} overlaps existing claim(s) {}", overlapping.join(", ")),
            ));
        }
        let path = self.root.join("locks").join(format!("claim-{lo}-{hi}.lock"));
        let mut f = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err(&format!("store: claim {lo}..{hi}"), e))?;
        let _ = writeln!(f, "pid {}", std::process::id());
        drop(f);
        // Close the check-then-create race: if another overlapping lock
        // appeared between the scan and our create, the claim whose file
        // name sorts first wins and the loser withdraws.
        let ours = format!("claim-{lo}-{hi}.lock");
        let conflict = self
            .claim_files()
            .into_iter()
            .filter(|(name, (clo, chi))| *name != ours && *clo < hi && lo < *chi)
            .map(|(name, _)| name)
            .min();
        if let Some(winner) = conflict {
            if winner < ours {
                let _ = fs::remove_file(&path);
                return Err(NtcError::invalid_param(
                    "shards",
                    format!("range {lo}..{hi} lost claim race to {winner}"),
                ));
            }
        }
        Ok(Claim { path, lo, hi })
    }

    fn claim_files(&self) -> Vec<(String, (u32, u32))> {
        let Ok(entries) = fs::read_dir(self.root.join("locks")) else {
            return Vec::new();
        };
        entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                let range = name
                    .strip_prefix("claim-")?
                    .strip_suffix(".lock")?
                    .split_once('-')
                    .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))?;
                Some((name, range))
            })
            .collect()
    }

    /// The currently claimed shard ranges.
    pub fn claims(&self) -> Vec<(u32, u32)> {
        self.claim_files().into_iter().map(|(_, r)| r).collect()
    }

    // -- stat / gc -----------------------------------------------------

    /// Counts what the store holds.
    pub fn stat(&self) -> StoreStat {
        let mut s = StoreStat::default();
        for (p, size) in walk_files(&self.root.join("artifacts")) {
            let _ = p;
            s.artifacts += 1;
            s.artifact_bytes += size;
        }
        for (p, size) in walk_files(&self.root.join("checkpoints")) {
            let _ = p;
            s.checkpoints += 1;
            s.checkpoint_bytes += size;
        }
        s.locks = walk_files(&self.root.join("locks")).len();
        s.events = walk_files(&self.root.join("events")).len();
        s.tmp = walk_files(&self.root.join("tmp")).len();
        s
    }

    /// Per-kind count/bytes/age summary (ages from file modification
    /// times, relative to now) — what `repro store stat` renders.
    pub fn age_summary(&self) -> Vec<KindAges> {
        let now = std::time::SystemTime::now();
        ["artifacts", "checkpoints", "locks", "events", "tmp"]
            .into_iter()
            .map(|kind| {
                let mut row = KindAges {
                    kind,
                    count: 0,
                    bytes: 0,
                    newest_secs: None,
                    oldest_secs: None,
                };
                for (p, size) in walk_files(&self.root.join(kind)) {
                    row.count += 1;
                    row.bytes += size;
                    let age = fs::metadata(&p)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| now.duration_since(t).ok())
                        .map(|d| d.as_secs());
                    if let Some(a) = age {
                        row.newest_secs = Some(row.newest_secs.map_or(a, |n| n.min(a)));
                        row.oldest_secs = Some(row.oldest_secs.map_or(a, |o| o.max(a)));
                    }
                }
                row
            })
            .collect()
    }

    /// Sweeps debris: tmp leftovers, stale claim locks, artifacts from
    /// other store versions or failing their integrity hash, and
    /// checkpoint files whose envelope no longer decodes. Returns the
    /// counts of **removed** entries. Current-version valid artifacts and
    /// intact checkpoints are never touched.
    pub fn gc(&self) -> Result<StoreStat, NtcError> {
        let mut removed = StoreStat::default();
        for (p, size) in walk_files(&self.root.join("tmp")) {
            if fs::remove_file(&p).is_ok() {
                removed.tmp += 1;
                let _ = size;
            }
        }
        for (p, _) in walk_files(&self.root.join("locks")) {
            if fs::remove_file(&p).is_ok() {
                removed.locks += 1;
            }
        }
        let version_tag = format!(".v{}.json", store_version());
        for (p, size) in walk_files(&self.root.join("artifacts")) {
            let name = p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
            let stale = !name.ends_with(&version_tag)
                || fs::read(&p).ok().and_then(|b| parse_artifact_file(&b)).is_none();
            if stale && fs::remove_file(&p).is_ok() {
                removed.artifacts += 1;
                removed.artifact_bytes += size;
            }
        }
        for (p, size) in walk_files(&self.root.join("checkpoints")) {
            let intact = fs::read(&p)
                .ok()
                .is_some_and(|b| ntc_stats::ckpt::ShardCheckpoint::decode(&b).is_some());
            if !intact && fs::remove_file(&p).is_ok() {
                removed.checkpoints += 1;
                removed.checkpoint_bytes += size;
            }
        }
        // Journals whose every line fails verification are debris (a
        // torn or rotted file with nothing salvageable). Journals with
        // any intact line are history and are kept.
        for (p, _) in walk_files(&self.root.join("events")) {
            let salvageable = fs::read(&p).ok().is_some_and(|b| {
                String::from_utf8_lossy(&b)
                    .lines()
                    .any(|l| !l.is_empty() && crate::journal::verify_line(l).is_some())
            });
            if !salvageable && fs::remove_file(&p).is_ok() {
                removed.events += 1;
            }
        }
        Ok(removed)
    }
}

/// Parses + verifies an artifact file; `None` on any mismatch.
fn parse_artifact_file(bytes: &[u8]) -> Option<String> {
    let nl = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..nl]).ok()?;
    let mut parts = header.split(' ');
    if parts.next()? != "ntc-store" {
        return None;
    }
    let format: u32 = parts.next()?.parse().ok()?;
    if format != FORMAT {
        return None;
    }
    let len: usize = parts.next()?.parse().ok()?;
    let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
    if parts.next().is_some() {
        return None;
    }
    let payload = &bytes[nl + 1..];
    if payload.len() != len || fnv64(payload) != hash {
        return None;
    }
    String::from_utf8(payload.to_vec()).ok()
}

fn walk_files(root: &Path) -> Vec<(PathBuf, u64)> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else { continue };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                let size = e.metadata().map(|m| m.len()).unwrap_or(0);
                out.push((p, size));
            }
        }
    }
    out
}

/// The store as a checkpoint sink: keyed collectives restore from and
/// save to `checkpoints/`, optionally computing only an owned shard
/// range (worker mode).
pub struct StoreSink {
    store: Store,
    range: Option<(u32, u32)>,
}

impl CheckpointSink for StoreSink {
    fn load(&self, key: &CollectiveKey, shard: u32) -> Option<Vec<u8>> {
        match fs::read(self.store.checkpoint_path(key, shard)) {
            Ok(b) => {
                ntc_obs::counter_add("store.ckpt.hit", 1);
                Some(b)
            }
            Err(_) => {
                ntc_obs::counter_add("store.ckpt.miss", 1);
                None
            }
        }
    }

    fn store(&self, key: &CollectiveKey, shard: u32, encoded: &[u8]) {
        // Best-effort by contract: a failed write only costs a future
        // recompute of this shard.
        if self.store.publish(&self.store.checkpoint_path(key, shard), encoded).is_ok() {
            ntc_obs::counter_add("store.ckpt.put", 1);
        }
    }

    fn owns_shard(&self, shard: u32) -> bool {
        self.range.is_none_or(|(lo, hi)| (lo..hi).contains(&shard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch(name: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ntc-store-test-{}-{}-{}",
            name,
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn artifact_round_trips_byte_for_byte() {
        let store = Store::open(scratch("rt")).unwrap();
        let key = ArtifactKey::new("fig6", Scale::Quick, 2014);
        assert!(store.get_artifact(&key).is_none());
        assert!(!store.has_artifact(&key));
        let json = "{\"id\":\"fig6\",\"x\":[1.0,2.5]}";
        store.put_artifact(&key, json).unwrap();
        assert_eq!(store.get_artifact(&key).as_deref(), Some(json));
        assert!(store.has_artifact(&key));
    }

    #[test]
    fn keys_address_distinct_files() {
        let a = ArtifactKey::new("fig6", Scale::Quick, 2014);
        let mut b = a.clone();
        b.seed = 7;
        let mut c = a.clone();
        c.scale = "paper".to_string();
        let mut d = a.clone();
        d.version = "other".to_string();
        let names: std::collections::HashSet<_> =
            [&a, &b, &c, &d].iter().map(|k| k.file_name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn corrupt_artifact_is_a_miss_and_gc_sweeps_it() {
        let store = Store::open(scratch("corrupt")).unwrap();
        let key = ArtifactKey::new("table1", Scale::Quick, 1);
        store.put_artifact(&key, "{\"v\":1}").unwrap();
        // Flip a payload byte behind the store's back.
        let path = store.artifact_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get_artifact(&key), None);
        let removed = store.gc().unwrap();
        assert_eq!(removed.artifacts, 1);
        assert!(!path.exists());
    }

    #[test]
    fn truncated_and_headerless_files_are_rejected() {
        assert_eq!(parse_artifact_file(b""), None);
        assert_eq!(parse_artifact_file(b"not a header\n{}"), None);
        let store = Store::open(scratch("trunc")).unwrap();
        let key = ArtifactKey::new("fig1", Scale::Paper, 3);
        store.put_artifact(&key, "{\"series\":[1,2,3]}").unwrap();
        let full = fs::read(store.artifact_path(&key)).unwrap();
        assert!(parse_artifact_file(&full).is_some());
        assert_eq!(parse_artifact_file(&full[..full.len() - 2]), None);
    }

    #[test]
    fn publish_is_atomic_no_partial_files_visible() {
        let store = Store::open(scratch("atomic")).unwrap();
        let key = ArtifactKey::new("fig2", Scale::Quick, 9);
        store.put_artifact(&key, "{}").unwrap();
        // tmp/ is empty after a successful publish.
        assert_eq!(store.stat().tmp, 0);
        // Overwrite with different bytes; readers see old or new, and
        // after the call, exactly the new.
        store.put_artifact(&key, "{\"new\":true}").unwrap();
        assert_eq!(store.get_artifact(&key).as_deref(), Some("{\"new\":true}"));
    }

    #[test]
    fn overlapping_claims_are_rejected_and_release_frees_the_range() {
        let store = Store::open(scratch("claims")).unwrap();
        let a = store.claim_shards(0, 32).unwrap();
        assert!(store.claim_shards(16, 48).is_err());
        assert!(store.claim_shards(0, 32).is_err());
        let b = store.claim_shards(32, 64).unwrap();
        assert_eq!(store.claims().len(), 2);
        drop(a);
        drop(b);
        assert!(store.claims().is_empty());
        // Range is claimable again after release.
        let _c = store.claim_shards(0, 64).unwrap();
        // Degenerate range.
        assert!(store.claim_shards(5, 5).is_err());
    }

    #[test]
    fn stat_and_gc_account_for_checkpoints_and_locks() {
        let store = Store::open(scratch("stat")).unwrap();
        let ck_key = CollectiveKey {
            scope: "fig5".to_string(),
            tag: "mc_rate",
            seed: 11,
            trials: 1000,
            salt: 42,
        };
        let sink = store.sink(None);
        sink.store(&ck_key, 0, b"NTCKP1 definitely not a valid envelope");
        let good = ntc_stats::ckpt::ShardCheckpoint {
            shard: 1,
            seed: 11,
            lo: 0,
            hi: 10,
            tag: "trials".to_string(),
            payload: vec![0; 16],
        }
        .encode();
        sink.store(&ck_key, 1, &good);
        let _stale_lock = fs::write(store.root().join("locks").join("claim-0-8.lock"), "pid 1");
        fs::write(store.root().join("tmp").join("leftover.part"), "x").unwrap();

        let s = store.stat();
        assert_eq!(s.checkpoints, 2);
        assert_eq!(s.locks, 1);
        assert_eq!(s.tmp, 1);
        assert_eq!(store.checkpoint_count("fig5"), 2);
        assert_eq!(store.checkpoint_count("fig6"), 0);

        let removed = store.gc().unwrap();
        assert_eq!(removed.checkpoints, 1); // only the invalid envelope
        assert_eq!(removed.locks, 1);
        assert_eq!(removed.tmp, 1);
        let after = store.stat();
        assert_eq!(after.checkpoints, 1);
        assert_eq!(after.locks, 0);
        assert_eq!(after.tmp, 0);
    }

    #[test]
    fn store_version_is_stable_within_a_build() {
        assert_eq!(store_version(), store_version());
        assert!(store_version().ends_with(&format!("-f{FORMAT}")));
    }
}
