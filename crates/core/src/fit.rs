//! The voltage/FIT solver behind the paper's Table 2.
//!
//! Each mitigation scheme tolerates a number of simultaneous bit errors
//! per word before the system fails: none for unprotected operation,
//! two for (39,32) SECDED ("a triple-bit error would lead to system
//! failure"), four for OCEAN's protected buffer ("a quintuple (5 bits)
//! error is needed"). Given the memory's access-failure law
//! `p_bit(V)` and a FIT budget per transaction, the error-constrained
//! minimum voltage is where the word-failure probability crosses the
//! budget; the performance constraint adds a second floor through the
//! platform's `f_max(V)`; and the result is quantized to a voltage grid.
//!
//! The grid matters: all six operating voltages the paper reports
//! (0.55/0.44/0.33 V and 0.88/0.77/0.66 V) are exact multiples of
//! 110 mV, so [`VoltageGrid::PaperGrid`] rounds to the nearest such
//! multiple — which reproduces every one of them, including the cases
//! (0.78 → 0.77 V) where the published grid point sits marginally below
//! the exact FIT solution. [`VoltageGrid::CeilStep`] provides the strict
//! never-violate-the-budget alternative.

use ntc_memcalc::cache::CachedSoc;
use ntc_sram::failure::AccessLaw;
use ntc_sram::words::WordErrorModel;
use ntc_stats::exec::{par_map, par_map_slice};
use std::fmt;
use std::sync::OnceLock;

/// A mitigation scheme, characterized by its per-word correction capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scheme {
    /// No protection: any bit error is a failure.
    NoMitigation,
    /// (39,32) SECDED: two errors per word survivable, three fail.
    Secded,
    /// OCEAN: four errors per word survivable, five fail.
    Ocean,
}

impl Scheme {
    /// All schemes in the paper's column order.
    pub const ALL: [Scheme; 3] = [Scheme::NoMitigation, Scheme::Secded, Scheme::Ocean];

    /// Bit errors per word the scheme survives.
    pub fn correctable_bits(&self) -> u32 {
        match self {
            Scheme::NoMitigation => 0,
            Scheme::Secded => 2,
            Scheme::Ocean => 4,
        }
    }

    /// Stored word width the failure statistic runs over (32 raw bits
    /// without protection, 39 codeword bits with).
    pub fn word_bits(&self) -> u32 {
        match self {
            Scheme::NoMitigation => 32,
            Scheme::Secded | Scheme::Ocean => 39,
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scheme::NoMitigation => "No mitigation",
            Scheme::Secded => "ECC (SECDED)",
            Scheme::Ocean => "OCEAN",
        };
        f.write_str(s)
    }
}

/// Voltage quantization policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VoltageGrid {
    /// No quantization: the exact solved voltage.
    Exact,
    /// Round to the *nearest* multiple of 110 mV — the grid the paper's
    /// published voltages all lie on.
    PaperGrid,
    /// Round *up* to the next multiple of the given step in millivolts —
    /// never undershoots the FIT budget.
    CeilStep(u32),
}

impl VoltageGrid {
    /// Applies the grid to an exact solution.
    ///
    /// # Panics
    ///
    /// Panics if a `CeilStep` grid has a zero step.
    pub fn quantize(&self, v: f64) -> f64 {
        match *self {
            VoltageGrid::Exact => v,
            VoltageGrid::PaperGrid => {
                let step = 0.11;
                let k = (v / step).round();
                round_mv(k * step)
            }
            VoltageGrid::CeilStep(mv) => {
                assert!(mv > 0, "grid step must be nonzero");
                let step = mv as f64 / 1000.0;
                round_mv((v / step).ceil() * step)
            }
        }
    }
}

/// Round to a whole millivolt so grid voltages compare exactly.
fn round_mv(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// One row of a solved operating-point table.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SolvedVoltage {
    /// The scheme solved for.
    pub scheme: Scheme,
    /// Exact error-constrained voltage (before grid and performance).
    pub error_constrained: f64,
    /// Exact performance-constrained voltage, if a frequency was given.
    pub performance_constrained: Option<f64>,
    /// Final grid-quantized operating voltage.
    pub operating: f64,
}

/// The FIT solver.
///
/// # Example
///
/// ```
/// use ntc::fit::{FitSolver, Scheme, VoltageGrid};
/// use ntc_sram::AccessLaw;
///
/// // The commercial macro (Figure 9 regime):
/// let solver = FitSolver::new(AccessLaw::commercial_40nm(), 1e-15)
///     .with_grid(VoltageGrid::PaperGrid);
/// assert_eq!(solver.min_voltage(Scheme::NoMitigation), 0.88);
/// assert_eq!(solver.min_voltage(Scheme::Secded), 0.77);
/// assert_eq!(solver.min_voltage(Scheme::Ocean), 0.66);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FitSolver {
    law: AccessLaw,
    fit_target: f64,
    grid: VoltageGrid,
}

impl FitSolver {
    /// Creates a solver for `law` with a FIT budget per read/write
    /// transaction (the paper uses `1e-15`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fit_target < 1`.
    pub fn new(law: AccessLaw, fit_target: f64) -> Self {
        assert!(
            fit_target > 0.0 && fit_target < 1.0,
            "FIT target must be in (0, 1), got {fit_target}"
        );
        Self {
            law,
            fit_target,
            grid: VoltageGrid::Exact,
        }
    }

    /// Selects the voltage grid.
    #[must_use]
    pub fn with_grid(mut self, grid: VoltageGrid) -> Self {
        self.grid = grid;
        self
    }

    /// The failure law being solved against.
    pub fn law(&self) -> &AccessLaw {
        &self.law
    }

    /// The FIT budget.
    pub fn fit_target(&self) -> f64 {
        self.fit_target
    }

    /// Largest tolerable per-bit error probability for `scheme`.
    pub fn max_p_bit(&self, scheme: Scheme) -> f64 {
        WordErrorModel::new(scheme.word_bits())
            .max_p_bit_for_target(scheme.correctable_bits(), self.fit_target)
            .expect("positive target always has a solution")
    }

    /// Exact error-constrained minimum voltage for `scheme` (no grid, no
    /// performance constraint).
    pub fn error_constrained_voltage(&self, scheme: Scheme) -> f64 {
        let p = self.max_p_bit(scheme);
        if p >= 1.0 {
            return 0.0;
        }
        self.law.vdd_for_p(p)
    }

    /// Grid-quantized minimum voltage for `scheme`, error constraint only.
    pub fn min_voltage(&self, scheme: Scheme) -> f64 {
        self.grid.quantize(self.error_constrained_voltage(scheme))
    }

    /// Full solution including a performance constraint: `f_max(v)` maps
    /// supply to achievable clock; the platform must reach `frequency_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not achievable at 1.32 V (20 % above
    /// the 40 nm nominal — the search ceiling) or `f_max` is not monotone
    /// enough to bisect.
    pub fn solve(
        &self,
        scheme: Scheme,
        frequency_hz: f64,
        f_max: impl Fn(f64) -> f64,
    ) -> SolvedVoltage {
        let error_constrained = self.error_constrained_voltage(scheme);
        let v_ceiling = 1.32;
        assert!(
            f_max(v_ceiling) >= frequency_hz,
            "{frequency_hz} Hz unreachable even at {v_ceiling} V"
        );
        // Bisect the monotone f_max for the performance floor.
        let mut lo = 0.05;
        let mut hi = v_ceiling;
        if f_max(lo) >= frequency_hz {
            hi = lo;
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if f_max(mid) >= frequency_hz {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let performance_constrained = hi;
        let operating = self
            .grid
            .quantize(error_constrained.max(performance_constrained));
        SolvedVoltage {
            scheme,
            error_constrained,
            performance_constrained: Some(performance_constrained),
            operating,
        }
    }

    /// Solves all three schemes for one frequency — one row of Table 2 —
    /// with the schemes fanned across cores.
    ///
    /// Each scheme's bisection is an independent pure computation (the
    /// midpoint sequence depends only on `frequency_hz`), so the row is
    /// identical to solving the schemes sequentially; only wall-clock time
    /// changes. `f_max` therefore needs `Sync` on top of the previous
    /// bounds — every function in this crate (including
    /// [`paper_platform_f_max`]) satisfies it.
    pub fn table_row(
        &self,
        frequency_hz: f64,
        f_max: impl Fn(f64) -> f64 + Copy + Sync,
    ) -> [SolvedVoltage; 3] {
        let mut span = ntc_obs::span("fit.table_row");
        span.add_items(3);
        ntc_obs::counter_add("fit.grid.cells", 3);
        let schemes = [Scheme::NoMitigation, Scheme::Secded, Scheme::Ocean];
        let solved = par_map_slice(&schemes, |&s| self.solve(s, frequency_hz, f_max));
        solved.try_into().expect("three schemes in, three out")
    }

    /// Serial reference for [`FitSolver::table_row`], for equivalence tests
    /// and serial-vs-parallel benches.
    pub fn table_row_serial(
        &self,
        frequency_hz: f64,
        f_max: impl Fn(f64) -> f64 + Copy,
    ) -> [SolvedVoltage; 3] {
        [
            self.solve(Scheme::NoMitigation, frequency_hz, f_max),
            self.solve(Scheme::Secded, frequency_hz, f_max),
            self.solve(Scheme::Ocean, frequency_hz, f_max),
        ]
    }

    /// Solves every `(frequency, scheme)` cell of a multi-row table in one
    /// parallel fan-out — the full Table 2 voltage grid search.
    ///
    /// The work items are the frequency×scheme cross product, so all cells
    /// run concurrently rather than row-by-row. Results come back in
    /// frequency order, each row in scheme order, identical to calling
    /// [`FitSolver::table_row`] per frequency.
    pub fn table(
        &self,
        frequencies: &[f64],
        f_max: impl Fn(f64) -> f64 + Copy + Sync,
    ) -> Vec<[SolvedVoltage; 3]> {
        let mut span = ntc_obs::span("fit.table");
        span.add_items(frequencies.len() as u64 * 3);
        ntc_obs::counter_add("fit.grid.cells", frequencies.len() as u64 * 3);
        let schemes = [Scheme::NoMitigation, Scheme::Secded, Scheme::Ocean];
        let cells = par_map(frequencies.len() * 3, |i| {
            self.solve(schemes[i % 3], frequencies[i / 3], f_max)
        });
        cells
            .chunks_exact(3)
            .map(|row| [row[0], row[1], row[2]])
            .collect()
    }
}

impl fmt::Display for FitSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FIT solver ({} @ target {:.1e})", self.law, self.fit_target)
    }
}

/// The platform timing model used by the Table 2 reproduction: the
/// paper's "290 kHz is the minimum allowable frequency at the lowest
/// voltage (0.33 V)" anchor, scaled with the 40 nm logic delay model.
///
/// Queries go through a process-wide memoized [`CachedSoc`]: the solver's
/// bisection evaluates the same midpoint voltages for every scheme of a
/// table row (the midpoint sequence depends only on the frequency), so
/// after the first scheme the remaining two run almost entirely from
/// cache. Keys are quantized to 0.05 mV and the model is evaluated at the
/// dequantized voltage, so equal inputs give bit-equal outputs and the
/// perturbation (≤ 25 µV) is invisible at the paper's 110 mV voltage grid.
/// See [`ntc_memcalc::cache`] for the fidelity argument, and
/// [`paper_platform_cache_stats`] for the hit/miss counters.
pub fn paper_platform_f_max(vdd: f64) -> f64 {
    paper_platform_soc().f_max(vdd)
}

/// Hit/miss counters of the memo behind [`paper_platform_f_max`].
pub fn paper_platform_cache_stats() -> ntc_memcalc::cache::CacheStats {
    paper_platform_soc().stats()
}

/// A fresh memoized platform model, identical to the one behind
/// [`paper_platform_f_max`] but with its own cache. [`crate::repro::RunCtx`]
/// carries one per context so experiment runs share memo hits without
/// touching the global counters.
pub fn paper_platform_model() -> CachedSoc {
    use ntc_memcalc::soc::{SocComponent, SocEnergyModel};
    // A single-component stub: only the timing anchor matters here.
    CachedSoc::new(SocEnergyModel::new(
        vec![SocComponent::new("platform", 1e-12, 1.0, 1e-9)],
        1.1,
        ntc_tech::card::n40lp(),
        0.45,
        290e3,
        0.33,
    ))
}

/// The shared memoized platform model.
fn paper_platform_soc() -> &'static CachedSoc {
    static SOC: OnceLock<CachedSoc> = OnceLock::new();
    SOC.get_or_init(paper_platform_model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_solver() -> FitSolver {
        FitSolver::new(AccessLaw::cell_based_40nm(), 1e-15).with_grid(VoltageGrid::PaperGrid)
    }

    fn commercial_solver() -> FitSolver {
        FitSolver::new(AccessLaw::commercial_40nm(), 1e-15).with_grid(VoltageGrid::PaperGrid)
    }

    #[test]
    fn table2_error_constrained_voltages() {
        let s = cell_solver();
        assert_eq!(s.min_voltage(Scheme::NoMitigation), 0.55);
        assert_eq!(s.min_voltage(Scheme::Secded), 0.44);
        assert_eq!(s.min_voltage(Scheme::Ocean), 0.33);
    }

    #[test]
    fn figure9_commercial_voltages() {
        let s = commercial_solver();
        assert_eq!(s.min_voltage(Scheme::NoMitigation), 0.88);
        assert_eq!(s.min_voltage(Scheme::Secded), 0.77);
        assert_eq!(s.min_voltage(Scheme::Ocean), 0.66);
    }

    #[test]
    fn table2_with_performance_constraints() {
        let s = cell_solver();
        // 290 kHz row: pure error-constrained results.
        let row = s.table_row(290e3, paper_platform_f_max);
        assert_eq!(row[0].operating, 0.55);
        assert_eq!(row[1].operating, 0.44);
        assert_eq!(row[2].operating, 0.33);
        // 1.96 MHz row: OCEAN is lifted to 0.44 by the clock requirement.
        let row = s.table_row(1.96e6, paper_platform_f_max);
        assert_eq!(row[0].operating, 0.55);
        assert_eq!(row[1].operating, 0.44);
        assert_eq!(row[2].operating, 0.44, "performance-limited OCEAN point");
        assert!(row[2].performance_constrained.unwrap() > row[2].error_constrained);
    }

    #[test]
    fn parallel_table_row_matches_serial_bit_for_bit() {
        let s = cell_solver();
        for f in [290e3, 1.96e6, 11e6] {
            let par = s.table_row(f, paper_platform_f_max);
            let ser = s.table_row_serial(f, paper_platform_f_max);
            assert_eq!(par, ser, "row at {f} Hz");
        }
    }

    #[test]
    fn table_matches_rows() {
        let s = cell_solver();
        let freqs = [290e3, 1.96e6, 11e6];
        let table = s.table(&freqs, paper_platform_f_max);
        assert_eq!(table.len(), 3);
        for (row, &f) in table.iter().zip(&freqs) {
            assert_eq!(*row, s.table_row_serial(f, paper_platform_f_max));
        }
        assert!(s.table(&[], paper_platform_f_max).is_empty());
    }

    #[test]
    fn platform_cache_dedupes_bisection_queries() {
        let s = cell_solver();
        let before = paper_platform_cache_stats();
        let _ = s.table_row_serial(1.96e6, paper_platform_f_max);
        let mid = paper_platform_cache_stats();
        let _ = s.table_row_serial(1.96e6, paper_platform_f_max);
        let after = paper_platform_cache_stats();
        // Counters are process-global and other tests may query the same
        // model concurrently, so only additive lower bounds are safe here
        // (exact dedup semantics are proven by ntc-memcalc's cache tests).
        let first_pass = (mid.hits - before.hits) + (mid.misses - before.misses);
        assert!(first_pass >= 240, "3 schemes × 80+ evals, got {first_pass}");
        // The bisection midpoints depend only on the frequency, so the
        // second and third schemes already run from cache — as does the
        // whole second pass: at least ~240 of its evals must be hits.
        assert!(
            after.hits - mid.hits >= 240,
            "second pass should be served from cache, {} hits",
            after.hits - mid.hits
        );
    }

    #[test]
    fn platform_anchor_matches_paper() {
        // 290 kHz at 0.33 V…
        assert!((paper_platform_f_max(0.33) / 290e3 - 1.0).abs() < 1e-9);
        // …1.96 MHz reachable at 0.44 V…
        assert!(paper_platform_f_max(0.44) >= 1.96e6);
        // …and 11 MHz reachable at 0.66 V (Figure 9's frequency).
        assert!(paper_platform_f_max(0.66) >= 11e6);
    }

    #[test]
    fn max_p_bit_ordering() {
        let s = cell_solver();
        let p0 = s.max_p_bit(Scheme::NoMitigation);
        let p2 = s.max_p_bit(Scheme::Secded);
        let p4 = s.max_p_bit(Scheme::Ocean);
        assert!(p0 < p2 && p2 < p4, "more correction tolerates more errors");
        // The anchors behind the reverse-engineered cell-based law.
        assert!((p2 / 4.79e-7 - 1.0).abs() < 0.02);
        assert!((p4 / 7.05e-5 - 1.0).abs() < 0.02);
    }

    #[test]
    fn grids() {
        assert_eq!(VoltageGrid::Exact.quantize(0.4321), 0.4321);
        assert_eq!(VoltageGrid::PaperGrid.quantize(0.78), 0.77);
        assert_eq!(VoltageGrid::PaperGrid.quantize(0.8485), 0.88);
        assert_eq!(VoltageGrid::CeilStep(50).quantize(0.401), 0.45);
        assert_eq!(VoltageGrid::CeilStep(50).quantize(0.45), 0.45);
    }

    #[test]
    fn ceil_grid_never_violates_budget() {
        let s = FitSolver::new(AccessLaw::cell_based_40nm(), 1e-15)
            .with_grid(VoltageGrid::CeilStep(10));
        for scheme in Scheme::ALL {
            let v = s.min_voltage(scheme);
            let w = WordErrorModel::new(scheme.word_bits());
            let p = s.law().p_bit(v);
            assert!(
                w.p_word_failure(scheme.correctable_bits(), p) <= 1e-15 * (1.0 + 1e-9),
                "{scheme}: budget violated at {v}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "FIT target")]
    fn rejects_bad_target() {
        FitSolver::new(AccessLaw::cell_based_40nm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn rejects_impossible_frequency() {
        cell_solver().solve(Scheme::Secded, 1e12, paper_platform_f_max);
    }

    #[test]
    fn displays() {
        assert_eq!(Scheme::Ocean.to_string(), "OCEAN");
        assert!(!cell_solver().to_string().is_empty());
    }
}
