//! Typed experiment artifacts with paper anchors.
//!
//! Every reproduction in this workspace produces an [`Artifact`]: a named
//! bundle of [`Table`]s (named, united columns), [`Series`] (x/y sweeps)
//! and [`Scalar`]s. A scalar may carry a [`PaperRef`] — the value the paper
//! publishes for that quantity plus a tolerance [`Band`] — which turns the
//! artifact into a machine-checkable record: [`Artifact::checks`] yields
//! every anchored quantity and [`Artifact::passed`] tells whether the
//! reproduction currently sits inside every band. The `repro` CLI, the
//! paper-number tests and the figure benches all consume the same
//! artifacts, so each published anchor lives in exactly one place (the
//! experiment that measures it).
//!
//! Artifacts serialize to JSON through the deterministic writer in
//! [`json`]: key order is fixed by construction and numbers are printed
//! with Rust's shortest round-trip formatting, so two runs that compute
//! bit-equal values emit byte-identical documents regardless of thread
//! count. [`Artifact::from_json`] parses them back losslessly.
//!
//! The vendored `serde` stand-in provides marker-trait derives only (see
//! `vendor/serde`), so the real byte format lives here; the serde derives
//! are kept so the types keep satisfying the workspace's C-SERDE bound
//! when the `serde` feature is on.

use std::fmt;

pub mod diff;
pub mod json;

use json::{JsonError, JsonValue};

/// Tolerance band of a paper anchor.
///
/// `Abs`, `Rel` and the one-sided/two-sided range variants express the
/// different kinds of agreement the reproduction targets: exact grid
/// voltages (`Abs(0.0)`), calibrated model constants (`Rel(0.02)`), and
/// qualitative shape claims where the paper quotes a headline value but
/// the model family only supports a band (`Range`, `AtLeast`, `AtMost` on
/// the *measured* value).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Band {
    /// Measured must lie within ± the tolerance of the paper value.
    Abs(f64),
    /// Measured must lie within ± the fraction of the paper value.
    Rel(f64),
    /// Measured must lie in `[lo, hi]` (absolute bounds).
    Range(f64, f64),
    /// Measured must be at least the bound.
    AtLeast(f64),
    /// Measured must be at most the bound.
    AtMost(f64),
}

impl Band {
    /// Whether `measured` satisfies the band around `paper`.
    pub fn admits(&self, paper: f64, measured: f64) -> bool {
        match *self {
            Band::Abs(tol) => (measured - paper).abs() <= tol,
            Band::Rel(tol) => (measured - paper).abs() <= tol * paper.abs(),
            Band::Range(lo, hi) => measured >= lo && measured <= hi,
            Band::AtLeast(lo) => measured >= lo,
            Band::AtMost(hi) => measured <= hi,
        }
    }

    /// The admissible interval `[lo, hi]` around `paper`; one-sided
    /// bands return ±∞ on their open side.
    pub fn bounds(&self, paper: f64) -> (f64, f64) {
        match *self {
            Band::Abs(tol) => (paper - tol, paper + tol),
            Band::Rel(tol) => {
                let half = tol * paper.abs();
                (paper - half, paper + half)
            }
            Band::Range(lo, hi) => (lo, hi),
            Band::AtLeast(lo) => (lo, f64::INFINITY),
            Band::AtMost(hi) => (f64::NEG_INFINITY, hi),
        }
    }
}

impl fmt::Display for Band {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Band::Abs(tol) => write!(f, "±{tol}"),
            Band::Rel(tol) => write!(f, "±{}%", tol * 100.0),
            Band::Range(lo, hi) => write!(f, "in [{lo}, {hi}]"),
            Band::AtLeast(lo) => write!(f, "≥ {lo}"),
            Band::AtMost(hi) => write!(f, "≤ {hi}"),
        }
    }
}

/// A published paper value with its acceptance band.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PaperRef {
    /// The value the paper publishes (or implies) for this quantity.
    pub paper: f64,
    /// The band the measured value must land in.
    pub band: Band,
}

impl PaperRef {
    /// Anchor that must match the paper value within an absolute tolerance.
    pub fn abs(paper: f64, tol: f64) -> Self {
        Self { paper, band: Band::Abs(tol) }
    }

    /// Anchor that must match the paper value within a relative tolerance.
    pub fn rel(paper: f64, tol: f64) -> Self {
        Self { paper, band: Band::Rel(tol) }
    }

    /// Anchor that must match the paper value exactly (bit-level: the
    /// quantity is constructed from the same constant the paper quotes).
    pub fn exact(paper: f64) -> Self {
        Self::abs(paper, 0.0)
    }

    /// Anchor whose measured value must land in `[lo, hi]` while the paper
    /// quotes `paper` as the headline.
    pub fn range(paper: f64, lo: f64, hi: f64) -> Self {
        Self { paper, band: Band::Range(lo, hi) }
    }

    /// Anchor whose measured value must be at least `lo`.
    pub fn at_least(paper: f64, lo: f64) -> Self {
        Self { paper, band: Band::AtLeast(lo) }
    }

    /// Anchor whose measured value must be at most `hi`.
    pub fn at_most(paper: f64, hi: f64) -> Self {
        Self { paper, band: Band::AtMost(hi) }
    }

    /// Whether `measured` satisfies this anchor.
    pub fn holds(&self, measured: f64) -> bool {
        self.band.admits(self.paper, measured)
    }
}

/// A single named quantity, optionally anchored to the paper.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Scalar {
    /// What the quantity is.
    pub label: String,
    /// Its unit (empty for dimensionless).
    pub unit: String,
    /// The measured value.
    pub value: f64,
    /// The paper anchor, if the paper publishes this quantity.
    pub paper: Option<PaperRef>,
}

/// A table column: name plus unit.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column unit (empty for text or dimensionless columns).
    pub unit: String,
}

impl Column {
    /// A column with a unit.
    pub fn new(name: &str, unit: &str) -> Self {
        Self { name: name.to_string(), unit: unit.to_string() }
    }

    /// A unit-less column.
    pub fn bare(name: &str) -> Self {
        Self::new(name, "")
    }
}

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Cell {
    /// A textual cell (row keys, labels).
    Text(String),
    /// A numeric cell in the column's unit.
    Num(f64),
}

impl Cell {
    /// Numeric value, if the cell is numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Cell::Num(v) => Some(*v),
            Cell::Text(_) => None,
        }
    }

    /// Text value, if the cell is textual.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Cell::Text(s) => Some(s),
            Cell::Num(_) => None,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(s) => f.write_str(s),
            Cell::Num(v) => write!(f, "{v}"),
        }
    }
}

/// A rectangular table with named, united columns.
///
/// Rows are looked up *by key*, never by position: [`Table::row_by_key`]
/// finds the row whose cell in a given column matches a text key, so
/// downstream consumers (savings lines, checks, renderers) cannot silently
/// misreport if row ordering changes.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Column headers.
    pub columns: Vec<Column>,
    /// Rows; every row has exactly `columns.len()` cells.
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// An empty table with the given columns.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    pub fn new(name: &str, columns: Vec<Column>) -> Self {
        assert!(!columns.is_empty(), "table needs at least one column");
        Self { name: name.to_string(), columns, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the column count.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width must match column count in table {}",
            self.name
        );
        self.rows.push(row);
    }

    /// Builder-style [`Table::push_row`].
    #[must_use]
    pub fn with_row(mut self, row: Vec<Cell>) -> Self {
        self.push_row(row);
        self
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The row whose `key_column` cell equals `key` (textual match).
    pub fn row_by_key(&self, key_column: &str, key: &str) -> Option<&[Cell]> {
        let ki = self.column_index(key_column)?;
        self.rows
            .iter()
            .find(|r| r[ki].as_text() == Some(key))
            .map(Vec::as_slice)
    }

    /// Numeric cell at (`key` row of `key_column`, `column`).
    pub fn num(&self, key_column: &str, key: &str, column: &str) -> Option<f64> {
        let ci = self.column_index(column)?;
        self.row_by_key(key_column, key)?[ci].as_num()
    }
}

/// A sampled x/y sweep (one curve of a figure).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Series {
    /// Curve label.
    pub label: String,
    /// x-axis name.
    pub x_name: String,
    /// x-axis unit.
    pub x_unit: String,
    /// y-axis name.
    pub y_name: String,
    /// y-axis unit.
    pub y_unit: String,
    /// The sampled points, in sweep order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// A new series over named/united axes.
    pub fn new(label: &str, x: (&str, &str), y: (&str, &str), points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.to_string(),
            x_name: x.0.to_string(),
            x_unit: x.1.to_string(),
            y_name: y.0.to_string(),
            y_unit: y.1.to_string(),
            points,
        }
    }
}

/// One item of an artifact.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Item {
    /// A table.
    Table(Table),
    /// A curve.
    Series(Series),
    /// A named quantity.
    Scalar(Scalar),
}

/// An anchored quantity extracted from an artifact, with its verdict.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Check {
    /// Which artifact the anchor came from.
    pub artifact: String,
    /// The anchored quantity.
    pub label: String,
    /// Its unit.
    pub unit: String,
    /// The measured value.
    pub measured: f64,
    /// The paper value and band.
    pub paper: PaperRef,
}

impl Check {
    /// Fraction of a band's width below which a passing anchor is
    /// reported as at-risk (see [`Check::at_risk`]).
    pub const AT_RISK_MARGIN: f64 = 0.10;

    /// Whether the measured value sits inside the band.
    pub fn passes(&self) -> bool {
        self.paper.holds(self.measured)
    }

    /// Signed distance from the measured value to the nearest band
    /// edge, normalized so "how close is this anchor to failing?" is
    /// comparable across anchors:
    ///
    /// * **Two-sided band** (`Abs`, `Rel`, `Range`): distance to the
    ///   nearer edge divided by band width. Inside the band the value
    ///   runs from `0` (on an edge) to `0.5` (dead center); outside it
    ///   is negative. A zero-width band (`PaperRef::exact`) has no
    ///   interior to normalize by: `+∞` on an exact match, `−∞` on a
    ///   miss.
    /// * **One-sided band** (`AtLeast`, `AtMost`): distance to the
    ///   bound divided by `max(|bound|, |measured|)` (relative
    ///   headroom; `0.0` when both are zero — sitting exactly on a
    ///   zero bound).
    ///
    /// The sign always agrees with [`Check::passes`]: negative iff the
    /// anchor misses (up to the `<=` edge convention, where the margin
    /// is `0` and the check passes).
    pub fn margin(&self) -> f64 {
        let (lo, hi) = self.paper.band.bounds(self.paper.paper);
        let m = self.measured;
        match (lo.is_finite(), hi.is_finite()) {
            (true, true) => {
                let width = hi - lo;
                if width == 0.0 {
                    if self.passes() {
                        f64::INFINITY
                    } else {
                        f64::NEG_INFINITY
                    }
                } else {
                    (m - lo).min(hi - m) / width
                }
            }
            (true, false) => one_sided_margin(m - lo, lo, m),
            (false, true) => one_sided_margin(hi - m, hi, m),
            (false, false) => f64::INFINITY, // unbounded band: cannot fail
        }
    }

    /// Whether this anchor passes but sits within
    /// [`Check::AT_RISK_MARGIN`] of its band edge — close enough that
    /// ordinary model drift could push it out.
    pub fn at_risk(&self) -> bool {
        let margin = self.margin();
        self.passes() && margin.is_finite() && margin < Self::AT_RISK_MARGIN
    }

    /// The margin formatted for tables: `+0.312` / `-0.044`, or `exact`
    /// for the infinite margins of zero-width bands.
    pub fn margin_display(&self) -> String {
        let m = self.margin();
        if m == f64::INFINITY {
            "exact".to_string()
        } else if m == f64::NEG_INFINITY {
            "exact-miss".to_string()
        } else {
            format!("{m:+.3}")
        }
    }
}

/// Normalized one-sided margin: `headroom` (signed distance into the
/// admissible side) over the larger magnitude of bound and measured.
fn one_sided_margin(headroom: f64, bound: f64, measured: f64) -> f64 {
    let scale = bound.abs().max(measured.abs());
    if scale == 0.0 {
        0.0
    } else {
        headroom / scale
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:<44} paper {:>10.4} {:<3} measured {:>10.4} {:<3} ({})  margin {:>10}  {}",
            self.artifact,
            self.label,
            self.paper.paper,
            self.unit,
            self.measured,
            self.unit,
            self.paper.band,
            self.margin_display(),
            if self.passes() {
                if self.at_risk() {
                    "ok (AT RISK)"
                } else {
                    "ok"
                }
            } else {
                "MISS"
            }
        )
    }
}

/// The structured result of one experiment.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Artifact {
    /// Registry id of the experiment that produced this artifact.
    pub id: String,
    /// Human title (figure/table caption).
    pub title: String,
    /// The tables, series and scalars, in presentation order.
    pub items: Vec<Item>,
}

impl Artifact {
    /// An empty artifact.
    pub fn new(id: &str, title: &str) -> Self {
        Self { id: id.to_string(), title: title.to_string(), items: Vec::new() }
    }

    /// Adds a table.
    #[must_use]
    pub fn with_table(mut self, table: Table) -> Self {
        self.items.push(Item::Table(table));
        self
    }

    /// Adds a series.
    #[must_use]
    pub fn with_series(mut self, series: Series) -> Self {
        self.items.push(Item::Series(series));
        self
    }

    /// Adds an unanchored scalar.
    #[must_use]
    pub fn with_scalar(mut self, label: &str, unit: &str, value: f64) -> Self {
        self.items.push(Item::Scalar(Scalar {
            label: label.to_string(),
            unit: unit.to_string(),
            value,
            paper: None,
        }));
        self
    }

    /// Adds a paper-anchored scalar.
    #[must_use]
    pub fn with_anchor(mut self, label: &str, unit: &str, value: f64, paper: PaperRef) -> Self {
        self.items.push(Item::Scalar(Scalar {
            label: label.to_string(),
            unit: unit.to_string(),
            value,
            paper: Some(paper),
        }));
        self
    }

    /// All tables, in order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.items.iter().filter_map(|i| match i {
            Item::Table(t) => Some(t),
            _ => None,
        })
    }

    /// All series, in order.
    pub fn series(&self) -> impl Iterator<Item = &Series> {
        self.items.iter().filter_map(|i| match i {
            Item::Series(s) => Some(s),
            _ => None,
        })
    }

    /// All scalars, in order.
    pub fn scalars(&self) -> impl Iterator<Item = &Scalar> {
        self.items.iter().filter_map(|i| match i {
            Item::Scalar(s) => Some(s),
            _ => None,
        })
    }

    /// The value of the scalar with the given label.
    pub fn scalar(&self, label: &str) -> Option<f64> {
        self.scalars().find(|s| s.label == label).map(|s| s.value)
    }

    /// The table with the given name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables().find(|t| t.name == name)
    }

    /// Every paper-anchored quantity with its verdict.
    pub fn checks(&self) -> Vec<Check> {
        self.scalars()
            .filter_map(|s| {
                s.paper.map(|paper| Check {
                    artifact: self.id.clone(),
                    label: s.label.clone(),
                    unit: s.unit.clone(),
                    measured: s.value,
                    paper,
                })
            })
            .collect()
    }

    /// Whether every anchor lands inside its band.
    pub fn passed(&self) -> bool {
        self.checks().iter().all(Check::passes)
    }

    /// The anchors currently outside their band.
    pub fn failures(&self) -> Vec<Check> {
        self.checks().into_iter().filter(|c| !c.passes()).collect()
    }

    /// Serializes the artifact to deterministic, pretty-printed JSON.
    ///
    /// Key order is fixed by construction, numbers use Rust's shortest
    /// round-trip formatting: equal in-memory artifacts always produce
    /// byte-identical documents.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.to_json_value().write_pretty(&mut s, 0);
        s.push('\n');
        s
    }

    /// The artifact as a [`JsonValue`] tree.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("id".into(), JsonValue::Str(self.id.clone())),
            ("title".into(), JsonValue::Str(self.title.clone())),
            (
                "items".into(),
                JsonValue::Arr(self.items.iter().map(item_to_json).collect()),
            ),
        ])
    }

    /// Parses an artifact back from [`Artifact::to_json`] output.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let v = json::parse(text)?;
        artifact_from_json(&v)
    }
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} — {} ({} items)", self.id, self.title, self.items.len())
    }
}

fn num(v: f64) -> JsonValue {
    JsonValue::num(v)
}

fn band_to_json(b: &Band) -> JsonValue {
    let (kind, fields) = match *b {
        Band::Abs(tol) => ("abs", vec![("tol".to_string(), num(tol))]),
        Band::Rel(tol) => ("rel", vec![("tol".to_string(), num(tol))]),
        Band::Range(lo, hi) => (
            "range",
            vec![("lo".to_string(), num(lo)), ("hi".to_string(), num(hi))],
        ),
        Band::AtLeast(lo) => ("at_least", vec![("lo".to_string(), num(lo))]),
        Band::AtMost(hi) => ("at_most", vec![("hi".to_string(), num(hi))]),
    };
    let mut obj = vec![("kind".to_string(), JsonValue::Str(kind.to_string()))];
    obj.extend(fields);
    JsonValue::Obj(obj)
}

fn band_from_json(v: &JsonValue) -> Result<Band, JsonError> {
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| JsonError::schema("band.kind"))?;
    let f = |k: &str| -> Result<f64, JsonError> {
        v.get(k)
            .and_then(JsonValue::as_num)
            .ok_or_else(|| JsonError::schema("band bound"))
    };
    Ok(match kind {
        "abs" => Band::Abs(f("tol")?),
        "rel" => Band::Rel(f("tol")?),
        "range" => Band::Range(f("lo")?, f("hi")?),
        "at_least" => Band::AtLeast(f("lo")?),
        "at_most" => Band::AtMost(f("hi")?),
        other => return Err(JsonError::schema_owned(format!("unknown band kind {other}"))),
    })
}

fn item_to_json(item: &Item) -> JsonValue {
    match item {
        Item::Scalar(s) => {
            let mut obj = vec![
                ("kind".to_string(), JsonValue::Str("scalar".into())),
                ("label".to_string(), JsonValue::Str(s.label.clone())),
                ("unit".to_string(), JsonValue::Str(s.unit.clone())),
                ("value".to_string(), num(s.value)),
            ];
            if let Some(p) = &s.paper {
                obj.push((
                    "paper".to_string(),
                    JsonValue::Obj(vec![
                        ("value".to_string(), num(p.paper)),
                        ("band".to_string(), band_to_json(&p.band)),
                    ]),
                ));
            }
            JsonValue::Obj(obj)
        }
        Item::Series(s) => JsonValue::Obj(vec![
            ("kind".to_string(), JsonValue::Str("series".into())),
            ("label".to_string(), JsonValue::Str(s.label.clone())),
            ("x_name".to_string(), JsonValue::Str(s.x_name.clone())),
            ("x_unit".to_string(), JsonValue::Str(s.x_unit.clone())),
            ("y_name".to_string(), JsonValue::Str(s.y_name.clone())),
            ("y_unit".to_string(), JsonValue::Str(s.y_unit.clone())),
            (
                "points".to_string(),
                JsonValue::Arr(
                    s.points
                        .iter()
                        .map(|&(x, y)| JsonValue::Arr(vec![num(x), num(y)]))
                        .collect(),
                ),
            ),
        ]),
        Item::Table(t) => JsonValue::Obj(vec![
            ("kind".to_string(), JsonValue::Str("table".into())),
            ("name".to_string(), JsonValue::Str(t.name.clone())),
            (
                "columns".to_string(),
                JsonValue::Arr(
                    t.columns
                        .iter()
                        .map(|c| {
                            JsonValue::Obj(vec![
                                ("name".to_string(), JsonValue::Str(c.name.clone())),
                                ("unit".to_string(), JsonValue::Str(c.unit.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "rows".to_string(),
                JsonValue::Arr(
                    t.rows()
                        .iter()
                        .map(|row| {
                            JsonValue::Arr(
                                row.iter()
                                    .map(|c| match c {
                                        Cell::Text(s) => JsonValue::Obj(vec![(
                                            "t".to_string(),
                                            JsonValue::Str(s.clone()),
                                        )]),
                                        Cell::Num(v) => JsonValue::Obj(vec![(
                                            "n".to_string(),
                                            num(*v),
                                        )]),
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                    ),
            ),
        ]),
    }
}

fn str_field(v: &JsonValue, key: &str) -> Result<String, JsonError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| JsonError::schema_owned(format!("missing string field {key}")))
}

fn item_from_json(v: &JsonValue) -> Result<Item, JsonError> {
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| JsonError::schema("item.kind"))?;
    match kind {
        "scalar" => {
            let paper = match v.get("paper") {
                None => None,
                Some(p) => Some(PaperRef {
                    paper: p
                        .get("value")
                        .and_then(JsonValue::as_num)
                        .ok_or_else(|| JsonError::schema("paper.value"))?,
                    band: band_from_json(
                        p.get("band").ok_or_else(|| JsonError::schema("paper.band"))?,
                    )?,
                }),
            };
            Ok(Item::Scalar(Scalar {
                label: str_field(v, "label")?,
                unit: str_field(v, "unit")?,
                value: v
                    .get("value")
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| JsonError::schema("scalar.value"))?,
                paper,
            }))
        }
        "series" => {
            let points = v
                .get("points")
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| JsonError::schema("series.points"))?
                .iter()
                .map(|p| {
                    let pair = p.as_arr().filter(|a| a.len() == 2);
                    match pair {
                        Some(a) => match (a[0].as_num(), a[1].as_num()) {
                            (Some(x), Some(y)) => Ok((x, y)),
                            _ => Err(JsonError::schema("series point")),
                        },
                        None => Err(JsonError::schema("series point")),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Item::Series(Series {
                label: str_field(v, "label")?,
                x_name: str_field(v, "x_name")?,
                x_unit: str_field(v, "x_unit")?,
                y_name: str_field(v, "y_name")?,
                y_unit: str_field(v, "y_unit")?,
                points,
            }))
        }
        "table" => {
            let columns = v
                .get("columns")
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| JsonError::schema("table.columns"))?
                .iter()
                .map(|c| {
                    Ok(Column {
                        name: str_field(c, "name")?,
                        unit: str_field(c, "unit")?,
                    })
                })
                .collect::<Result<Vec<_>, JsonError>>()?;
            let mut table = Table::new(&str_field(v, "name")?, columns);
            for row in v
                .get("rows")
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| JsonError::schema("table.rows"))?
            {
                let cells = row
                    .as_arr()
                    .ok_or_else(|| JsonError::schema("table row"))?
                    .iter()
                    .map(|c| {
                        if let Some(s) = c.get("t").and_then(JsonValue::as_str) {
                            Ok(Cell::Text(s.to_string()))
                        } else if let Some(n) = c.get("n").and_then(JsonValue::as_num) {
                            Ok(Cell::Num(n))
                        } else {
                            Err(JsonError::schema("table cell"))
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if cells.len() != table.columns.len() {
                    return Err(JsonError::schema("table row width"));
                }
                table.push_row(cells);
            }
            Ok(Item::Table(table))
        }
        other => Err(JsonError::schema_owned(format!("unknown item kind {other}"))),
    }
}

fn artifact_from_json(v: &JsonValue) -> Result<Artifact, JsonError> {
    let items = v
        .get("items")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| JsonError::schema("artifact.items"))?
        .iter()
        .map(item_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Artifact {
        id: str_field(v, "id")?,
        title: str_field(v, "title")?,
        items,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        Artifact::new("t", "sample")
            .with_table(
                Table::new(
                    "rows",
                    vec![Column::bare("policy"), Column::new("vdd", "V")],
                )
                .with_row(vec![Cell::Text("OCEAN".into()), Cell::Num(0.33)])
                .with_row(vec![Cell::Text("ECC (SECDED)".into()), Cell::Num(0.44)]),
            )
            .with_series(Series::new(
                "ber",
                ("VDD", "V"),
                ("BER", ""),
                vec![(0.3, 1e-3), (0.4, 1e-7)],
            ))
            .with_anchor("ocean vdd", "V", 0.33, PaperRef::exact(0.33))
            .with_scalar("free", "", 1.25)
    }

    #[test]
    fn band_semantics() {
        assert!(Band::Abs(0.01).admits(0.55, 0.559));
        assert!(!Band::Abs(0.01).admits(0.55, 0.561));
        assert!(Band::Rel(0.1).admits(10.0, 10.9));
        assert!(!Band::Rel(0.1).admits(10.0, 11.1));
        assert!(Band::Range(1.0, 2.0).admits(5.0, 1.5));
        assert!(Band::AtLeast(3.0).admits(0.0, 3.0));
        assert!(!Band::AtMost(3.0).admits(0.0, 3.1));
        assert!(PaperRef::exact(0.33).holds(0.33));
        assert!(!PaperRef::exact(0.33).holds(0.33 + 1e-12));
    }

    #[test]
    fn key_lookup_is_order_independent() {
        let a = sample();
        let t = a.table("rows").unwrap();
        assert_eq!(t.num("policy", "OCEAN", "vdd"), Some(0.33));
        assert_eq!(t.num("policy", "ECC (SECDED)", "vdd"), Some(0.44));
        assert_eq!(t.num("policy", "nope", "vdd"), None);
        assert_eq!(t.num("nope", "OCEAN", "vdd"), None);
    }

    #[test]
    fn checks_extract_only_anchored_scalars() {
        let a = sample();
        let checks = a.checks();
        assert_eq!(checks.len(), 1);
        assert!(checks[0].passes());
        assert!(a.passed());
        assert!(a.failures().is_empty());
        assert!(checks[0].to_string().contains("ok"));
    }

    #[test]
    fn failed_anchor_is_reported() {
        let a = Artifact::new("x", "x").with_anchor("v", "V", 0.5, PaperRef::abs(0.33, 0.01));
        assert!(!a.passed());
        assert_eq!(a.failures().len(), 1);
        assert!(a.failures()[0].to_string().contains("MISS"));
    }

    fn check_of(measured: f64, paper: PaperRef) -> Check {
        Check {
            artifact: "t".into(),
            label: "x".into(),
            unit: "".into(),
            measured,
            paper,
        }
    }

    #[test]
    fn band_bounds_cover_every_variant() {
        assert_eq!(Band::Abs(0.1).bounds(1.0), (0.9, 1.1));
        assert_eq!(Band::Rel(0.1).bounds(-2.0), (-2.2, -1.8));
        assert_eq!(Band::Range(1.0, 2.0).bounds(5.0), (1.0, 2.0));
        let (lo, hi) = Band::AtLeast(3.0).bounds(0.0);
        assert_eq!(lo, 3.0);
        assert!(hi.is_infinite());
        let (lo, hi) = Band::AtMost(3.0).bounds(0.0);
        assert!(lo.is_infinite() && lo < 0.0);
        assert_eq!(hi, 3.0);
    }

    #[test]
    fn margin_two_sided_semantics() {
        // Dead center of an Abs band: margin 0.5.
        let c = check_of(1.0, PaperRef::abs(1.0, 0.1));
        assert!((c.margin() - 0.5).abs() < 1e-12);
        assert!(!c.at_risk());
        // 90% of the way to the edge: margin 0.05 -> at risk.
        let c = check_of(1.09, PaperRef::abs(1.0, 0.1));
        assert!((c.margin() - 0.05).abs() < 1e-9);
        assert!(c.passes() && c.at_risk());
        // Outside: negative margin, agrees with passes().
        let c = check_of(1.2, PaperRef::abs(1.0, 0.1));
        assert!(c.margin() < 0.0);
        assert!(!c.passes() && !c.at_risk());
        // Range band uses its own edges, not the paper headline.
        let c = check_of(1.25, PaperRef::range(9.9, 1.0, 2.0));
        assert!((c.margin() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn margin_exact_band_is_infinite() {
        let hit = check_of(0.33, PaperRef::exact(0.33));
        assert_eq!(hit.margin(), f64::INFINITY);
        assert!(!hit.at_risk(), "exact hit cannot drift gradually");
        assert_eq!(hit.margin_display(), "exact");
        let miss = check_of(0.34, PaperRef::exact(0.33));
        assert_eq!(miss.margin(), f64::NEG_INFINITY);
        assert_eq!(miss.margin_display(), "exact-miss");
    }

    #[test]
    fn margin_one_sided_semantics() {
        // 20% headroom above an AtLeast bound.
        let c = check_of(1.0, PaperRef::at_least(1.0, 0.8));
        assert!((c.margin() - 0.2).abs() < 1e-12);
        // Just under an AtMost bound: tiny positive margin -> at risk.
        let c = check_of(0.99, PaperRef::at_most(1.0, 1.0));
        assert!(c.margin() > 0.0 && c.margin() < 0.10);
        assert!(c.at_risk());
        // Violation: negative.
        let c = check_of(1.5, PaperRef::at_most(1.0, 1.0));
        assert!(c.margin() < 0.0);
        // Degenerate zero-on-zero bound.
        let c = check_of(0.0, PaperRef::at_least(0.0, 0.0));
        assert_eq!(c.margin(), 0.0);
        assert!(c.passes());
    }

    #[test]
    fn margin_sign_always_agrees_with_passes() {
        let anchors = [
            PaperRef::abs(1.0, 0.1),
            PaperRef::rel(1.0, 0.05),
            PaperRef::range(1.0, 0.8, 1.3),
            PaperRef::at_least(1.0, 0.9),
            PaperRef::at_most(1.0, 1.1),
        ];
        for paper in anchors {
            for i in 0..200 {
                let measured = 0.5 + f64::from(i) * 0.005;
                let c = check_of(measured, paper);
                if c.margin() > 0.0 {
                    assert!(c.passes(), "{paper:?} at {measured}");
                }
                if c.margin() < 0.0 {
                    assert!(!c.passes(), "{paper:?} at {measured}");
                }
            }
        }
    }

    #[test]
    fn at_risk_display_marker() {
        let c = check_of(1.09, PaperRef::abs(1.0, 0.1));
        assert!(c.to_string().contains("AT RISK"));
        let ok = check_of(1.0, PaperRef::abs(1.0, 0.1));
        assert!(!ok.to_string().contains("AT RISK"));
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let a = sample();
        let text = a.to_json();
        let back = Artifact::from_json(&text).expect("parses");
        assert_eq!(a, back);
        // And byte-stable: re-serializing gives the identical document.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Artifact::from_json("not json").is_err());
        assert!(Artifact::from_json("{\"id\": \"x\"}").is_err());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", vec![Column::bare("a"), Column::bare("b")]);
        t.push_row(vec![Cell::Num(1.0)]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Band::Abs(0.01).to_string(), "±0.01");
        assert_eq!(Band::Rel(0.1).to_string(), "±10%");
        assert_eq!(Band::Range(1.0, 2.0).to_string(), "in [1, 2]");
        assert!(sample().to_string().contains("sample"));
        assert_eq!(Cell::Text("x".into()).to_string(), "x");
        assert_eq!(Cell::Num(0.5).to_string(), "0.5");
    }
}
