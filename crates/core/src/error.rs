//! `NtcError` — the workspace-level error type of the public facade.
//!
//! Library layers below this crate keep their own narrow error enums
//! (`LawError`, `JsonError`, …); this type is what crosses the public
//! API boundary: the `repro` CLI renders it to stderr, and `ntc-serve`
//! maps it to structured JSON error responses. Every variant carries a
//! stable machine-readable [`NtcError::kind`] (snake_case, never
//! renamed once published) next to the human-readable `Display` text,
//! so programmatic consumers match on the kind and humans read the
//! message.

use std::fmt;

use crate::artifact::json::JsonError;
use crate::repro::ExperimentId;

/// The error type of the `ntc` public facade.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NtcError {
    /// An experiment id did not resolve against the registry. The
    /// `Display` text enumerates every valid id so a typo is
    /// self-correcting at the call site (CLI stderr or HTTP body).
    UnknownExperiment {
        /// The id that failed to resolve.
        id: String,
    },
    /// A request or call carried a parameter outside its domain
    /// (negative tolerance, FIT target outside `(0, 1)`, …).
    InvalidParam {
        /// The offending parameter name.
        param: String,
        /// What was wrong with it.
        message: String,
    },
    /// A required field was absent from a structured request.
    MissingField {
        /// The absent field's name.
        field: String,
    },
    /// A request body failed to parse as JSON.
    MalformedJson {
        /// Parser message.
        message: String,
        /// Byte offset where parsing stopped.
        offset: usize,
    },
    /// A request named an operation the facade does not provide.
    Unsupported {
        /// Description of the unsupported operation.
        what: String,
    },
    /// An I/O failure, with the operation that failed.
    Io {
        /// What was being attempted.
        context: String,
        /// The OS-level message.
        message: String,
    },
}

impl NtcError {
    /// Stable machine-readable discriminant. These strings are part of
    /// the public API (JSON error payloads key off them): they are
    /// never renamed once published.
    pub fn kind(&self) -> &'static str {
        match self {
            NtcError::UnknownExperiment { .. } => "unknown_experiment",
            NtcError::InvalidParam { .. } => "invalid_param",
            NtcError::MissingField { .. } => "missing_field",
            NtcError::MalformedJson { .. } => "malformed_json",
            NtcError::Unsupported { .. } => "unsupported",
            NtcError::Io { .. } => "io",
        }
    }

    /// Shorthand for an [`NtcError::InvalidParam`].
    pub fn invalid_param(param: &str, message: impl Into<String>) -> Self {
        NtcError::InvalidParam { param: param.to_string(), message: message.into() }
    }

    /// Shorthand for an [`NtcError::MissingField`].
    pub fn missing_field(field: &str) -> Self {
        NtcError::MissingField { field: field.to_string() }
    }
}

impl fmt::Display for NtcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NtcError::UnknownExperiment { id } => {
                write!(f, "unknown experiment `{id}` — valid ids: ")?;
                for (i, valid) in ExperimentId::ALL.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{valid}")?;
                }
                Ok(())
            }
            NtcError::InvalidParam { param, message } => {
                write!(f, "invalid parameter `{param}`: {message}")
            }
            NtcError::MissingField { field } => write!(f, "missing field `{field}`"),
            NtcError::MalformedJson { message, offset } => {
                write!(f, "malformed JSON: {message} at byte {offset}")
            }
            NtcError::Unsupported { what } => write!(f, "unsupported: {what}"),
            NtcError::Io { context, message } => write!(f, "{context}: {message}"),
        }
    }
}

impl std::error::Error for NtcError {}

impl From<JsonError> for NtcError {
    fn from(e: JsonError) -> Self {
        NtcError::MalformedJson { message: e.message, offset: e.offset }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_lists_every_valid_id() {
        let text = NtcError::UnknownExperiment { id: "fig2".into() }.to_string();
        assert!(text.contains("`fig2`"));
        for id in ExperimentId::ALL {
            assert!(text.contains(id.as_str()), "{id} missing from {text}");
        }
    }

    #[test]
    fn kinds_are_stable_snake_case() {
        for (e, kind) in [
            (NtcError::UnknownExperiment { id: "x".into() }, "unknown_experiment"),
            (NtcError::invalid_param("vdd", "must be finite"), "invalid_param"),
            (NtcError::missing_field("kind"), "missing_field"),
            (NtcError::MalformedJson { message: "x".into(), offset: 3 }, "malformed_json"),
            (NtcError::Unsupported { what: "x".into() }, "unsupported"),
            (NtcError::Io { context: "bind".into(), message: "denied".into() }, "io"),
        ] {
            assert_eq!(e.kind(), kind);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn json_error_converts_with_offset() {
        let e: NtcError = JsonError { message: "expected , or }".into(), offset: 17 }.into();
        assert_eq!(e.kind(), "malformed_json");
        assert!(e.to_string().contains("byte 17"));
    }
}
