//! `ntc` — single-supply near-threshold memory toolkit.
//!
//! This is the top-level crate of the reproduction of *"Resolving the
//! Memory Bottleneck for Single Supply Near-Threshold Computing"*
//! (Gemmeke et al., DATE 2014). It ties the substrates together into the
//! paper's actual experiments:
//!
//! * [`fit`] — the voltage/FIT solver behind Table 2: given a memory
//!   style's access-failure law, a mitigation scheme's correction
//!   capability, a FIT budget and a performance requirement, find the
//!   minimum supply voltage (with the paper's 110 mV voltage grid).
//! * [`experiments`] — the full-system mitigation study of Figures 8/9:
//!   run the 1K-point FFT on the simulated platform under No-mitigation /
//!   SECDED / OCEAN at the solved voltages and report the per-module power
//!   breakdown, plus the headline savings ratios of the abstract.
//! * [`calculator`] — the Section IV "memory calculator": figures of
//!   merit (energy, leakage, timing, error rate, FIT-capable schemes)
//!   over a wide range of input parameters.
//! * [`standby`] — the Section II standby argument quantified: minimal
//!   retention voltage per mitigation scheme and duty-cycled power.
//! * [`parallel`] — the Section V parallelism argument: trading cores for
//!   frequency to exploit the quadratic voltage gains.
//! * [`monitor`] — the run-time monitoring and control loop of
//!   Section IV: an ageing model drifts the minimal access voltage over a
//!   product's lifetime, and a feedback controller tracks it through the
//!   observed correction rate, adjusting the supply "run-time knob".
//!
//! # Quickstart
//!
//! ```
//! use ntc::fit::{FitSolver, Scheme, VoltageGrid};
//! use ntc_sram::AccessLaw;
//!
//! // The paper's cell-based macro at FIT ≤ 1e-15 per transaction:
//! let solver = FitSolver::new(AccessLaw::cell_based_40nm(), 1e-15)
//!     .with_grid(VoltageGrid::PaperGrid);
//! assert_eq!(solver.min_voltage(Scheme::NoMitigation), 0.55); // Table 2
//! assert_eq!(solver.min_voltage(Scheme::Secded), 0.44);
//! assert_eq!(solver.min_voltage(Scheme::Ocean), 0.33);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod artifact;
pub mod calculator;
pub mod error;
pub mod experiments;
pub mod fit;
pub mod journal;
pub mod repro;
pub mod monitor;
pub mod optimize;
pub mod parallel;
pub mod standby;
pub mod store;

pub use calculator::MemoryCalculator;
pub use error::NtcError;
pub use experiments::{ExperimentResult, MitigationPolicy, Workload};
pub use fit::{FitSolver, Scheme, VoltageGrid};
pub use monitor::{AgingModel, VoltageController};
pub use parallel::ParallelPlan;
pub use standby::StandbyAnalysis;

/// The typed public facade in one import.
///
/// Everything a consumer needs to enumerate, run and check
/// reproductions — and to classify failures — without reaching into
/// submodules:
///
/// ```
/// use ntc::prelude::*;
///
/// let ctx = RunCtx::builder().quick().build();
/// let artifact = find_id(ExperimentId::Fig6).run(&ctx);
/// assert!(artifact.passed());
/// ```
pub mod prelude {
    pub use crate::artifact::{Artifact, Band, Check, PaperRef, Scalar, Series, Table};
    pub use crate::error::NtcError;
    pub use crate::fit::{FitSolver, Scheme, SolvedVoltage, VoltageGrid};
    pub use crate::repro::{
        experiment_ids, find_id, registry, run_all, run_one, Experiment, ExperimentId, RunCtx,
        RunCtxBuilder, Scale,
    };
}
