//! The "memory calculator" of Section IV: one object that "estimates key
//! figures of merit over a wide range of input parameters".
//!
//! [`MemoryCalculator`] wraps a calibrated macro together with the FIT
//! machinery so a designer can ask, in one call, everything the paper's
//! flow needs about an operating point: energy, leakage, timing, error
//! rate, and which mitigation schemes keep the FIT budget — and sweep
//! those answers across voltage, organization, or style.

use crate::fit::Scheme;
use ntc_memcalc::instance::{MemoryMacro, MemoryOrganization};
use ntc_sram::styles::CellStyle;
use ntc_sram::words::WordErrorModel;
use ntc_tech::card::TechnologyCard;
use std::fmt;

/// Key figures of merit of one memory instance at one supply point.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FiguresOfMerit {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Dynamic energy per access, joules.
    pub access_energy_j: f64,
    /// Active leakage power, watts.
    pub leakage_w: f64,
    /// Data-retention (standby) power, watts.
    pub retention_w: f64,
    /// Maximum operating frequency, hertz.
    pub f_max_hz: f64,
    /// Macro area, mm².
    pub area_mm2: f64,
    /// Per-bit access error probability at this supply.
    pub p_bit: f64,
    /// Schemes whose word-failure probability stays within the FIT budget
    /// at this supply.
    pub fit_capable: Vec<Scheme>,
}

impl fmt::Display for FiguresOfMerit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} V: {:.3} pJ/access, {:.2} µW leak, {:.3} MHz, p_bit {:.2e}, ok: {}",
            self.vdd,
            self.access_energy_j * 1e12,
            self.leakage_w * 1e6,
            self.f_max_hz / 1e6,
            self.p_bit,
            self.fit_capable
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(" / ")
        )
    }
}

/// The memory calculator.
///
/// # Example
///
/// ```
/// use ntc::calculator::MemoryCalculator;
/// use ntc_sram::CellStyle;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let calc = MemoryCalculator::cell_based_reference();
/// let fom = calc.figures_at(0.44);
/// // At the paper's SECDED operating point, ECC (and OCEAN) hold the
/// // budget but unprotected operation does not.
/// assert!(fom.fit_capable.iter().any(|s| s.to_string().contains("OCEAN")));
/// assert_eq!(calc.style(), CellStyle::CellBasedAoi);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemoryCalculator {
    inner: MemoryMacro,
    fit_target: f64,
}

impl MemoryCalculator {
    /// Wraps a macro with the paper's default FIT budget (1e-15).
    pub fn new(inner: MemoryMacro) -> Self {
        Self {
            inner,
            fit_target: 1e-15,
        }
    }

    /// The paper's reference instance: 1k × 32 b cell-based AOI on 40 nm.
    pub fn cell_based_reference() -> Self {
        Self::new(MemoryMacro::new(
            CellStyle::CellBasedAoi,
            MemoryOrganization::reference_1kx32(),
            ntc_tech::card::n40lp(),
        ))
    }

    /// The commercial 1k × 32 b instance.
    pub fn commercial_reference() -> Self {
        Self::new(MemoryMacro::new(
            CellStyle::Commercial6T,
            MemoryOrganization::reference_1kx32(),
            ntc_tech::card::n40lp(),
        ))
    }

    /// Overrides the FIT budget.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target < 1`.
    #[must_use]
    pub fn with_fit_target(mut self, target: f64) -> Self {
        assert!(
            target > 0.0 && target < 1.0,
            "FIT target must be in (0, 1), got {target}"
        );
        self.fit_target = target;
        self
    }

    /// The wrapped macro.
    pub fn macro_model(&self) -> &MemoryMacro {
        &self.inner
    }

    /// The bit-cell style.
    pub fn style(&self) -> CellStyle {
        self.inner.style()
    }

    /// Figures of merit at one supply point.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not finite and positive (delegated to the macro).
    pub fn figures_at(&self, vdd: f64) -> FiguresOfMerit {
        let p_bit = self.inner.access_law().p_bit(vdd);
        let fit_capable = Scheme::ALL
            .into_iter()
            .filter(|s| {
                WordErrorModel::new(s.word_bits()).p_word_failure(s.correctable_bits(), p_bit)
                    <= self.fit_target
            })
            .collect();
        FiguresOfMerit {
            vdd,
            access_energy_j: self.inner.access_energy(vdd),
            leakage_w: self.inner.leakage_power(vdd),
            retention_w: self.inner.retention_power(vdd),
            f_max_hz: self.inner.f_max(vdd),
            area_mm2: self.inner.area_mm2(),
            p_bit,
            fit_capable,
        }
    }

    /// Sweeps [`figures_at`](Self::figures_at) over a voltage grid.
    pub fn sweep(&self, voltages: &[f64]) -> Vec<FiguresOfMerit> {
        voltages.iter().map(|&v| self.figures_at(v)).collect()
    }

    /// The lowest grid voltage at which `scheme` holds the FIT budget, or
    /// `None` if none on the grid does.
    pub fn min_capable_voltage(&self, scheme: Scheme, voltages: &[f64]) -> Option<f64> {
        voltages
            .iter()
            .copied()
            .filter(|&v| self.figures_at(v).fit_capable.contains(&scheme))
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Energy-per-access improvement of running at `v_low` instead of
    /// `v_high` (a ratio > 1 means savings).
    ///
    /// # Panics
    ///
    /// Panics if either voltage is invalid (delegated).
    pub fn energy_gain(&self, v_high: f64, v_low: f64) -> f64 {
        self.inner.access_energy(v_high) / self.inner.access_energy(v_low)
    }
}

impl fmt::Display for MemoryCalculator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory calculator for {} (FIT ≤ {:.1e})",
            self.inner, self.fit_target
        )
    }
}

/// Builds a calculator for an arbitrary style/organization/card triple.
///
/// # Errors
///
/// Returns the organization error if the dimensions are invalid.
pub fn calculator_for(
    style: CellStyle,
    words: u32,
    bits_per_word: u32,
    card: TechnologyCard,
) -> Result<MemoryCalculator, ntc_memcalc::instance::MacroError> {
    let org = MemoryOrganization::new(words, bits_per_word)?;
    Ok(MemoryCalculator::new(MemoryMacro::new(style, org, card)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_stats::sweep::voltage_grid;

    #[test]
    fn figures_are_consistent_with_table1() {
        let calc = MemoryCalculator::cell_based_reference();
        let fom = calc.figures_at(1.1);
        assert!((fom.access_energy_j / 1.4e-12 - 1.0).abs() < 1e-9);
        assert!((fom.leakage_w / 5.9e-6 - 1.0).abs() < 1e-9);
        assert!((fom.f_max_hz / 96e6 - 1.0).abs() < 1e-9);
        // Error-free at nominal: every scheme capable.
        assert_eq!(fom.fit_capable.len(), 3);
        assert_eq!(fom.p_bit, 0.0);
    }

    #[test]
    fn capability_shrinks_with_voltage() {
        let calc = MemoryCalculator::cell_based_reference();
        let n = |v: f64| calc.figures_at(v).fit_capable.len();
        assert_eq!(n(0.60), 3, "above the knee everyone works");
        assert_eq!(n(0.50), 2, "no-mitigation drops first");
        assert_eq!(n(0.40), 1, "then SECDED");
        assert_eq!(n(0.30), 0, "below 0.33 V even OCEAN fails");
    }

    #[test]
    fn min_capable_voltage_matches_solver() {
        let calc = MemoryCalculator::cell_based_reference();
        let grid = voltage_grid(0.30, 0.60, 5);
        let v = calc.min_capable_voltage(Scheme::Ocean, &grid).unwrap();
        assert!((v - 0.33).abs() < 0.011, "grid-resolution match, got {v}");
        assert_eq!(
            calc.min_capable_voltage(Scheme::NoMitigation, &voltage_grid(0.30, 0.40, 10)),
            None,
            "no grid point below the knee works unprotected"
        );
    }

    #[test]
    fn energy_gain_quadratic() {
        let calc = MemoryCalculator::cell_based_reference();
        let g = calc.energy_gain(0.66, 0.33);
        assert!((g - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_and_display() {
        let calc = MemoryCalculator::commercial_reference().with_fit_target(1e-9);
        let rows = calc.sweep(&voltage_grid(0.60, 0.90, 50));
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().all(|r| !r.to_string().is_empty()));
        assert!(!calc.to_string().is_empty());
    }

    #[test]
    fn custom_builder() {
        let calc = calculator_for(
            CellStyle::CellBasedAoi,
            4096,
            32,
            ntc_tech::card::n40lp(),
        )
        .unwrap();
        // Deeper array, more leakage than the 1k reference.
        let small = MemoryCalculator::cell_based_reference();
        assert!(calc.figures_at(1.1).leakage_w > small.figures_at(1.1).leakage_w);
    }

    #[test]
    #[should_panic(expected = "FIT target")]
    fn rejects_bad_target() {
        let _ = MemoryCalculator::cell_based_reference().with_fit_target(0.0);
    }
}
