//! Run-time monitoring and voltage control over a product's lifetime.
//!
//! Section IV of the paper observes that "the minimal voltage will change
//! over lifetime of a product requiring a monitoring and control loop
//! that adjusts run-time knobs such as the supply voltage level". This
//! module provides both halves:
//!
//! * [`AgingModel`] — drifts the access-failure knee upward over time
//!   (√t-shaped, NBTI-like), so a voltage that was comfortably error-free
//!   at time zero starts producing correctable errors years in;
//! * [`VoltageController`] — a feedback loop that watches the *corrected*
//!   error rate reported by the mitigation hardware (ECC corrections /
//!   OCEAN recoveries are free telemetry) and nudges the supply to keep
//!   that rate inside a target band — tracking the drift with millivolts
//!   instead of the worst-case lifetime guardband a static design needs.

use ntc_sram::canary::CanaryArray;
use ntc_sram::failure::AccessLaw;
use ntc_stats::rng::Source;
use std::fmt;

/// Lifetime drift of the minimal access voltage.
///
/// # Example
///
/// ```
/// use ntc::monitor::AgingModel;
/// use ntc_sram::AccessLaw;
///
/// let aging = AgingModel::new(AccessLaw::cell_based_40nm(), 0.04, 10.0);
/// let fresh = aging.law_at(0.0);
/// let old = aging.law_at(10.0);
/// assert!((old.v0() - fresh.v0() - 0.04).abs() < 1e-12, "full drift at EOL");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AgingModel {
    fresh: AccessLaw,
    eol_drift_v: f64,
    lifetime_years: f64,
}

impl AgingModel {
    /// Creates a model: the knee shifts by `eol_drift_v` volts over
    /// `lifetime_years`, following a √t law.
    ///
    /// # Panics
    ///
    /// Panics if the drift is negative or lifetime is not positive.
    pub fn new(fresh: AccessLaw, eol_drift_v: f64, lifetime_years: f64) -> Self {
        assert!(
            eol_drift_v.is_finite() && eol_drift_v >= 0.0,
            "drift must be non-negative"
        );
        assert!(
            lifetime_years.is_finite() && lifetime_years > 0.0,
            "lifetime must be positive"
        );
        Self {
            fresh,
            eol_drift_v,
            lifetime_years,
        }
    }

    /// The failure law at age `years` (clamped to the lifetime).
    pub fn law_at(&self, years: f64) -> AccessLaw {
        let t = (years / self.lifetime_years).clamp(0.0, 1.0);
        self.fresh.with_knee_shift(self.eol_drift_v * t.sqrt())
    }

    /// The static worst-case guardband a design without monitoring must
    /// carry: the full end-of-life drift.
    pub fn static_guardband_v(&self) -> f64 {
        self.eol_drift_v
    }
}

/// One sample of a lifetime control trace.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ControlPoint {
    /// Age in years.
    pub years: f64,
    /// Supply the controller selected for this window.
    pub vdd: f64,
    /// Corrected-error rate observed in the window (per access).
    pub observed_rate: f64,
}

/// The correction-rate-driven supply controller.
///
/// # Example
///
/// ```
/// use ntc::monitor::VoltageController;
///
/// let mut ctl = VoltageController::new(0.46, (1e-7, 1e-5), 0.005, (0.33, 1.1));
/// // A window with far too many corrections pushes the supply up…
/// ctl.observe(500, 1_000_000);
/// assert!(ctl.vdd() > 0.46);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageController {
    vdd: f64,
    band: (f64, f64),
    step_v: f64,
    bounds: (f64, f64),
    adjustments: u64,
}

impl VoltageController {
    /// Creates a controller starting at `vdd`, keeping the per-access
    /// correction rate inside `band`, moving in `step_v` steps within
    /// `bounds`.
    ///
    /// # Panics
    ///
    /// Panics on an empty band, non-positive step, or inverted bounds.
    pub fn new(vdd: f64, band: (f64, f64), step_v: f64, bounds: (f64, f64)) -> Self {
        assert!(band.0 < band.1, "band must be a nonempty interval");
        assert!(step_v > 0.0 && step_v.is_finite(), "step must be positive");
        assert!(bounds.0 < bounds.1, "bounds must be ordered");
        assert!(
            (bounds.0..=bounds.1).contains(&vdd),
            "start voltage outside bounds"
        );
        Self {
            vdd,
            band,
            step_v,
            bounds,
            adjustments: 0,
        }
    }

    /// Current supply setting, volts.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Number of supply adjustments made so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Feeds one monitoring window: `corrections` corrected errors over
    /// `accesses` accesses. Returns the (possibly adjusted) supply.
    ///
    /// # Panics
    ///
    /// Panics if `accesses == 0`.
    pub fn observe(&mut self, corrections: u64, accesses: u64) -> f64 {
        assert!(accesses > 0, "window must contain accesses");
        let rate = corrections as f64 / accesses as f64;
        if rate > self.band.1 {
            let next = (self.vdd + self.step_v).min(self.bounds.1);
            if next != self.vdd {
                self.vdd = next;
                self.adjustments += 1;
            }
        } else if rate < self.band.0 {
            let next = (self.vdd - self.step_v).max(self.bounds.0);
            if next != self.vdd {
                self.vdd = next;
                self.adjustments += 1;
            }
        }
        self.vdd
    }
}

impl fmt::Display for VoltageController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "controller @ {:.3} V (band {:.1e}..{:.1e}, {} adjustments)",
            self.vdd, self.band.0, self.band.1, self.adjustments
        )
    }
}

/// Simulates a monitored product lifetime: every window the memory ages a
/// little, the mitigation hardware reports its correction count (sampled
/// from the aged law at the current supply), and the controller reacts.
///
/// `accesses_per_window` sets the telemetry resolution; `windows` spreads
/// evenly over the model's lifetime.
///
/// # Panics
///
/// Panics if `windows == 0` or `accesses_per_window == 0`.
pub fn simulate_lifetime(
    aging: &AgingModel,
    controller: &mut VoltageController,
    windows: usize,
    accesses_per_window: u64,
    seed: u64,
) -> Vec<ControlPoint> {
    assert!(windows > 0, "need at least one window");
    assert!(accesses_per_window > 0, "windows must contain accesses");
    let mut src = Source::seeded(seed);
    let mut trace = Vec::with_capacity(windows);
    for w in 0..windows {
        let years = aging.lifetime_years * (w as f64 + 0.5) / windows as f64;
        let law = aging.law_at(years);
        let p_word = 1.0 - (1.0 - law.p_bit(controller.vdd())).powi(39);
        let corrections = src.binomial(accesses_per_window, p_word);
        let vdd = controller.observe(corrections, accesses_per_window);
        trace.push(ControlPoint {
            years,
            vdd,
            observed_rate: corrections as f64 / accesses_per_window as f64,
        });
    }
    trace
}

/// Simulates a lifetime driven by *canary* telemetry instead of observed
/// corrections: every window the canary array (which ages with the real
/// cells) is read out at the current supply, and any canary failure is a
/// leading-indicator "raise the supply" signal — the controller acts before
/// the real array produces a single correctable error.
///
/// `canary_margin_v` is the designed canary weakening (see
/// [`CanaryArray`] for sizing: ≈0.4 V with the measured Eq. 5 exponent).
///
/// # Panics
///
/// Panics if `windows == 0` (and propagates [`CanaryArray::new`]'s
/// validation).
pub fn simulate_lifetime_with_canary(
    aging: &AgingModel,
    controller: &mut VoltageController,
    canary_margin_v: f64,
    canary_cells: u32,
    windows: usize,
    seed: u64,
) -> Vec<ControlPoint> {
    assert!(windows > 0, "need at least one window");
    let mut src = Source::seeded(seed);
    let mut trace = Vec::with_capacity(windows);
    for w in 0..windows {
        let years = aging.lifetime_years * (w as f64 + 0.5) / windows as f64;
        // The canaries age with the array: their law carries both the
        // designed margin and the drift.
        let canary = CanaryArray::new(aging.law_at(years), canary_margin_v, canary_cells);
        let failures = canary.sample_failures(controller.vdd(), &mut src);
        // Canary read-outs are cheap, so a window is one array scan:
        // failures per canary cell is the controller's "rate".
        let vdd = controller.observe(failures as u64, canary_cells as u64);
        trace.push(ControlPoint {
            years,
            vdd,
            observed_rate: failures as f64 / canary_cells as f64,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aging() -> AgingModel {
        AgingModel::new(AccessLaw::cell_based_40nm(), 0.05, 10.0)
    }

    #[test]
    fn aging_is_monotone_and_sqrt_shaped() {
        let a = aging();
        let v0 = a.law_at(0.0).v0();
        let v1 = a.law_at(2.5).v0();
        let v2 = a.law_at(10.0).v0();
        assert!(v0 < v1 && v1 < v2);
        // √t: half the drift arrives in the first quarter of life.
        assert!((v1 - v0 - 0.025).abs() < 1e-12);
        // Clamped beyond the lifetime.
        assert_eq!(a.law_at(50.0).v0(), v2);
    }

    #[test]
    fn controller_raises_on_high_rate_and_lowers_on_silence() {
        let mut c = VoltageController::new(0.5, (1e-6, 1e-4), 0.01, (0.3, 1.1));
        c.observe(1000, 1_000_000); // rate 1e-3 > band
        assert!((c.vdd() - 0.51).abs() < 1e-12);
        c.observe(0, 1_000_000); // rate 0 < band
        c.observe(0, 1_000_000);
        assert!((c.vdd() - 0.49).abs() < 1e-12);
        assert_eq!(c.adjustments(), 3);
    }

    #[test]
    fn controller_respects_bounds() {
        let mut c = VoltageController::new(0.31, (1e-6, 1e-4), 0.05, (0.30, 0.35));
        c.observe(0, 1000);
        assert_eq!(c.vdd(), 0.30);
        c.observe(0, 1000);
        assert_eq!(c.vdd(), 0.30, "clamped at the floor");
        c.observe(900, 1000);
        assert_eq!(c.vdd(), 0.35);
        c.observe(900, 1000);
        assert_eq!(c.vdd(), 0.35, "clamped at the ceiling");
    }

    #[test]
    fn lifetime_tracking_follows_the_drift() {
        let a = aging();
        // Start at the SECDED operating point with a small margin.
        let mut c = VoltageController::new(0.45, (1e-7, 1e-4), 0.005, (0.33, 1.1));
        let trace = simulate_lifetime(&a, &mut c, 400, 2_000_000, 7);
        let first = trace.first().expect("nonempty");
        let last = trace.last().expect("nonempty");
        // The controller ends higher than it started — it tracked ageing…
        assert!(last.vdd > first.vdd, "{} -> {}", first.vdd, last.vdd);
        // …but by less than the full static guardband at every point
        // before end-of-life (that is the energy win of monitoring).
        let worst_case = 0.45 + a.static_guardband_v();
        let mid = &trace[trace.len() / 2];
        assert!(
            mid.vdd < worst_case,
            "mid-life {} should undercut static {}",
            mid.vdd,
            worst_case
        );
    }

    #[test]
    fn lifetime_keeps_corrections_bounded() {
        let a = aging();
        let mut c = VoltageController::new(0.46, (1e-7, 1e-4), 0.005, (0.33, 1.1));
        let trace = simulate_lifetime(&a, &mut c, 400, 2_000_000, 11);
        // After the loop settles, windows stay below ~10x the band top.
        let late = &trace[trace.len() / 2..];
        let violations = late
            .iter()
            .filter(|p| p.observed_rate > 1e-3)
            .count();
        assert!(
            violations < late.len() / 10,
            "{violations} of {} late windows out of band",
            late.len()
        );
    }

    #[test]
    fn ten_year_drift_stays_in_band_for_less_than_the_static_guardband() {
        // The headline monitoring claim in one test: over the full
        // 10-year lifetime the controller (a) keeps the corrected-error
        // rate it regulates inside its target band, and (b) spends less
        // total supply adjustment than the static worst-case guardband
        // a monitor-less design must carry from day one.
        let a = aging(); // 0.05 V knee drift over 10 years
        let start = 0.46;
        let band = (1e-7, 1e-4);
        let mut c = VoltageController::new(start, band, 0.005, (0.33, 1.1));
        let trace = simulate_lifetime(&a, &mut c, 500, 2_000_000, 2014);
        assert!((trace.last().expect("nonempty").years - 10.0).abs() < 0.5);

        // (a) In-band regulation. Individual windows are binomial
        // samples, so judge the loop the way a control engineer would:
        // after a settling tenth of life, the mean observed rate sits
        // inside the band and gross excursions (10x the band top, the
        // level that forces consecutive corrections) are rare.
        let settled = &trace[trace.len() / 10..];
        let mean_rate: f64 =
            settled.iter().map(|p| p.observed_rate).sum::<f64>() / settled.len() as f64;
        assert!(
            mean_rate <= band.1,
            "mean corrected-error rate {mean_rate:.3e} above band top {:.0e}",
            band.1
        );
        let gross = settled
            .iter()
            .filter(|p| p.observed_rate > 10.0 * band.1)
            .count();
        assert!(
            gross < settled.len() / 20,
            "{gross} of {} settled windows grossly out of band",
            settled.len()
        );

        // (b) Net supply travel under the static lifetime guardband.
        let end = trace.last().expect("nonempty").vdd;
        assert!(
            end - start < a.static_guardband_v(),
            "net adjustment {:.3} V should undercut the {:.3} V static guardband",
            end - start,
            a.static_guardband_v()
        );
        // And the peak the controller ever commanded also stays below
        // the static worst-case supply.
        let peak = trace.iter().map(|p| p.vdd).fold(f64::MIN, f64::max);
        assert!(
            peak < start + a.static_guardband_v(),
            "peak {peak:.3} V reached the static worst case"
        );
        assert!(c.adjustments() > 0, "the loop must actually act");
    }

    #[test]
    fn canary_telemetry_tracks_ageing_with_zero_real_errors() {
        let a = aging();
        // Band: any canary failure (rate ≥ 1/4096) raises the supply; a
        // long silence lowers it.
        let mut c = VoltageController::new(0.56, (1e-5, 2e-4), 0.005, (0.33, 1.1));
        let trace = simulate_lifetime_with_canary(&a, &mut c, 0.40, 4096, 400, 13);
        let first = trace.first().expect("nonempty");
        let last = trace.last().expect("nonempty");
        assert!(last.vdd > first.vdd, "canaries must drive tracking");
        // At every point, the REAL array is error-free: leading indicator.
        for p in &trace {
            let law = a.law_at(p.years);
            assert_eq!(law.p_bit(p.vdd), 0.0, "real errors at {:.2} yr", p.years);
        }
    }

    #[test]
    #[should_panic(expected = "band")]
    fn controller_rejects_empty_band() {
        VoltageController::new(0.5, (1e-4, 1e-4), 0.01, (0.3, 1.1));
    }

    #[test]
    #[should_panic(expected = "window must contain accesses")]
    fn observe_rejects_empty_window() {
        VoltageController::new(0.5, (1e-6, 1e-4), 0.01, (0.3, 1.1)).observe(0, 0);
    }

    #[test]
    fn display_nonempty() {
        let c = VoltageController::new(0.5, (1e-6, 1e-4), 0.01, (0.3, 1.1));
        assert!(!c.to_string().is_empty());
    }
}
